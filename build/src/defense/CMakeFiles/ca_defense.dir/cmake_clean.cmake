file(REMOVE_RECURSE
  "CMakeFiles/ca_defense.dir/detectors.cc.o"
  "CMakeFiles/ca_defense.dir/detectors.cc.o.d"
  "CMakeFiles/ca_defense.dir/profile_features.cc.o"
  "CMakeFiles/ca_defense.dir/profile_features.cc.o.d"
  "libca_defense.a"
  "libca_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
