file(REMOVE_RECURSE
  "libca_defense.a"
)
