# Empty dependencies file for ca_defense.
# This may be replaced when dependencies are built.
