file(REMOVE_RECURSE
  "CMakeFiles/ca_data.dir/cross_domain.cc.o"
  "CMakeFiles/ca_data.dir/cross_domain.cc.o.d"
  "CMakeFiles/ca_data.dir/dataset.cc.o"
  "CMakeFiles/ca_data.dir/dataset.cc.o.d"
  "CMakeFiles/ca_data.dir/io.cc.o"
  "CMakeFiles/ca_data.dir/io.cc.o.d"
  "CMakeFiles/ca_data.dir/split.cc.o"
  "CMakeFiles/ca_data.dir/split.cc.o.d"
  "CMakeFiles/ca_data.dir/stats.cc.o"
  "CMakeFiles/ca_data.dir/stats.cc.o.d"
  "CMakeFiles/ca_data.dir/synthetic.cc.o"
  "CMakeFiles/ca_data.dir/synthetic.cc.o.d"
  "CMakeFiles/ca_data.dir/target_items.cc.o"
  "CMakeFiles/ca_data.dir/target_items.cc.o.d"
  "libca_data.a"
  "libca_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
