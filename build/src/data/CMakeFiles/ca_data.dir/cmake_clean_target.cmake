file(REMOVE_RECURSE
  "libca_data.a"
)
