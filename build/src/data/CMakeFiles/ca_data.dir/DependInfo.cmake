
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cross_domain.cc" "src/data/CMakeFiles/ca_data.dir/cross_domain.cc.o" "gcc" "src/data/CMakeFiles/ca_data.dir/cross_domain.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/ca_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/ca_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/ca_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/ca_data.dir/io.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/ca_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/ca_data.dir/split.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/data/CMakeFiles/ca_data.dir/stats.cc.o" "gcc" "src/data/CMakeFiles/ca_data.dir/stats.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/ca_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/ca_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/target_items.cc" "src/data/CMakeFiles/ca_data.dir/target_items.cc.o" "gcc" "src/data/CMakeFiles/ca_data.dir/target_items.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/ca_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
