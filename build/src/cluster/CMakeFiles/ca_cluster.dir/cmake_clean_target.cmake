file(REMOVE_RECURSE
  "libca_cluster.a"
)
