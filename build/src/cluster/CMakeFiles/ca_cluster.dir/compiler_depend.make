# Empty compiler generated dependencies file for ca_cluster.
# This may be replaced when dependencies are built.
