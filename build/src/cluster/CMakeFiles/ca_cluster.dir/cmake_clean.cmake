file(REMOVE_RECURSE
  "CMakeFiles/ca_cluster.dir/hierarchical_tree.cc.o"
  "CMakeFiles/ca_cluster.dir/hierarchical_tree.cc.o.d"
  "CMakeFiles/ca_cluster.dir/kmeans.cc.o"
  "CMakeFiles/ca_cluster.dir/kmeans.cc.o.d"
  "libca_cluster.a"
  "libca_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
