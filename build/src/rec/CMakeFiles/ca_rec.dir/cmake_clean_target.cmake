file(REMOVE_RECURSE
  "libca_rec.a"
)
