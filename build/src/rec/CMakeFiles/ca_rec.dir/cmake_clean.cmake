file(REMOVE_RECURSE
  "CMakeFiles/ca_rec.dir/black_box.cc.o"
  "CMakeFiles/ca_rec.dir/black_box.cc.o.d"
  "CMakeFiles/ca_rec.dir/evaluator.cc.o"
  "CMakeFiles/ca_rec.dir/evaluator.cc.o.d"
  "CMakeFiles/ca_rec.dir/item_knn.cc.o"
  "CMakeFiles/ca_rec.dir/item_knn.cc.o.d"
  "CMakeFiles/ca_rec.dir/matrix_factorization.cc.o"
  "CMakeFiles/ca_rec.dir/matrix_factorization.cc.o.d"
  "CMakeFiles/ca_rec.dir/pinsage_lite.cc.o"
  "CMakeFiles/ca_rec.dir/pinsage_lite.cc.o.d"
  "CMakeFiles/ca_rec.dir/recommender.cc.o"
  "CMakeFiles/ca_rec.dir/recommender.cc.o.d"
  "CMakeFiles/ca_rec.dir/trainer.cc.o"
  "CMakeFiles/ca_rec.dir/trainer.cc.o.d"
  "libca_rec.a"
  "libca_rec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
