
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rec/black_box.cc" "src/rec/CMakeFiles/ca_rec.dir/black_box.cc.o" "gcc" "src/rec/CMakeFiles/ca_rec.dir/black_box.cc.o.d"
  "/root/repo/src/rec/evaluator.cc" "src/rec/CMakeFiles/ca_rec.dir/evaluator.cc.o" "gcc" "src/rec/CMakeFiles/ca_rec.dir/evaluator.cc.o.d"
  "/root/repo/src/rec/item_knn.cc" "src/rec/CMakeFiles/ca_rec.dir/item_knn.cc.o" "gcc" "src/rec/CMakeFiles/ca_rec.dir/item_knn.cc.o.d"
  "/root/repo/src/rec/matrix_factorization.cc" "src/rec/CMakeFiles/ca_rec.dir/matrix_factorization.cc.o" "gcc" "src/rec/CMakeFiles/ca_rec.dir/matrix_factorization.cc.o.d"
  "/root/repo/src/rec/pinsage_lite.cc" "src/rec/CMakeFiles/ca_rec.dir/pinsage_lite.cc.o" "gcc" "src/rec/CMakeFiles/ca_rec.dir/pinsage_lite.cc.o.d"
  "/root/repo/src/rec/recommender.cc" "src/rec/CMakeFiles/ca_rec.dir/recommender.cc.o" "gcc" "src/rec/CMakeFiles/ca_rec.dir/recommender.cc.o.d"
  "/root/repo/src/rec/trainer.cc" "src/rec/CMakeFiles/ca_rec.dir/trainer.cc.o" "gcc" "src/rec/CMakeFiles/ca_rec.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/ca_data.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ca_math.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
