# Empty dependencies file for ca_rec.
# This may be replaced when dependencies are built.
