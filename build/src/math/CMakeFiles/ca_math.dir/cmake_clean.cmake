file(REMOVE_RECURSE
  "CMakeFiles/ca_math.dir/matrix.cc.o"
  "CMakeFiles/ca_math.dir/matrix.cc.o.d"
  "CMakeFiles/ca_math.dir/metrics.cc.o"
  "CMakeFiles/ca_math.dir/metrics.cc.o.d"
  "CMakeFiles/ca_math.dir/sampling.cc.o"
  "CMakeFiles/ca_math.dir/sampling.cc.o.d"
  "CMakeFiles/ca_math.dir/stats.cc.o"
  "CMakeFiles/ca_math.dir/stats.cc.o.d"
  "CMakeFiles/ca_math.dir/top_k.cc.o"
  "CMakeFiles/ca_math.dir/top_k.cc.o.d"
  "CMakeFiles/ca_math.dir/vector_ops.cc.o"
  "CMakeFiles/ca_math.dir/vector_ops.cc.o.d"
  "libca_math.a"
  "libca_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
