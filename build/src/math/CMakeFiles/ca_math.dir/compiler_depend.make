# Empty compiler generated dependencies file for ca_math.
# This may be replaced when dependencies are built.
