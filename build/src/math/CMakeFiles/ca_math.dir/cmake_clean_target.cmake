file(REMOVE_RECURSE
  "libca_math.a"
)
