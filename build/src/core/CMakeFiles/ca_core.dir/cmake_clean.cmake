file(REMOVE_RECURSE
  "CMakeFiles/ca_core.dir/baselines.cc.o"
  "CMakeFiles/ca_core.dir/baselines.cc.o.d"
  "CMakeFiles/ca_core.dir/copy_attack.cc.o"
  "CMakeFiles/ca_core.dir/copy_attack.cc.o.d"
  "CMakeFiles/ca_core.dir/crafting.cc.o"
  "CMakeFiles/ca_core.dir/crafting.cc.o.d"
  "CMakeFiles/ca_core.dir/crafting_policy.cc.o"
  "CMakeFiles/ca_core.dir/crafting_policy.cc.o.d"
  "CMakeFiles/ca_core.dir/environment.cc.o"
  "CMakeFiles/ca_core.dir/environment.cc.o.d"
  "CMakeFiles/ca_core.dir/flat_policy.cc.o"
  "CMakeFiles/ca_core.dir/flat_policy.cc.o.d"
  "CMakeFiles/ca_core.dir/proxy.cc.o"
  "CMakeFiles/ca_core.dir/proxy.cc.o.d"
  "CMakeFiles/ca_core.dir/runner.cc.o"
  "CMakeFiles/ca_core.dir/runner.cc.o.d"
  "CMakeFiles/ca_core.dir/selection_policy.cc.o"
  "CMakeFiles/ca_core.dir/selection_policy.cc.o.d"
  "libca_core.a"
  "libca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
