
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/ca_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/copy_attack.cc" "src/core/CMakeFiles/ca_core.dir/copy_attack.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/copy_attack.cc.o.d"
  "/root/repo/src/core/crafting.cc" "src/core/CMakeFiles/ca_core.dir/crafting.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/crafting.cc.o.d"
  "/root/repo/src/core/crafting_policy.cc" "src/core/CMakeFiles/ca_core.dir/crafting_policy.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/crafting_policy.cc.o.d"
  "/root/repo/src/core/environment.cc" "src/core/CMakeFiles/ca_core.dir/environment.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/environment.cc.o.d"
  "/root/repo/src/core/flat_policy.cc" "src/core/CMakeFiles/ca_core.dir/flat_policy.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/flat_policy.cc.o.d"
  "/root/repo/src/core/proxy.cc" "src/core/CMakeFiles/ca_core.dir/proxy.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/proxy.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/ca_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/runner.cc.o.d"
  "/root/repo/src/core/selection_policy.cc" "src/core/CMakeFiles/ca_core.dir/selection_policy.cc.o" "gcc" "src/core/CMakeFiles/ca_core.dir/selection_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ca_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ca_data.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ca_math.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rec/CMakeFiles/ca_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
