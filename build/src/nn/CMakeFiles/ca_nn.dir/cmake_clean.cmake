file(REMOVE_RECURSE
  "CMakeFiles/ca_nn.dir/activations.cc.o"
  "CMakeFiles/ca_nn.dir/activations.cc.o.d"
  "CMakeFiles/ca_nn.dir/dense.cc.o"
  "CMakeFiles/ca_nn.dir/dense.cc.o.d"
  "CMakeFiles/ca_nn.dir/gru.cc.o"
  "CMakeFiles/ca_nn.dir/gru.cc.o.d"
  "CMakeFiles/ca_nn.dir/mlp.cc.o"
  "CMakeFiles/ca_nn.dir/mlp.cc.o.d"
  "CMakeFiles/ca_nn.dir/optimizer.cc.o"
  "CMakeFiles/ca_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/ca_nn.dir/reinforce.cc.o"
  "CMakeFiles/ca_nn.dir/reinforce.cc.o.d"
  "CMakeFiles/ca_nn.dir/rnn.cc.o"
  "CMakeFiles/ca_nn.dir/rnn.cc.o.d"
  "CMakeFiles/ca_nn.dir/serialize.cc.o"
  "CMakeFiles/ca_nn.dir/serialize.cc.o.d"
  "libca_nn.a"
  "libca_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
