
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/ca_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/ca_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/ca_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/ca_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/ca_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/reinforce.cc" "src/nn/CMakeFiles/ca_nn.dir/reinforce.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/reinforce.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/nn/CMakeFiles/ca_nn.dir/rnn.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/rnn.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/ca_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/ca_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/ca_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
