# Empty dependencies file for ca_util.
# This may be replaced when dependencies are built.
