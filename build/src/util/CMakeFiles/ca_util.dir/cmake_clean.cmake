file(REMOVE_RECURSE
  "CMakeFiles/ca_util.dir/csv.cc.o"
  "CMakeFiles/ca_util.dir/csv.cc.o.d"
  "CMakeFiles/ca_util.dir/flags.cc.o"
  "CMakeFiles/ca_util.dir/flags.cc.o.d"
  "CMakeFiles/ca_util.dir/logging.cc.o"
  "CMakeFiles/ca_util.dir/logging.cc.o.d"
  "CMakeFiles/ca_util.dir/rng.cc.o"
  "CMakeFiles/ca_util.dir/rng.cc.o.d"
  "CMakeFiles/ca_util.dir/string_utils.cc.o"
  "CMakeFiles/ca_util.dir/string_utils.cc.o.d"
  "CMakeFiles/ca_util.dir/thread_pool.cc.o"
  "CMakeFiles/ca_util.dir/thread_pool.cc.o.d"
  "libca_util.a"
  "libca_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
