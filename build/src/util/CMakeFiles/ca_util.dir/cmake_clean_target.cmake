file(REMOVE_RECURSE
  "libca_util.a"
)
