# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/rec_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/core_crafting_test[1]_include.cmake")
include("/root/repo/build/tests/core_environment_test[1]_include.cmake")
include("/root/repo/build/tests/core_policy_test[1]_include.cmake")
include("/root/repo/build/tests/core_strategy_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
