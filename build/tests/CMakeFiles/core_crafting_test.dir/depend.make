# Empty dependencies file for core_crafting_test.
# This may be replaced when dependencies are built.
