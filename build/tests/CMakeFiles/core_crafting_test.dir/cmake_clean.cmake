file(REMOVE_RECURSE
  "CMakeFiles/core_crafting_test.dir/core_crafting_test.cc.o"
  "CMakeFiles/core_crafting_test.dir/core_crafting_test.cc.o.d"
  "core_crafting_test"
  "core_crafting_test.pdb"
  "core_crafting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_crafting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
