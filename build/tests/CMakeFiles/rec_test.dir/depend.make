# Empty dependencies file for rec_test.
# This may be replaced when dependencies are built.
