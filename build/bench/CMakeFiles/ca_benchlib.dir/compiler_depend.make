# Empty compiler generated dependencies file for ca_benchlib.
# This may be replaced when dependencies are built.
