file(REMOVE_RECURSE
  "libca_benchlib.a"
)
