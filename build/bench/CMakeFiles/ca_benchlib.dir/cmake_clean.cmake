file(REMOVE_RECURSE
  "CMakeFiles/ca_benchlib.dir/bench_common.cc.o"
  "CMakeFiles/ca_benchlib.dir/bench_common.cc.o.d"
  "libca_benchlib.a"
  "libca_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
