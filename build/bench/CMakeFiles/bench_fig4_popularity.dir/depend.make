# Empty dependencies file for bench_fig4_popularity.
# This may be replaced when dependencies are built.
