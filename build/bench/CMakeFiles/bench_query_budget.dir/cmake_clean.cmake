file(REMOVE_RECURSE
  "CMakeFiles/bench_query_budget.dir/bench_query_budget.cc.o"
  "CMakeFiles/bench_query_budget.dir/bench_query_budget.cc.o.d"
  "bench_query_budget"
  "bench_query_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
