# Empty dependencies file for bench_query_budget.
# This may be replaced when dependencies are built.
