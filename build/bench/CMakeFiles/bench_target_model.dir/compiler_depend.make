# Empty compiler generated dependencies file for bench_target_model.
# This may be replaced when dependencies are built.
