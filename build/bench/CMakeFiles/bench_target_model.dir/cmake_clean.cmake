file(REMOVE_RECURSE
  "CMakeFiles/bench_target_model.dir/bench_target_model.cc.o"
  "CMakeFiles/bench_target_model.dir/bench_target_model.cc.o.d"
  "bench_target_model"
  "bench_target_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_target_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
