# Empty compiler generated dependencies file for bench_fig5_budget_small.
# This may be replaced when dependencies are built.
