file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_budget_small.dir/bench_fig5_budget_small.cc.o"
  "CMakeFiles/bench_fig5_budget_small.dir/bench_fig5_budget_small.cc.o.d"
  "bench_fig5_budget_small"
  "bench_fig5_budget_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_budget_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
