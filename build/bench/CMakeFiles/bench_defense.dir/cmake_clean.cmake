file(REMOVE_RECURSE
  "CMakeFiles/bench_defense.dir/bench_defense.cc.o"
  "CMakeFiles/bench_defense.dir/bench_defense.cc.o.d"
  "bench_defense"
  "bench_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
