file(REMOVE_RECURSE
  "CMakeFiles/bench_target_models.dir/bench_target_models.cc.o"
  "CMakeFiles/bench_target_models.dir/bench_target_models.cc.o.d"
  "bench_target_models"
  "bench_target_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_target_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
