# Empty dependencies file for bench_target_models.
# This may be replaced when dependencies are built.
