file(REMOVE_RECURSE
  "CMakeFiles/bench_reward_shaping.dir/bench_reward_shaping.cc.o"
  "CMakeFiles/bench_reward_shaping.dir/bench_reward_shaping.cc.o.d"
  "bench_reward_shaping"
  "bench_reward_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reward_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
