# Empty compiler generated dependencies file for promotion_campaign.
# This may be replaced when dependencies are built.
