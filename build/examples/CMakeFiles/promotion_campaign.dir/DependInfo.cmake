
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/promotion_campaign.cpp" "examples/CMakeFiles/promotion_campaign.dir/promotion_campaign.cpp.o" "gcc" "examples/CMakeFiles/promotion_campaign.dir/promotion_campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/ca_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/rec/CMakeFiles/ca_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ca_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ca_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ca_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
