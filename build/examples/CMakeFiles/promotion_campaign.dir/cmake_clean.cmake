file(REMOVE_RECURSE
  "CMakeFiles/promotion_campaign.dir/promotion_campaign.cpp.o"
  "CMakeFiles/promotion_campaign.dir/promotion_campaign.cpp.o.d"
  "promotion_campaign"
  "promotion_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promotion_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
