# Empty dependencies file for detector_audit.
# This may be replaced when dependencies are built.
