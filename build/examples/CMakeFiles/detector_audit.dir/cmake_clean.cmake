file(REMOVE_RECURSE
  "CMakeFiles/detector_audit.dir/detector_audit.cpp.o"
  "CMakeFiles/detector_audit.dir/detector_audit.cpp.o.d"
  "detector_audit"
  "detector_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
