# Empty dependencies file for profile_realism.
# This may be replaced when dependencies are built.
