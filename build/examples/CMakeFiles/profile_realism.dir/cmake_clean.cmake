file(REMOVE_RECURSE
  "CMakeFiles/profile_realism.dir/profile_realism.cpp.o"
  "CMakeFiles/profile_realism.dir/profile_realism.cpp.o.d"
  "profile_realism"
  "profile_realism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_realism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
