# Empty dependencies file for copyattack.
# This may be replaced when dependencies are built.
