file(REMOVE_RECURSE
  "CMakeFiles/copyattack.dir/copyattack_main.cc.o"
  "CMakeFiles/copyattack.dir/copyattack_main.cc.o.d"
  "copyattack"
  "copyattack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copyattack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
