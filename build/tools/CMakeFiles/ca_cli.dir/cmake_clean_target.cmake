file(REMOVE_RECURSE
  "libca_cli.a"
)
