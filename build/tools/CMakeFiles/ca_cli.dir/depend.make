# Empty dependencies file for ca_cli.
# This may be replaced when dependencies are built.
