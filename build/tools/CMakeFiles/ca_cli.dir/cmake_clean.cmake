file(REMOVE_RECURSE
  "CMakeFiles/ca_cli.dir/cli.cc.o"
  "CMakeFiles/ca_cli.dir/cli.cc.o.d"
  "libca_cli.a"
  "libca_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
