#include <iostream>

#include "cli.h"
#include "fault/crash_point.h"

int main(int argc, char** argv) {
  // Chaos harness hook: COPYATTACK_CRASH_POINT arms a deterministic
  // process-death schedule (tools/soak_runner, CI soak one-liners).
  copyattack::fault::ArmCrashScheduleFromEnv();
  return copyattack::tools::RunCli(argc, argv, std::cout);
}
