#include <iostream>

#include "cli.h"

int main(int argc, char** argv) {
  return copyattack::tools::RunCli(argc, argv, std::cout);
}
