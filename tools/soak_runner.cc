// soak_runner: process-level chaos soak for the attack server (ISSUE 10
// tentpole). Loops fork / kill-at-a-random-crash-point / resume over an
// attack-server job queue and asserts that the final campaign outcomes
// are bit-identical to an uninterrupted run.
//
// usage: soak_runner [--cycles=20] [--seed=42] [--dir=PATH]
//                    [--jobs_file=jobs.csv] [--keep]
//
// Protocol (the parent stays single-threaded — fork() from a threaded
// process is undefined-behavior bingo, so every piece of real work runs
// in a forked child):
//   1. reference child: runs the queue uninterrupted with a count-only
//      crash schedule, dumping hexfloat outcomes + a crash-point trace.
//      The trace's line count T is the schedule universe.
//   2. K chaos cycles: each child arms a deterministic kill at hit
//      N_c = 1 + DeriveStreamSeed(seed, c) % T (exit-mode crash points,
//      `std::_Exit(134)` — no flushing, the in-process stand-in for
//      SIGKILL) and resumes the shared checkpoint tree. Exit 134 means
//      "died at the scheduled point" and the chain continues; exit 0
//      means the schedule outlived the remaining work, the run completed
//      — its outcomes must equal the reference bit-for-bit, and the
//      chain restarts from a clean tree.
//   3. final child: unarmed resume of whatever the last kill left
//      behind; must complete with outcomes bit-identical to reference.
//
// Exit status: 0 when every completed run matched the reference, 1 on
// any divergence or unexpected child status, 2 on usage errors.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "fault/crash_point.h"
#include "rec/pinsage_lite.h"
#include "serve/attack_server.h"
#include "serve/job_queue.h"
#include "util/rng.h"

namespace {

namespace core = copyattack::core;
namespace data = copyattack::data;
namespace fault = copyattack::fault;
namespace rec = copyattack::rec;
namespace serve = copyattack::serve;
namespace util = copyattack::util;

struct Options {
  std::size_t cycles = 20;
  std::uint64_t seed = 42;
  std::string dir;
  std::string jobs_file;
  bool keep = false;
};

/// The built-in queue when no --jobs_file is given: one learning and one
/// single-episode baseline job, mirroring check_all.sh's parallel soak.
std::vector<serve::PromotionJob> DefaultJobs() {
  serve::PromotionJob copy;
  copy.id = "soak-copy";
  copy.method = "CopyAttack";
  copy.num_targets = 2;
  copy.budget = 6;
  copy.episodes = 3;
  copy.seed = 1337;
  serve::PromotionJob baseline;
  baseline.id = "soak-baseline";
  baseline.method = "TargetAttack40";
  baseline.num_targets = 2;
  baseline.budget = 6;
  baseline.episodes = 1;
  baseline.seed = 1337;
  return {copy, baseline};
}

/// Serves the queue once against `ckpt_root` (resume on) and writes the
/// outcomes, hexfloat so the comparison is bit-exact, to `out_path`.
/// Runs INSIDE a forked child. Returns the child's exit code; never
/// returns at all when an exit-mode crash point fires first.
int ChildServe(const std::vector<serve::PromotionJob>& jobs,
               const std::string& ckpt_root, const std::string& out_path,
               const fault::CrashScheduleConfig* schedule) {
  if (schedule != nullptr) fault::ArmCrashSchedule(*schedule);

  // The identical deterministic world the unit tests use
  // (tests/test_helpers.h): every child rebuilds it bit-for-bit, so the
  // only cross-child state is the checkpoint tree under test.
  const data::SyntheticWorld world =
      data::GenerateSyntheticWorld(data::SyntheticConfig::Tiny());
  util::Rng split_rng(23);
  const data::TrainValidTestSplit split =
      data::SplitDataset(world.dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng fit_rng(29);
  model.Fit(split.train, 12, fit_rng);
  core::SourceArtifactOptions artifact_options;
  artifact_options.mf_epochs = 8;
  artifact_options.tree_depth = 3;
  const core::SourceArtifacts artifacts =
      core::PrepareSourceArtifacts(world.dataset, artifact_options);

  serve::ServerConfig config;
  config.runner.jobs = 1;  // serial: the crash-hit order must be total
  config.checkpoint_root = ckpt_root;
  config.resume = true;
  config.checkpoint_every = 1;
  // Scheduled crashes must never quarantine: the soak's contract is that
  // a killed job RESUMES, not that it gets parked after 3 kills.
  config.max_attempts = 0;

  serve::JobQueue queue;
  for (const serve::PromotionJob& job : jobs) queue.Push(job);
  queue.Close();

  serve::AttackServer server(
      world.dataset, split.train,
      [&model] { return std::make_unique<rec::PinSageLite>(model); },
      artifacts, config);
  const std::vector<serve::JobReport> reports = server.Drain(&queue);

  std::ostringstream dump;
  dump << std::hexfloat;
  for (const serve::JobReport& report : reports) {
    if (!report.ok) {
      std::fprintf(stderr, "soak child: job %s failed: %s\n",
                   report.job.id.c_str(), report.error.c_str());
      return 3;
    }
    dump << "job " << report.job.id << '\n';
    for (std::size_t g = 0; g < report.result.outcomes.size(); ++g) {
      if (report.result.completed[g] == 0) {
        std::fprintf(stderr, "soak child: job %s target %zu incomplete\n",
                     report.job.id.c_str(), g);
        return 3;
      }
      const core::TargetOutcomeState& outcome = report.result.outcomes[g];
      dump << "  target " << g;
      for (const auto& [k, m] : outcome.metrics) {
        dump << " k" << k << " hr " << m.hr << " ndcg " << m.ndcg
             << " n " << m.count;
      }
      dump << " ipp " << outcome.items_per_profile << " inj "
           << outcome.profiles_injected << " rounds "
           << outcome.query_rounds << " reward " << outcome.final_reward
           << '\n';
    }
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) return 3;
  out << dump.str();
  out.close();
  return out ? 0 : 3;
}

/// Forks, runs `body` in the child (exiting with its return value via
/// `std::_Exit` so no parent-inherited state is flushed twice), and
/// returns the child's wait status to the parent.
int ForkAndWait(const std::function<int()>& body) {
  std::fflush(nullptr);  // don't let the child re-flush parent buffers
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("soak_runner: fork");
    std::exit(1);
  }
  if (pid == 0) std::_Exit(body());
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    std::perror("soak_runner: waitpid");
    std::exit(1);
  }
  return status;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::size_t CountLines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

bool ParseSize(const std::string& text, std::size_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::size_t parsed = 0;
    if (arg.rfind("--cycles=", 0) == 0) {
      if (!ParseSize(arg.substr(9), &parsed) || parsed == 0) {
        std::fprintf(stderr, "soak_runner: bad --cycles '%s'\n",
                     arg.c_str());
        return 2;
      }
      options.cycles = parsed;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!ParseSize(arg.substr(7), &parsed)) {
        std::fprintf(stderr, "soak_runner: bad --seed '%s'\n", arg.c_str());
        return 2;
      }
      options.seed = static_cast<std::uint64_t>(parsed);
    } else if (arg.rfind("--dir=", 0) == 0) {
      options.dir = arg.substr(6);
    } else if (arg.rfind("--jobs_file=", 0) == 0) {
      options.jobs_file = arg.substr(12);
    } else if (arg == "--keep") {
      options.keep = true;
    } else {
      std::fprintf(stderr,
                   "usage: soak_runner [--cycles=K] [--seed=S] "
                   "[--dir=PATH] [--jobs_file=jobs.csv] [--keep]\n");
      return 2;
    }
  }
  if (options.dir.empty()) {
    options.dir = (std::filesystem::temp_directory_path() /
                   ("copyattack_soak_" + std::to_string(::getpid())))
                      .string();
  }

  std::vector<serve::PromotionJob> jobs;
  if (options.jobs_file.empty()) {
    jobs = DefaultJobs();
  } else {
    std::ifstream in(options.jobs_file);
    if (!in) {
      std::fprintf(stderr, "soak_runner: cannot open --jobs_file %s\n",
                   options.jobs_file.c_str());
      return 2;
    }
    std::string error;
    if (!serve::ParseJobsCsv(in, &jobs, &error) || jobs.empty()) {
      std::fprintf(stderr, "soak_runner: bad --jobs_file: %s\n",
                   error.empty() ? "no jobs" : error.c_str());
      return 2;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  const std::string ref_root = options.dir + "/ref_ckpt";
  const std::string ref_out = options.dir + "/ref_outcomes.txt";
  const std::string trace_path = options.dir + "/crash_trace.txt";
  const std::string chaos_root = options.dir + "/chaos_ckpt";
  const std::string chaos_out = options.dir + "/chaos_outcomes.txt";

  // 1. Reference: uninterrupted, count-only schedule measures the
  // crash-point universe T of one full run.
  std::printf("soak_runner: reference run (measuring crash-point "
              "universe)...\n");
  std::fflush(nullptr);
  {
    fault::CrashScheduleConfig count_only;
    count_only.enabled = true;
    count_only.at_hit = 0;  // never fire, just trace
    count_only.trace_path = trace_path;
    const int status = ForkAndWait([&] {
      return ChildServe(jobs, ref_root, ref_out, &count_only);
    });
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "soak_runner: reference run failed (status %d)\n",
                   status);
      return 1;
    }
  }
  const std::string reference = ReadFileOrEmpty(ref_out);
  const std::size_t universe = CountLines(ReadFileOrEmpty(trace_path));
  if (reference.empty() || universe == 0) {
    std::fprintf(stderr,
                 "soak_runner: reference produced no outcomes or no "
                 "crash-point hits\n");
    return 1;
  }
  std::printf("soak_runner: reference OK (%zu crash-point hits)\n",
              universe);

  // 2. Chaos chain: kill at a seeded random hit, resume, repeat.
  std::size_t kills = 0, completions = 0;
  for (std::size_t cycle = 1; cycle <= options.cycles; ++cycle) {
    const fault::CrashScheduleConfig schedule =
        fault::CrashScheduleConfig::Seeded(options.seed, cycle, universe);
    std::printf("soak_runner: cycle %zu/%zu (kill at hit %llu)\n", cycle,
                options.cycles,
                static_cast<unsigned long long>(schedule.at_hit));
    std::fflush(nullptr);
    const int status = ForkAndWait([&] {
      return ChildServe(jobs, chaos_root, chaos_out, &schedule);
    });
    if (WIFEXITED(status) && WEXITSTATUS(status) == fault::kCrashExitCode) {
      ++kills;  // died exactly where scheduled; next cycle resumes
      continue;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // The schedule outlived the remaining (resumed) work: the run
      // completed, which is the moment of truth — bit-identical or bust.
      ++completions;
      if (ReadFileOrEmpty(chaos_out) != reference) {
        std::fprintf(stderr,
                     "soak_runner: cycle %zu outcomes DIVERGED from the "
                     "uninterrupted reference\n",
                     cycle);
        return 1;
      }
      // Chain restart: wipe the completed tree so later cycles kill
      // early phases again instead of no-opping on finished state.
      std::filesystem::remove_all(chaos_root, ec);
      std::filesystem::remove(chaos_out, ec);
      continue;
    }
    std::fprintf(stderr,
                 "soak_runner: cycle %zu: unexpected child status %d\n",
                 cycle, status);
    return 1;
  }

  // 3. Final: unarmed resume of whatever the last kill left behind.
  std::printf("soak_runner: final uninterrupted resume...\n");
  std::fflush(nullptr);
  {
    const int status = ForkAndWait(
        [&] { return ChildServe(jobs, chaos_root, chaos_out, nullptr); });
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "soak_runner: final resume failed (status %d)\n",
                   status);
      return 1;
    }
  }
  if (ReadFileOrEmpty(chaos_out) != reference) {
    std::fprintf(stderr,
                 "soak_runner: final outcomes DIVERGED from the "
                 "uninterrupted reference\n");
    return 1;
  }

  std::printf(
      "soak_runner: OK — %zu cycles (%zu kills, %zu mid-chain "
      "completions), final outcomes bit-identical to the uninterrupted "
      "run\n",
      options.cycles, kills, completions + 1);
  if (!options.keep) std::filesystem::remove_all(options.dir, ec);
  return 0;
}
