// Conforming counterpart in the self-test fixture: patterns that look close
// to the banned ones but must NOT fire. If the linter starts flagging any
// of these, its matching got too greedy (the WILL_FAIL test still fails
// "correctly" because seeded_violations.h fires, so this file is defense in
// depth for reviewing linter changes by hand:
// `lint_copyattack tools/lint_selftest/clean_example.cc` must exit 0).

#include <cstddef>
#include <memory>
#include <string>

namespace lint_selftest {

// "rand" / "new" / "delete" inside identifiers, comments, and strings are
// not violations.
inline std::size_t operand_count = 0;
inline const char* kBanner = "brand new time(nullptr) printf == 1.0";

struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;  // deleted function, not raw delete
  Widget& operator=(const Widget&) = delete;
};

inline std::unique_ptr<int> MakeOwned() {
  return std::make_unique<int>(7);  // owning allocation, not raw new
}

inline bool NearOne(double value) {
  const double tolerance = 1e-9;
  return value > 1.0 - tolerance && value < 1.0 + tolerance;
}

inline bool ExactZeroGradientSkip(float gradient) {
  return gradient == 0.0f;  // lint:allow(float-eq): sparsity guard example
}

// Raw strings are opaque to the tokenizer-backed linter: banned patterns
// inside them — including the quote-confusing `")` sequence that broke the
// regex-era stripper — must not fire any rule.
inline const char* kRawBanner = R"(std::rand() time(nullptr) printf("%d"))";
inline const char* kRawDelim = R"doc(
  new int[3]; delete p; value == 1.0; random_device entropy;
  an embedded quote-paren ") does not end a d-char-seq raw string
)doc";

// Digit separators are not char literals; the suffix after `'` must not be
// blanked into invisibility (1'000'000 stays numeric code).
inline constexpr long kBigCount = 1'000'000L;

// A spliced line comment swallows its continuation line, banned words \
   included: std::rand() printf new delete time(nullptr)
inline int AfterSplicedComment() { return 0; }

}  // namespace lint_selftest
