// Deliberately non-conforming fixture for the lint_copyattack self-test.
// NOT compiled into any target — ctest runs the linter over this directory
// with WILL_FAIL, so the build goes red if any rule below stops firing.
// Every block is one banned pattern; keep exactly one violation per rule so
// a regression is attributable.

// header-guard: this header intentionally has neither `#pragma once` nor a
// COPYATTACK_*_H_ include guard.

inline int SeededStdRand() {
  return std::rand();  // std-rand: must use util::Rng
}

inline unsigned SeededTimeSeed() {
  return static_cast<unsigned>(time(nullptr));  // time-seed: wall clock
}

inline int* SeededRawNew() {
  return new int(42);  // raw-new: unannotated raw allocation
}

inline void SeededPrintf(double value) {
  printf("%f\n", value);  // printf-family: bypasses CA_LOG
}

inline bool SeededFloatEq(double value) {
  return value == 1.0;  // float-eq: exact floating-point compare
}
