#ifndef COPYATTACK_TOOLS_LINT_SELFTEST_CORE_RAW_CLOCK_VIOLATION_H_
#define COPYATTACK_TOOLS_LINT_SELFTEST_CORE_RAW_CLOCK_VIOLATION_H_

// Deliberately non-conforming fixture for the raw-clock rule: this file
// lives under a `core/` path, where std::chrono clock reads are banned in
// favor of the obs timing facility. NOT compiled into any target; the
// lint_copyattack_selftest ctest (WILL_FAIL) asserts the rule fires here.

#include <chrono>

inline long SeededRawClock() {
  return std::chrono::steady_clock::now()  // raw-clock: bypasses src/obs
      .time_since_epoch()
      .count();
}

#endif  // COPYATTACK_TOOLS_LINT_SELFTEST_CORE_RAW_CLOCK_VIOLATION_H_
