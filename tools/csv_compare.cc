// csv_compare: tolerance-gated CSV regression check for the bench recipe
// harness (ISSUE 8 satellite; first step toward the ROADMAP's
// recipe-harness item).
//
// usage: csv_compare <baseline.csv> <candidate.csv> [--tol=0.15]
//                    [--rtol=R]
//
// Rules:
//   * headers must match exactly (same columns, same order);
//   * rows are keyed by their non-numeric fields (in column order), so row
//     order may differ but every baseline key must exist in the candidate
//     and vice versa;
//   * numeric fields must agree within the absolute tolerance OR, when
//     --rtol is supplied, within the relative one: a pair passes if
//     |e - a| <= tol or |e - a| <= rtol * max(|e|, |a|). The relative
//     mode is for large-magnitude perf columns (latencies, throughputs)
//     where a one-size absolute bound is either too loose near zero or
//     too tight at scale;
//   * non-numeric fields of matching keys must be identical.
//
// Exit status: 0 on match, 1 on any divergence (each printed to stderr),
// 2 on usage/IO errors. The absolute tolerance is sized for the metric
// columns of the bench CSVs (AUCs, hit ratios — all in [0, 1]).

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "util/csv.h"

namespace {

bool ParseNumber(const std::string& field, double* value) {
  if (field.empty()) return false;
  char* end = nullptr;
  *value = std::strtod(field.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Concatenation of the row's non-numeric fields — the stable identity of
/// a bench CSV row (e.g. "copied-raw" or "SurrogateTransfer|ZScore").
std::string RowKey(const std::vector<std::string>& row) {
  std::string key;
  for (const std::string& field : row) {
    double ignored;
    if (ParseNumber(field, &ignored)) continue;
    key += field;
    key += '|';
  }
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path;
  double tolerance = 0.15;
  double rtolerance = 0.0;  // 0 = relative mode off
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tol=", 0) == 0) {
      if (!ParseNumber(arg.substr(6), &tolerance) || tolerance < 0.0) {
        std::fprintf(stderr, "csv_compare: bad --tol value '%s'\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--rtol=", 0) == 0) {
      if (!ParseNumber(arg.substr(7), &rtolerance) || rtolerance < 0.0) {
        std::fprintf(stderr, "csv_compare: bad --rtol value '%s'\n",
                     arg.c_str());
        return 2;
      }
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: csv_compare <baseline.csv> <candidate.csv> "
                   "[--tol=T] [--rtol=R]\n");
      return 2;
    }
  }
  if (candidate_path.empty()) {
    std::fprintf(stderr,
                 "usage: csv_compare <baseline.csv> <candidate.csv> "
                 "[--tol=T] [--rtol=R]\n");
    return 2;
  }

  using copyattack::util::ReadCsv;
  std::vector<std::string> baseline_header, candidate_header;
  std::vector<std::vector<std::string>> baseline_rows, candidate_rows;
  if (!ReadCsv(baseline_path, &baseline_header, &baseline_rows)) {
    std::fprintf(stderr, "csv_compare: cannot read %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!ReadCsv(candidate_path, &candidate_header, &candidate_rows)) {
    std::fprintf(stderr, "csv_compare: cannot read %s\n",
                 candidate_path.c_str());
    return 2;
  }

  int divergences = 0;
  if (baseline_header != candidate_header) {
    // Name the first offending column, not just the fact of a mismatch.
    const std::size_t columns =
        std::max(baseline_header.size(), candidate_header.size());
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& expected =
          c < baseline_header.size() ? baseline_header[c] : "<absent>";
      const std::string& actual =
          c < candidate_header.size() ? candidate_header[c] : "<absent>";
      if (expected != actual) {
        std::fprintf(stderr,
                     "csv_compare: header mismatch at column %zu: "
                     "'%s' vs '%s'\n",
                     c, expected.c_str(), actual.c_str());
        break;
      }
    }
    ++divergences;
  }

  // Keys must be unique on both sides: a duplicate would silently shadow
  // the row it collides with, so every comparison after it would lie.
  std::map<std::string, std::vector<std::string>> candidates;
  for (const auto& row : candidate_rows) {
    const std::string key = RowKey(row);
    if (!candidates.emplace(key, row).second) {
      std::fprintf(stderr, "csv_compare: duplicate key '%s' in %s\n",
                   key.c_str(), candidate_path.c_str());
      ++divergences;
    }
  }
  {
    std::map<std::string, int> baseline_keys;
    for (const auto& row : baseline_rows) {
      if (++baseline_keys[RowKey(row)] == 2) {
        std::fprintf(stderr, "csv_compare: duplicate key '%s' in %s\n",
                     RowKey(row).c_str(), baseline_path.c_str());
        ++divergences;
      }
    }
  }
  std::map<std::string, bool> seen;
  for (const auto& [key, row] : candidates) seen[key] = false;

  for (const auto& row : baseline_rows) {
    const std::string key = RowKey(row);
    const auto it = candidates.find(key);
    if (it == candidates.end()) {
      std::fprintf(stderr, "csv_compare: row '%s' missing from %s\n",
                   key.c_str(), candidate_path.c_str());
      ++divergences;
      continue;
    }
    seen[key] = true;
    const std::vector<std::string>& other = it->second;
    if (other.size() != row.size()) {
      std::fprintf(stderr, "csv_compare: row '%s' arity differs\n",
                   key.c_str());
      ++divergences;
      continue;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      double expected, actual;
      const bool numeric = ParseNumber(row[c], &expected);
      if (numeric != ParseNumber(other[c], &actual)) {
        std::fprintf(stderr,
                     "csv_compare: row '%s' col %zu type differs "
                     "('%s' vs '%s')\n",
                     key.c_str(), c, row[c].c_str(), other[c].c_str());
        ++divergences;
      } else if (numeric) {
        const double diff = std::fabs(expected - actual);
        const double scale = std::max(std::fabs(expected),
                                      std::fabs(actual));
        const bool within_abs = diff <= tolerance;
        const bool within_rel =
            rtolerance > 0.0 && diff <= rtolerance * scale;
        if (!within_abs && !within_rel) {
          std::fprintf(stderr,
                       "csv_compare: row '%s' col %zu: |%s - %s| > %g"
                       "%s\n",
                       key.c_str(), c, row[c].c_str(), other[c].c_str(),
                       tolerance,
                       rtolerance > 0.0 ? " (and beyond --rtol)" : "");
          ++divergences;
        }
      } else if (row[c] != other[c]) {
        std::fprintf(stderr,
                     "csv_compare: row '%s' col %zu: '%s' != '%s'\n",
                     key.c_str(), c, row[c].c_str(), other[c].c_str());
        ++divergences;
      }
    }
  }
  for (const auto& [key, was_seen] : seen) {
    if (!was_seen) {
      std::fprintf(stderr, "csv_compare: unexpected extra row '%s' in %s\n",
                   key.c_str(), candidate_path.c_str());
      ++divergences;
    }
  }

  if (divergences > 0) {
    std::fprintf(stderr, "csv_compare: %d divergence(s) beyond tol=%g\n",
                 divergences, tolerance);
    return 1;
  }
  std::printf("csv_compare: %s matches %s within tol=%g\n",
              candidate_path.c_str(), baseline_path.c_str(), tolerance);
  return 0;
}
