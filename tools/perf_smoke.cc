// Perf smoke check for the episode hot path. Measures, on the synthetic
// LargeCross pair:
//   - steady-state episode Reset latency (snapshot/rollback fast path),
//   - the legacy reset recipe (deep-copy + re-add pretend users +
//     BeginServing) replicated in-process for a fair before/after,
//   - per-injection latency across quartiles of a 128-profile campaign
//     (amortized growth means the quartiles should be flat),
//   - Dot/Axpy/SquaredDistance kernel throughput at dim 256,
//   - observability overhead: reset/injection latency with telemetry
//     runtime-disabled (the default) vs runtime-enabled.
//
// Writes one CSV row to the path given as argv[1] (default
// bench_results/micro_hotpath.csv relative to the working directory) and
// mirrors it on stdout; next to it, obs_overhead.csv (the enabled-vs-
// disabled comparison), campaign_scaling.csv (the sharded-runner
// threads x campaigns/sec sweep, ISSUE 6) and telemetry_largecross.json
// (the JSON metrics summary of an instrumented LargeCross episode run).
// Exits non-zero if the fast reset is not at least 5x faster than the
// legacy recipe, or — on machines with >= 8 hardware threads — if the
// sharded runner at 8 threads is not at least 3x the sequential
// campaigns/sec.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/baselines.h"
#include "core/environment.h"
#include "core/parallel_runner.h"
#include "core/runner.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "fault/fault_injector.h"
#include "math/vector_ops.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rec/pinsage_lite.h"
#include "util/rng.h"

namespace {

using namespace copyattack;
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "bench_results/micro_hotpath.csv";

  auto world =
      data::GenerateSyntheticWorld(data::SyntheticConfig::LargeCross());
  util::Rng split_rng(23);
  auto split = data::SplitDataset(world.dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng fit_rng(29);
  model.Fit(split.train, 3, fit_rng);

  core::EnvConfig env_config;
  env_config.budget = 30;
  env_config.num_pretend_users = 50;
  core::AttackEnvironment env(world.dataset, split.train, &model,
                              env_config);

  // Steady-state reset latency (avg over 20, after a warmup reset).
  env.Reset(0);
  auto t0 = Clock::now();
  const int kResets = 20;
  for (int i = 0; i < kResets; ++i) env.Reset(0);
  auto t1 = Clock::now();
  const double reset_fast_us = 1e6 * Seconds(t0, t1) / kResets;

  // The pre-rollback reset recipe: deep-copy the training data, re-add the
  // pretend users, rebuild the serving state. Measured on the same data
  // and model so the comparison is apples-to-apples.
  double reset_legacy_us = 0.0;
  {
    std::vector<data::Profile> pretend;
    util::Rng pretend_rng(31);
    for (std::size_t i = 0; i < env_config.num_pretend_users; ++i) {
      const data::UserId donor = static_cast<data::UserId>(
          pretend_rng.UniformUint64(split.train.num_users()));
      data::Profile profile = split.train.UserProfile(donor);
      if (profile.empty()) profile = {0, 1, 2};
      pretend.push_back(std::move(profile));
    }
    const int kLegacyResets = 20;
    auto s = Clock::now();
    for (int i = 0; i < kLegacyResets; ++i) {
      data::Dataset polluted = split.train;
      for (const data::Profile& profile : pretend) {
        polluted.AddUser(data::Profile(profile));
      }
      model.BeginServing(polluted);
    }
    auto e = Clock::now();
    reset_legacy_us = 1e6 * Seconds(s, e) / kLegacyResets;
    // The loop above left the model serving the throwaway dataset; restore
    // the environment's serving state before the injection measurements.
    env.Reset(0);
  }

  // Per-injection cost: inject 128 profiles, timed in 4 quartiles of 32.
  // Flat quartiles demonstrate O(1) amortized growth.
  env.Reset(0);
  util::Rng rng(5);
  std::vector<data::Profile> profiles;
  for (int i = 0; i < 128; ++i) {
    data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(world.dataset.source.num_users()));
    profiles.push_back(world.dataset.source.UserProfile(u));
    if (profiles.back().empty()) profiles.back() = {0, 1, 2};
  }
  double inject_us[4] = {0, 0, 0, 0};
  for (int q = 0; q < 4; ++q) {
    auto s = Clock::now();
    for (int i = 0; i < 32; ++i) {
      env.black_box().Inject(data::Profile(profiles[q * 32 + i]));
    }
    auto e = Clock::now();
    inject_us[q] = 1e6 * Seconds(s, e) / 32;
  }

  // Observability overhead on the episode hot path: the same reset +
  // injection recipe with telemetry runtime-disabled (the default above)
  // vs runtime-enabled. Disabled instrumentation costs one relaxed atomic
  // load and a predicted branch per call site.
  double reset_disabled_us = 0.0, reset_enabled_us = 0.0;
  double inject_disabled_us = 0.0, inject_enabled_us = 0.0;
  {
    const int kObsResets = 40;
    const int kObsInjects = 128;
    const auto measure = [&](double* reset_us, double* inject_us_out) {
      env.Reset(0);
      auto s = Clock::now();
      for (int i = 0; i < kObsResets; ++i) env.Reset(0);
      auto e = Clock::now();
      *reset_us = 1e6 * Seconds(s, e) / kObsResets;
      s = Clock::now();
      for (int i = 0; i < kObsInjects; ++i) {
        env.black_box().Inject(
            data::Profile(profiles[i % profiles.size()]));
      }
      e = Clock::now();
      *inject_us_out = 1e6 * Seconds(s, e) / kObsInjects;
    };
    measure(&reset_disabled_us, &inject_disabled_us);
    obs::SetEnabled(true);
    measure(&reset_enabled_us, &inject_enabled_us);
    obs::SetEnabled(false);
  }

  // Instrumented LargeCross episode run for the committed telemetry
  // artifact: full env.Step episodes (spans, latency histograms, reward
  // histograms, black-box query counters) with telemetry enabled.
  {
    obs::MetricsRegistry::Global().ResetAll();
    obs::TraceRecorder::Global().Clear();
    obs::SetEnabled(true);
    util::Rng episode_rng(41);
    for (int episode = 0; episode < 4; ++episode) {
      env.Reset(0);
      while (!env.done()) {
        const data::UserId donor = static_cast<data::UserId>(
            episode_rng.UniformUint64(world.dataset.source.num_users()));
        data::Profile profile = world.dataset.source.UserProfile(donor);
        if (profile.empty()) profile = {0, 1, 2};
        env.Step(std::move(profile));
      }
    }
    obs::SetEnabled(false);
  }

  // Fault-tolerance decorator overhead (ISSUE 5): the same injection
  // recipe through a fault-injecting oracle wrapped by the resilient
  // client (light schedule, virtual clock — backoff waits cost no wall
  // time) vs the undecorated oracle measured above. The committed CSV
  // documents that the decorators stay off the clean hot path.
  double inject_faulted_us = 0.0;
  {
    core::EnvConfig faulted_config = env_config;
    faulted_config.fault = fault::FaultScheduleConfig::Light(1337);
    faulted_config.resilience.enabled = true;
    core::AttackEnvironment faulted_env(world.dataset, split.train, &model,
                                        faulted_config);
    faulted_env.Reset(0);
    const int kFaultInjects = 128;
    auto s = Clock::now();
    for (int i = 0; i < kFaultInjects; ++i) {
      faulted_env.black_box().Inject(
          data::Profile(profiles[i % profiles.size()]));
    }
    auto e = Clock::now();
    inject_faulted_us = 1e6 * Seconds(s, e) / kFaultInjects;
  }

  // Kernel throughput at dim 256 (flop counts: dot/axpy 2n, sqdist 3n).
  double dot_gflops = 0.0, axpy_gflops = 0.0, sqdist_gflops = 0.0;
  {
    std::vector<float> a(256), b(256), y(256);
    util::Rng krng(9);
    for (auto& v : a) v = static_cast<float>(krng.UniformDouble());
    for (auto& v : b) v = static_cast<float>(krng.UniformDouble());
    volatile float sink = 0.0f;
    const long iters = 2000000;
    auto s = Clock::now();
    for (long i = 0; i < iters; ++i) {
      sink = sink + math::Dot(a.data(), b.data(), 256);
    }
    auto e = Clock::now();
    dot_gflops = 2.0 * 256 * iters / Seconds(s, e) / 1e9;
    s = Clock::now();
    for (long i = 0; i < iters; ++i) {
      math::Axpy(1.0001f, a.data(), y.data(), 256);
    }
    e = Clock::now();
    axpy_gflops = 2.0 * 256 * iters / Seconds(s, e) / 1e9;
    s = Clock::now();
    for (long i = 0; i < iters; ++i) {
      sink = sink + math::SquaredDistance(a.data(), b.data(), 256);
    }
    e = Clock::now();
    sqdist_gflops = 3.0 * 256 * iters / Seconds(s, e) / 1e9;
    (void)sink;
  }

  const double speedup = reset_legacy_us / reset_fast_us;
  const std::string header =
      "reset_fast_us,reset_legacy_us,reset_speedup,"
      "inject_q0_us,inject_q1_us,inject_q2_us,inject_q3_us,"
      "dot256_gflops,axpy256_gflops,sqdist256_gflops";
  char row[512];
  std::snprintf(row, sizeof(row),
                "%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%.2f,%.2f",
                reset_fast_us, reset_legacy_us, speedup, inject_us[0],
                inject_us[1], inject_us[2], inject_us[3], dot_gflops,
                axpy_gflops, sqdist_gflops);

  const std::filesystem::path out(out_path);
  if (out.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(out.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "perf_smoke: cannot create %s: %s\n",
                   out.parent_path().c_str(), ec.message().c_str());
      return 2;
    }
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "%s\n%s\n", header.c_str(), row);
  std::fclose(f);
  std::printf("%s\n%s\n", header.c_str(), row);

  // Companion artifacts next to the hot-path CSV.
  const std::filesystem::path result_dir =
      out.has_parent_path() ? out.parent_path() : std::filesystem::path(".");
  {
    const double inject_overhead_pct =
        inject_disabled_us > 0.0
            ? 100.0 * (inject_enabled_us - inject_disabled_us) /
                  inject_disabled_us
            : 0.0;
    const std::string overhead_path =
        (result_dir / "obs_overhead.csv").string();
    std::FILE* of = std::fopen(overhead_path.c_str(), "w");
    if (of == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot open %s\n",
                   overhead_path.c_str());
      return 2;
    }
    const std::string overhead_header =
        "reset_disabled_us,reset_enabled_us,"
        "inject_disabled_us,inject_enabled_us,inject_enabled_overhead_pct";
    char overhead_row[256];
    std::snprintf(overhead_row, sizeof(overhead_row),
                  "%.2f,%.2f,%.3f,%.3f,%.1f", reset_disabled_us,
                  reset_enabled_us, inject_disabled_us, inject_enabled_us,
                  inject_overhead_pct);
    std::fprintf(of, "%s\n%s\n", overhead_header.c_str(), overhead_row);
    std::fclose(of);
    std::printf("%s\n%s\n", overhead_header.c_str(), overhead_row);
  }
  {
    const double fault_overhead_pct =
        inject_disabled_us > 0.0
            ? 100.0 * (inject_faulted_us - inject_disabled_us) /
                  inject_disabled_us
            : 0.0;
    const std::string fault_path =
        (result_dir / "fault_overhead.csv").string();
    std::FILE* ff = std::fopen(fault_path.c_str(), "w");
    if (ff == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot open %s\n",
                   fault_path.c_str());
      return 2;
    }
    const std::string fault_header =
        "inject_plain_us,inject_faulted_us,fault_overhead_pct";
    char fault_row[128];
    std::snprintf(fault_row, sizeof(fault_row), "%.3f,%.3f,%.1f",
                  inject_disabled_us, inject_faulted_us, fault_overhead_pct);
    std::fprintf(ff, "%s\n%s\n", fault_header.c_str(), fault_row);
    std::fclose(ff);
    std::printf("%s\n%s\n", fault_header.c_str(), fault_row);
  }
  {
    const std::string telemetry_path =
        (result_dir / "telemetry_largecross.json").string();
    if (!obs::WriteMetricsJson(obs::MetricsRegistry::Global().Snapshot(),
                               telemetry_path)) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n",
                   telemetry_path.c_str());
      return 2;
    }
    std::printf("telemetry summary: %s\n", telemetry_path.c_str());
  }

  // Campaign-level scaling (ISSUE 6): the sharded runner vs sequential
  // RunCampaign on LargeCross, TargetAttack40 over cold target items.
  // Writes campaign_scaling.csv (threads x campaigns/sec sweep, with the
  // machine's hardware thread count so the committed artifact is honest
  // about where it was measured) and gates >= 3x at 8 threads — but only
  // on machines that actually have >= 8 hardware threads.
  double seq_cps = 0.0;
  double cps_at_8 = 0.0;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  {
    util::Rng target_rng(47);
    const std::vector<data::ItemId> targets =
        data::SampleColdTargetItems(world.dataset, 8, 10, target_rng);
    core::CampaignConfig campaign;
    campaign.env.budget = 20;
    campaign.env.num_pretend_users = 30;
    campaign.episodes = 1;
    campaign.eval_users = 60;
    campaign.seed = 91;
    campaign.num_threads = 1;
    const core::ModelFactory model_factory = [&] {
      return std::make_unique<rec::PinSageLite>(model);
    };
    const core::StrategyFactory strategy_factory = [&](std::uint64_t) {
      return std::make_unique<core::TargetAttack>(world.dataset, 0.4);
    };

    auto s = Clock::now();
    const core::CampaignResult sequential = core::RunCampaign(
        world.dataset, split.train, model_factory, strategy_factory,
        targets, campaign);
    auto e = Clock::now();
    (void)sequential;
    seq_cps = static_cast<double>(targets.size()) / Seconds(s, e);

    const std::string scaling_path =
        (result_dir / "campaign_scaling.csv").string();
    std::FILE* sf = std::fopen(scaling_path.c_str(), "w");
    if (sf == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot open %s\n",
                   scaling_path.c_str());
      return 2;
    }
    std::fprintf(sf,
                 "threads,campaigns_per_sec,speedup_vs_sequential,"
                 "hw_threads\n");
    std::printf(
        "threads,campaigns_per_sec,speedup_vs_sequential,hw_threads\n");
    std::fprintf(sf, "seq,%.3f,1.00,%u\n", seq_cps, hw_threads);
    std::printf("seq,%.3f,1.00,%u\n", seq_cps, hw_threads);
    const std::size_t sweep[] = {1, 2, 4, 8};
    for (const std::size_t jobs : sweep) {
      core::ParallelRunnerOptions options;
      options.jobs = jobs;
      const core::ParallelCampaignRunner runner(
          world.dataset, split.train, model_factory, strategy_factory,
          options);
      const core::ParallelCampaignResult sharded =
          runner.Run(targets, campaign);
      if (jobs == 8) cps_at_8 = sharded.campaigns_per_sec;
      std::fprintf(sf, "%zu,%.3f,%.2f,%u\n", jobs,
                   sharded.campaigns_per_sec,
                   seq_cps > 0.0 ? sharded.campaigns_per_sec / seq_cps
                                 : 0.0,
                   hw_threads);
      std::printf("%zu,%.3f,%.2f,%u\n", jobs, sharded.campaigns_per_sec,
                  seq_cps > 0.0 ? sharded.campaigns_per_sec / seq_cps
                                : 0.0,
                  hw_threads);
    }
    std::fclose(sf);
  }

  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL reset speedup %.1fx < 5x required\n",
                 speedup);
    return 1;
  }
  if (hw_threads >= 8) {
    const double scaling = seq_cps > 0.0 ? cps_at_8 / seq_cps : 0.0;
    if (scaling < 3.0) {
      std::fprintf(stderr,
                   "perf_smoke: FAIL campaign scaling %.2fx < 3x required "
                   "at 8 threads (%u hardware threads)\n",
                   scaling, hw_threads);
      return 1;
    }
    std::printf("perf_smoke: campaign scaling %.2fx at 8 threads\n",
                scaling);
  } else {
    std::printf(
        "perf_smoke: campaign scaling gate skipped (%u hardware threads "
        "< 8)\n",
        hw_threads);
  }
  std::printf("perf_smoke: OK (reset %.1fx faster than legacy)\n", speedup);
  return 0;
}
