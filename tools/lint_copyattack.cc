// Repo-invariant linter for the copyattack tree, registered as a ctest
// (label `lint`). Scans the directories given on the command line for C++
// sources and enforces the project contracts that neither the compiler nor
// clang-tidy check:
//
//   std-rand      std::rand/srand — all randomness must flow through
//                 util/rng so experiments replay from one seed.
//   time-seed     time(...)/std::random_device seeding outside util/rng —
//                 wall-clock entropy breaks bit-identical reruns.
//   raw-new       raw new/delete — ownership is vector/unique_ptr based;
//                 the only exception is the intentionally-leaked
//                 process-lifetime singleton, annotated inline.
//   printf-family printf/fprintf/... outside util/logging, util/check and
//                 util/string_utils — output goes through CA_LOG so the
//                 log level filter actually filters.
//   header-guard  headers must open with `#pragma once` or a
//                 COPYATTACK_*_H_ include guard.
//   float-eq      ==/!= against floating-point literals — exact compares
//                 are only meaningful in documented sparsity/sentinel
//                 guards, annotated inline.
//   raw-clock     std::chrono clock reads inside core/ or rec/ — timing in
//                 the instrumented layers must flow through src/obs
//                 (obs::MonotonicNanos, OBS_SPAN, OBS_SCOPED_TIMER_US) so
//                 the telemetry exporters see every measurement.
//
// A line is exempted by `lint:allow(<rule-id>)` in a trailing comment;
// whole files are exempted per rule in `kApprovedFiles`. Diagnostics are
// `file:line: [rule] message`, exit status 1 on any violation — the same
// contract as a compiler, so it slots into ctest/check_all unchanged.
//
// Lexing is delegated to the copyattack-analyze tokenizer
// (tools/analyze/tokenizer.h): the rules match against its per-line
// "blanked" view, where comments and string/char-literal interiors —
// including raw strings and digit separators, which the regex-era stripper
// misread — are spaces and code is byte-for-byte in place.
//
// Self-test: tools/lint_selftest/ seeds one violation per rule; ctest runs
// the linter over it with WILL_FAIL so a rule that stops firing turns the
// build red.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/tokenizer.h"

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Per-rule lists of path suffixes where the pattern is the implementation
/// of the invariant itself (the RNG may read entropy, the logger may call
/// fprintf) rather than a violation of it.
struct ApprovedFiles {
  std::string_view rule;
  std::vector<std::string_view> suffixes;
};

const std::vector<ApprovedFiles>& ApprovedFileTable() {
  static const std::vector<ApprovedFiles> table = {
      {"time-seed", {"util/rng.cc", "util/rng.h"}},
      {"printf-family",
       {"util/logging.cc", "util/logging.h", "util/check.h",
        "util/string_utils.cc"}},
  };
  return table;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool IsApproved(std::string_view rule, std::string_view path) {
  for (const ApprovedFiles& entry : ApprovedFileTable()) {
    if (entry.rule != rule) continue;
    for (const std::string_view suffix : entry.suffixes) {
      if (EndsWith(path, suffix)) return true;
    }
  }
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `code[pos]` starts `word` as a whole identifier: not a substring
/// of a longer identifier and not a member access like `foo.word`.
/// Namespace qualification (`std::word`) still matches — `std::rand` is
/// exactly what the std-rand rule exists to catch.
bool MatchesWordAt(std::string_view code, std::size_t pos,
                   std::string_view word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && (IsIdentChar(code[pos - 1]) || code[pos - 1] == '.'))
    return false;
  const std::size_t end = pos + word.size();
  return end >= code.size() || !IsIdentChar(code[end]);
}

bool ContainsWord(std::string_view code, std::string_view word) {
  for (std::size_t pos = code.find(word); pos != std::string_view::npos;
       pos = code.find(word, pos + 1)) {
    if (MatchesWordAt(code, pos, word)) return true;
  }
  return false;
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Detects `== <float-literal>` / `!= <float-literal>` (either order).
bool HasFloatLiteralCompare(std::string_view code) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if ((code[i] != '=' && code[i] != '!') || code[i + 1] != '=') continue;
    if (i > 0 && (code[i - 1] == '=' || code[i - 1] == '!' ||
                  code[i - 1] == '<' || code[i - 1] == '>'))
      continue;
    if (i + 2 < code.size() && code[i + 2] == '=') continue;
    // Right operand: skip spaces and an optional sign, then look for
    // `digits '.'`.
    std::size_t r = i + 2;
    while (r < code.size() && code[r] == ' ') ++r;
    if (r < code.size() && (code[r] == '-' || code[r] == '+')) ++r;
    std::size_t digits = r;
    while (digits < code.size() && IsDigit(code[digits])) ++digits;
    if (digits > r && digits < code.size() && code[digits] == '.')
      return true;
    // Left operand: scan back over spaces, then over `f`/digits/'.' — a
    // float literal directly before the operator.
    std::size_t l = i;
    while (l > 0 && code[l - 1] == ' ') --l;
    if (l > 0 && (code[l - 1] == 'f' || code[l - 1] == 'F')) --l;
    bool saw_dot = false;
    bool saw_digit = false;
    while (l > 0 && (IsDigit(code[l - 1]) || code[l - 1] == '.')) {
      if (code[l - 1] == '.') saw_dot = true;
      if (IsDigit(code[l - 1])) saw_digit = true;
      --l;
    }
    if (saw_dot && saw_digit) return true;
  }
  return false;
}

bool IsHeaderPath(const fs::path& path) {
  return path.extension() == ".h" || path.extension() == ".hpp";
}

void CheckHeaderGuard(const fs::path& path,
                      const std::vector<std::string>& lines,
                      std::vector<Violation>* violations) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view trimmed(lines[i]);
    while (!trimmed.empty() && (trimmed.front() == ' ' ||
                                trimmed.front() == '\t')) {
      trimmed.remove_prefix(1);
    }
    if (trimmed.empty()) continue;
    if (trimmed.rfind("#pragma once", 0) == 0) return;
    if (trimmed.rfind("#ifndef COPYATTACK_", 0) == 0) return;
    violations->push_back(
        {path.string(), i + 1, "header-guard",
         "header must open with `#pragma once` or a COPYATTACK_*_H_ "
         "include guard"});
    return;
  }
}

void CheckFile(const fs::path& path, std::vector<Violation>* violations) {
  copyattack::analyze::LexedFile lexed;
  std::string io_error;
  if (!copyattack::analyze::LexFileFromDisk(path.string(), &lexed,
                                            &io_error)) {
    violations->push_back({path.string(), 0, "io", io_error});
    return;
  }

  if (IsHeaderPath(path)) {
    CheckHeaderGuard(path, lexed.code_lines, violations);
  }

  const std::string path_str = path.generic_string();
  for (std::size_t i = 0; i < lexed.code_lines.size(); ++i) {
    const std::string& code = lexed.code_lines[i];
    const auto report = [&](std::string_view rule, std::string message) {
      if (IsApproved(rule, path_str) || lexed.Allows(i + 1, "lint:allow",
                                                     rule)) {
        return;
      }
      violations->push_back(
          {path_str, i + 1, std::string(rule), std::move(message)});
    };

    if (ContainsWord(code, "rand") || ContainsWord(code, "srand") ||
        ContainsWord(code, "rand_r")) {
      report("std-rand", "use util::Rng instead of the C rand family");
    }
    if (ContainsWord(code, "time") &&
        (code.find("time(nullptr)") != std::string::npos ||
         code.find("time(NULL)") != std::string::npos ||
         code.find("time(0)") != std::string::npos)) {
      report("time-seed",
             "wall-clock seeding breaks reproducibility; derive seeds "
             "through util::Rng");
    }
    if (ContainsWord(code, "random_device")) {
      report("time-seed",
             "std::random_device is nondeterministic; derive seeds through "
             "util::Rng");
    }
    if (ContainsWord(code, "new")) {
      report("raw-new",
             "raw `new` — use std::make_unique / containers (annotate "
             "intentional process-lifetime singletons)");
    }
    if (ContainsWord(code, "delete") &&
        code.find("= delete") == std::string::npos) {
      report("raw-new", "raw `delete` — use owning types instead");
    }
    for (const std::string_view fn :
         {"printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
          "vsnprintf", "puts", "fputs", "putchar"}) {
      if (ContainsWord(code, fn)) {
        report("printf-family",
               "direct stdio output — route through CA_LOG / util::check");
        break;
      }
    }
    if (HasFloatLiteralCompare(code)) {
      report("float-eq",
             "exact floating-point compare — use a tolerance, or annotate "
             "a deliberate sparsity/sentinel guard");
    }
    if (path_str.find("core/") != std::string::npos ||
        path_str.find("rec/") != std::string::npos) {
      for (const std::string_view clock :
           {"steady_clock", "system_clock", "high_resolution_clock"}) {
        if (ContainsWord(code, clock)) {
          report("raw-clock",
                 "raw std::chrono clock read in core/rec — time through "
                 "obs::MonotonicNanos / OBS_SPAN / OBS_SCOPED_TIMER_US so "
                 "the telemetry exporters see it");
          break;
        }
      }
    }
  }
}

bool ShouldScan(const fs::path& path) {
  const auto ext = path.extension();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <dir-or-file>...\n", argv[0]);
    return 2;
  }
  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  for (int a = 1; a < argc; ++a) {
    const fs::path root(argv[a]);
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      ++files_scanned;
      CheckFile(root, &violations);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "lint_copyattack: no such path: %s\n", argv[a]);
      return 2;
    }
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file() || !ShouldScan(it->path())) continue;
      ++files_scanned;
      CheckFile(it->path(), &violations);
    }
  }
  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  std::fprintf(stderr, "lint_copyattack: %zu file(s), %zu violation(s)\n",
               files_scanned, violations.size());
  return violations.empty() ? 0 : 1;
}
