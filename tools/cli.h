#ifndef COPYATTACK_TOOLS_CLI_H_
#define COPYATTACK_TOOLS_CLI_H_

#include <ostream>

namespace copyattack::tools {

/// Entry point of the `copyattack` command-line tool, separated from
/// main() so the commands are unit-testable. Commands:
///
///   copyattack generate --config small|large|tiny --out PREFIX [--seed N]
///       Generates a synthetic cross-domain world and writes it to
///       PREFIX.{meta,target,source}.csv.
///
///   copyattack stats --data PREFIX
///       Prints Table-1 statistics of a saved dataset pair.
///
///   copyattack train --data PREFIX [--max-epochs N] [--patience N]
///       Trains the PinSage-style target model with early stopping and
///       prints validation/test quality.
///
///   copyattack attack --data PREFIX --method NAME [--targets N]
///       [--budget N] [--episodes N] [--depth N] [--seed N]
///       [--faults off|light|aggressive] [--fault_seed N]
///       [--checkpoint_dir DIR] [--checkpoint_every N] [--resume 1]
///       Runs one attacking method over sampled cold target items and
///       prints the WithoutAttack reference row plus the method's row.
///       Methods: RandomAttack, TargetAttack40/70/100, PolicyNetwork,
///       CopyAttack, CopyAttack-Masking, CopyAttack-Length.
///       --faults injects deterministic oracle faults (and enables the
///       retry/circuit-breaker client); --checkpoint_dir turns on
///       crash-safe checkpointing, --resume continues from it.
///
///   copyattack help
///       Prints usage.
///
/// Returns a process exit code (0 on success).
int RunCli(int argc, const char* const* argv, std::ostream& out);

}  // namespace copyattack::tools

#endif  // COPYATTACK_TOOLS_CLI_H_
