#ifndef COPYATTACK_TOOLS_CLI_H_
#define COPYATTACK_TOOLS_CLI_H_

#include <ostream>

namespace copyattack::tools {

/// Entry point of the `copyattack` command-line tool, separated from
/// main() so the commands are unit-testable. Commands:
///
///   copyattack generate --config small|large|tiny --out PREFIX [--seed N]
///       Generates a synthetic cross-domain world and writes it to
///       PREFIX.{meta,target,source}.csv.
///
///   copyattack stats --data PREFIX
///       Prints Table-1 statistics of a saved dataset pair.
///
///   copyattack train --data PREFIX [--max-epochs N] [--patience N]
///       Trains the PinSage-style target model with early stopping and
///       prints validation/test quality.
///
///   copyattack attack --data PREFIX --method NAME [--targets N]
///       [--budget N] [--episodes N] [--depth N] [--seed N] [--jobs N]
///       [--faults off|light|aggressive] [--fault_seed N]
///       [--checkpoint_dir DIR] [--checkpoint_every N] [--resume 1]
///       Runs one attacking method over sampled cold target items and
///       prints the WithoutAttack reference row plus the method's row.
///       Methods: RandomAttack, TargetAttack40/70/100, PolicyNetwork,
///       CopyAttack, CopyAttack-Masking, CopyAttack-Length,
///       SurrogateTransfer (alias surrogate_transfer), Influence
///       (alias influence).
///       --faults injects deterministic oracle faults (and enables the
///       retry/circuit-breaker client); --checkpoint_dir turns on
///       crash-safe checkpointing, --resume continues from it. --jobs
///       routes the campaign through the sharded parallel runner with
///       batched oracle queries (--jobs=1 output is bit-identical to
///       the sequential runner).
///
///   copyattack attack-server --data PREFIX [--queue FILE|-] [--jobs N]
///       [--depth N] [--checkpoint_root DIR] [--resume 1]
///       [--checkpoint_every N]
///       Long-running promotion service: reads `id,method,targets,
///       budget,episodes,seed` job rows from the queue CSV (stdin with
///       `--queue -`), runs each as a sharded campaign over the shared
///       thread pool, and prints one Table-2 row per job. With
///       --checkpoint_root each job persists crash-safe checkpoints
///       under `<root>/job_<id>`; --resume continues interrupted jobs.
///
///   copyattack help
///       Prints usage.
///
/// Returns a process exit code (0 on success).
int RunCli(int argc, const char* const* argv, std::ostream& out);

}  // namespace copyattack::tools

#endif  // COPYATTACK_TOOLS_CLI_H_
