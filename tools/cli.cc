#include "cli.h"

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/parallel_runner.h"
#include "core/runner.h"
#include "data/io.h"
#include "data/split.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "fault/fault_injector.h"
#include "obs/export.h"
#include "obs/time.h"
#include "obs/trace.h"
#include "rec/pinsage_lite.h"
#include "rec/trainer.h"
#include "serve/attack_server.h"
#include "serve/job_queue.h"
#include "util/flags.h"
#include "util/string_utils.h"

namespace copyattack::tools {
namespace {

util::FlagParser MakeParser() {
  util::FlagParser parser;
  parser.Define("config", "small", "generate: world preset (small|large|tiny)")
      .Define("out", "world", "generate: output path prefix")
      .Define("data", "world", "stats/train/attack: dataset path prefix")
      .Define("seed", "7", "generate/attack: RNG seed")
      .Define("max-epochs", "40", "train: epoch cap")
      .Define("patience", "5", "train: early-stopping patience")
      .Define("method", "CopyAttack",
              "attack: method name (CopyAttack[-Masking|-Length], "
              "PolicyNetwork, RandomAttack, TargetAttack40/70/100, "
              "surrogate_transfer, influence)")
      .Define("targets", "10", "attack: number of cold target items")
      .Define("budget", "30", "attack: profile budget per episode")
      .Define("episodes", "15", "attack: training episodes (learning methods)")
      .Define("depth", "3", "attack: clustering tree depth")
      .Define("threads", "1", "attack: worker threads over target items")
      .DefinePositiveInt("jobs", "1",
                         "attack/attack-server: sharded-runner worker "
                         "threads; attack routes through the parallel "
                         "runner when this is supplied")
      .Define("queue", "-",
              "attack-server: promotion-jobs CSV path ('-' = stdin)")
      .Define("checkpoint_root", "",
              "attack-server: per-job checkpoint tree root (empty = off)")
      .Define("job_deadline", "0",
              "attack-server: per-job wall-clock deadline in seconds; "
              "overrunning jobs are killed at an episode boundary and "
              "retried from their checkpoint (0 = no watchdog)")
      .Define("max_attempts", "3",
              "attack-server: attempts (runs + retries, crashes included) "
              "before a job is parked in quarantine.csv (0 = unlimited)")
      .Define("retry_backoff", "0",
              "attack-server: base of the exponential retry backoff in "
              "seconds (0 = retry immediately)")
      .Define("faults", "off",
              "attack: black-box fault schedule (off|light|aggressive); "
              "anything but off also enables the resilient retry client")
      .Define("fault_seed", "64279", "attack: fault-schedule RNG seed")
      .Define("checkpoint_dir", "",
              "attack: crash-safe checkpoint directory (empty = off)")
      .Define("checkpoint_every", "1",
              "attack: episodes between mid-target checkpoints")
      .Define("resume", "0",
              "attack: resume from --checkpoint_dir if a checkpoint exists")
      .Define("telemetry_out", "",
              "any command: enable telemetry and export metrics.csv, "
              "summary.json and trace.json into this directory");
  return parser;
}

int PrintHelp(const util::FlagParser& parser, std::ostream& out) {
  out << "usage: copyattack "
         "<generate|stats|train|attack|attack-server|help> [flags]\n\n"
      << "flags:\n"
      << parser.HelpText();
  return 0;
}

int CmdGenerate(const util::FlagParser& parser, std::ostream& out) {
  data::SyntheticConfig config;
  const std::string preset = parser.GetString("config");
  if (preset == "small") {
    config = data::SyntheticConfig::SmallCross();
  } else if (preset == "large") {
    config = data::SyntheticConfig::LargeCross();
  } else if (preset == "tiny") {
    config = data::SyntheticConfig::Tiny();
  } else {
    out << "error: unknown --config " << preset << '\n';
    return 2;
  }
  if (parser.WasSupplied("seed")) {
    config.seed = parser.GetSizeT("seed");
  }
  const data::SyntheticWorld world = data::GenerateSyntheticWorld(config);
  const std::string prefix = parser.GetString("out");
  if (!data::SaveCrossDomain(world.dataset, prefix)) {
    out << "error: could not write " << prefix << ".*.csv\n";
    return 1;
  }
  out << data::FormatStats(data::ComputeStats(world.dataset));
  out << "written: " << prefix << ".{meta,target,source}.csv\n";
  return 0;
}

/// Loads a dataset pair or reports the failure.
bool LoadOrComplain(const util::FlagParser& parser,
                    data::CrossDomainDataset* dataset, std::ostream& out) {
  const std::string prefix = parser.GetString("data");
  data::IoError error;
  if (!data::LoadCrossDomain(prefix, dataset, &error)) {
    out << "error: could not load dataset prefix " << prefix << ": "
        << error.Format() << '\n';
    return false;
  }
  return true;
}

int CmdStats(const util::FlagParser& parser, std::ostream& out) {
  data::CrossDomainDataset dataset("", 1);
  if (!LoadOrComplain(parser, &dataset, out)) return 1;
  out << data::FormatStats(data::ComputeStats(dataset));
  return 0;
}

int CmdTrain(const util::FlagParser& parser, std::ostream& out) {
  data::CrossDomainDataset dataset("", 1);
  if (!LoadOrComplain(parser, &dataset, out)) return 1;

  util::Rng split_rng(11);
  const data::TrainValidTestSplit split =
      data::SplitDataset(dataset.target, split_rng);

  rec::PinSageLite model;
  rec::TrainOptions options;
  options.max_epochs = parser.GetSizeT("max-epochs");
  options.patience = parser.GetSizeT("patience");
  util::Rng train_rng(13);
  obs::Stopwatch watch;
  const rec::TrainReport report = rec::TrainWithEarlyStopping(
      model, split, dataset.target, options, train_rng);
  out << "epochs:        " << report.epochs_run << '\n'
      << "valid HR@10:   " << report.best_valid_hr << '\n'
      << "test  HR@10:   " << report.test_hr << '\n'
      << "test  NDCG@10: " << report.test_ndcg << '\n'
      << "wall seconds:  " << watch.ElapsedSeconds() << '\n';
  return 0;
}

int CmdAttack(const util::FlagParser& parser, std::ostream& out) {
  data::CrossDomainDataset dataset("", 1);
  if (!LoadOrComplain(parser, &dataset, out)) return 1;

  util::Rng split_rng(11);
  const data::TrainValidTestSplit split =
      data::SplitDataset(dataset.target, split_rng);

  rec::PinSageLite model;
  rec::TrainOptions train_options;
  util::Rng train_rng(13);
  const rec::TrainReport train_report = rec::TrainWithEarlyStopping(
      model, split, dataset.target, train_options, train_rng);
  out << "target model test HR@10: " << train_report.test_hr << '\n';

  core::SourceArtifactOptions artifact_options;
  artifact_options.tree_depth = parser.GetSizeT("depth");
  const core::SourceArtifacts artifacts =
      core::PrepareSourceArtifacts(dataset, artifact_options);

  util::Rng target_rng(parser.GetSizeT("seed"));
  const auto targets = data::SampleColdTargetItems(
      dataset, parser.GetSizeT("targets"), 10, target_rng);
  out << "attacking " << targets.size() << " cold target items\n";

  core::CampaignConfig campaign;
  campaign.env.budget = parser.GetSizeT("budget");
  campaign.episodes = parser.GetSizeT("episodes");
  campaign.seed = parser.GetSizeT("seed");
  campaign.num_threads = parser.GetSizeT("threads");

  const std::string faults = parser.GetString("faults");
  if (faults != "off") {
    const std::uint64_t fault_seed = parser.GetSizeT("fault_seed");
    if (faults == "light") {
      campaign.env.fault = fault::FaultScheduleConfig::Light(fault_seed);
    } else if (faults == "aggressive") {
      campaign.env.fault = fault::FaultScheduleConfig::Aggressive(fault_seed);
    } else {
      out << "error: unknown --faults " << faults << '\n';
      return 2;
    }
    // A faulty oracle without the resilient client would poison rewards
    // with transient errors, so the two are enabled together.
    campaign.env.resilience.enabled = true;
    campaign.env.resilience.seed = fault_seed ^ 0x5EEDULL;
  }

  campaign.checkpoint.dir = parser.GetString("checkpoint_dir");
  campaign.checkpoint.resume = parser.GetBool("resume");
  campaign.checkpoint.every_episodes = parser.GetSizeT("checkpoint_every");

  const core::ModelFactory model_factory = [&] {
    return std::make_unique<rec::PinSageLite>(model);
  };

  const std::string method = parser.GetString("method");
  const serve::StrategySpec spec =
      serve::MakeStrategyFactory(dataset, artifacts, method);
  if (!spec.factory) {
    out << "error: " << spec.error << '\n';
    return 2;
  }
  if (!spec.learns) campaign.episodes = 1;

  out << core::CampaignRowHeader() << '\n';
  const auto clean = core::EvaluateWithoutAttack(
      dataset, split.train, model_factory, targets, campaign);
  out << core::FormatCampaignRow(clean) << '\n';

  core::CampaignResult attacked;
  if (parser.WasSupplied("jobs")) {
    // Sharded runner: --jobs=1 is bit-identical to the sequential path.
    core::ParallelRunnerOptions options;
    options.jobs = parser.GetSizeT("jobs");
    options.checkpoint = campaign.checkpoint;
    const core::ParallelCampaignRunner runner(
        dataset, split.train, model_factory, spec.factory, options);
    core::ParallelCampaignResult sharded = runner.Run(targets, campaign);
    attacked = sharded.aggregate;
    out << core::FormatCampaignRow(attacked) << '\n';
    out << "throughput: "
        << util::FormatDouble(sharded.campaigns_per_sec, 2)
        << " campaigns/s over " << options.jobs << " jobs\n";
  } else {
    attacked = core::RunCampaign(dataset, split.train, model_factory,
                                 spec.factory, targets, campaign);
    out << core::FormatCampaignRow(attacked) << '\n';
  }
  if (!campaign.checkpoint.dir.empty()) {
    out << "checkpoints: " << attacked.checkpoint_saves << " saved";
    if (attacked.resumed_from != core::CheckpointSource::kNone) {
      out << ", resumed from "
          << (attacked.resumed_from == core::CheckpointSource::kPrimary
                  ? "primary"
                  : "fallback");
    }
    out << '\n';
  }
  return 0;
}

int CmdAttackServer(const util::FlagParser& parser, std::ostream& out) {
  data::CrossDomainDataset dataset("", 1);
  if (!LoadOrComplain(parser, &dataset, out)) return 1;

  // Parse the job queue up front so a malformed CSV fails before the
  // (expensive) model training.
  std::vector<serve::PromotionJob> jobs;
  std::string parse_error;
  const std::string queue_path = parser.GetString("queue");
  bool parsed = false;
  if (queue_path == "-") {
    parsed = serve::ParseJobsCsv(std::cin, &jobs, &parse_error);
  } else {
    std::ifstream in(queue_path);
    if (!in) {
      out << "error: could not open --queue " << queue_path << '\n';
      return 1;
    }
    parsed = serve::ParseJobsCsv(in, &jobs, &parse_error);
  }
  if (!parsed) {
    out << "error: " << parse_error << '\n';
    return 2;
  }
  if (jobs.empty()) {
    out << "error: --queue " << queue_path << " holds no jobs\n";
    return 2;
  }

  util::Rng split_rng(11);
  const data::TrainValidTestSplit split =
      data::SplitDataset(dataset.target, split_rng);
  rec::PinSageLite model;
  rec::TrainOptions train_options;
  util::Rng train_rng(13);
  const rec::TrainReport train_report = rec::TrainWithEarlyStopping(
      model, split, dataset.target, train_options, train_rng);
  out << "target model test HR@10: " << train_report.test_hr << '\n';

  core::SourceArtifactOptions artifact_options;
  artifact_options.tree_depth = parser.GetSizeT("depth");
  const core::SourceArtifacts artifacts =
      core::PrepareSourceArtifacts(dataset, artifact_options);
  const core::ModelFactory model_factory = [&] {
    return std::make_unique<rec::PinSageLite>(model);
  };

  serve::ServerConfig server_config;
  server_config.runner.jobs = parser.GetSizeT("jobs");
  server_config.checkpoint_root = parser.GetString("checkpoint_root");
  server_config.resume = parser.GetBool("resume");
  server_config.checkpoint_every = parser.GetSizeT("checkpoint_every");
  server_config.job_deadline_seconds = parser.GetDouble("job_deadline");
  server_config.max_attempts = parser.GetSizeT("max_attempts");
  server_config.retry_backoff_seconds = parser.GetDouble("retry_backoff");

  // SIGTERM/SIGINT now drain gracefully: the running job stops at its
  // next checkpointed episode boundary and the un-run queue is persisted
  // under the checkpoint root.
  serve::InstallDrainSignalHandlers();

  serve::JobQueue queue;
  for (serve::PromotionJob& job : jobs) queue.Push(std::move(job));
  queue.Close();

  serve::AttackServer server(dataset, split.train, model_factory,
                             artifacts, server_config);
  out << "serving " << jobs.size() << " promotion jobs ("
      << server_config.runner.jobs << " worker threads)\n";
  const std::vector<serve::JobReport> reports = server.Drain(&queue);

  bool any_failed = false;
  out << core::CampaignRowHeader() << '\n';
  for (const serve::JobReport& report : reports) {
    if (report.drained) {
      out << "job " << report.job.id << ": drained: " << report.error
          << '\n';
      continue;  // not a failure: checkpointed, resumable
    }
    if (!report.ok) {
      any_failed = true;
      out << "job " << report.job.id
          << (report.quarantined ? ": quarantined: " : ": error: ")
          << report.error << '\n';
      continue;
    }
    std::ostringstream label;
    label << report.job.id << ":" << report.result.aggregate.method;
    core::CampaignResult row = report.result.aggregate;
    row.method = label.str();
    out << core::FormatCampaignRow(row) << "  ("
        << util::FormatDouble(report.result.campaigns_per_sec, 2)
        << " campaigns/s)\n";
  }
  out << "served " << server.jobs_run() << " jobs, "
      << server.jobs_failed() << " failed\n";
  return any_failed ? 1 : 0;
}

}  // namespace

int DispatchCommand(const util::FlagParser& parser, std::ostream& out) {
  const std::string& command = parser.command();
  if (command == "generate") return CmdGenerate(parser, out);
  if (command == "stats") return CmdStats(parser, out);
  if (command == "train") return CmdTrain(parser, out);
  if (command == "attack") return CmdAttack(parser, out);
  if (command == "attack-server") return CmdAttackServer(parser, out);
  if (command.empty() || command == "help") {
    return PrintHelp(parser, out);
  }
  out << "error: unknown command '" << command << "'\n";
  PrintHelp(parser, out);
  return 2;
}

int RunCli(int argc, const char* const* argv, std::ostream& out) {
  util::FlagParser parser = MakeParser();
  if (!parser.Parse(argc - 1, argv + 1)) {
    out << "error: " << parser.error() << '\n';
    PrintHelp(parser, out);
    return 2;
  }
  const std::string telemetry_dir = parser.GetString("telemetry_out");
  if (!telemetry_dir.empty()) obs::SetEnabled(true);
  const int status = DispatchCommand(parser, out);
  if (!telemetry_dir.empty()) {
    obs::SetEnabled(false);
    if (obs::ExportAll(telemetry_dir)) {
      out << "telemetry written to " << telemetry_dir << '\n';
    } else {
      out << "error: could not write telemetry to " << telemetry_dir << '\n';
      return status != 0 ? status : 1;
    }
  }
  return status;
}

}  // namespace copyattack::tools
