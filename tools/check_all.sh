#!/usr/bin/env bash
# End-to-end correctness gate: "clean under check_all" is this repo's
# definition of green. Runs, in order:
#
#   1. the repo-invariant linter + copyattack-analyze semantic passes
#      (fast fail before any long build; JSON report → build/reports/)
#   2. release preset  — -Werror wall, unit + lint suites
#   3. asan-ubsan preset — full build, unit + lint suites under ASan/UBSan
#   4. tsan preset     — full build, unit suite AND the `stress` label
#                        (the stress suite runs ONLY here: TSan is the
#                        tool those tests are written for, and they cost
#                        the most wall clock under it)
#
# Usage: tools/check_all.sh [--quick]
#   --quick  skip the sanitizer presets (release + lint only)
#
# Environment: COPYATTACK_TEST_SEED=<n> reseeds every stochastic test so
# sanitizer sweeps can fuzz seed-dependent paths (see tests/test_seed.h).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 2)"
quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--quick]" >&2
  exit 2
fi

step() { printf '\n== check_all: %s ==\n' "$*"; }

run_preset() {
  local preset="$1"
  local ctest_args=("${@:2}")
  step "configure+build [${preset}]"
  cmake --preset "${preset}" >/dev/null
  cmake --build --preset "${preset}" --parallel "${jobs}"
  step "test [${preset}] ${ctest_args[*]}"
  ctest --preset "${preset}" -j "${jobs}" "${ctest_args[@]}"
}

# 1. Static analysis first: build just the lint tooling in the release
# tree and run it on the tree so contract violations fail in seconds, not
# after three builds. The semantic analyzer (layering, thread-safety
# annotations, determinism discipline) also archives a machine-readable
# report under build/reports/ for CI artifact upload.
step "lint + analyze"
cmake --preset release >/dev/null
cmake --build --preset release --parallel "${jobs}" \
  --target lint_copyattack copyattack-analyze
./build/tools/lint_copyattack src
mkdir -p build/reports
./build/tools/analyze/copyattack-analyze --root=. --format=json \
  > build/reports/analyze_report.json \
  || { cat build/reports/analyze_report.json >&2; exit 1; }
# Analyzer latency budget: the whole point of running it first is that it
# fails in seconds. The per-pass timings_ms block in the JSON report keeps
# that honest — if the summed pass time crosses the budget, a pass has
# regressed (e.g. the call-graph resolver went quadratic) and the gate
# fails before anyone learns to tolerate a slow linter.
analyze_budget_ms=20000
python3 - "${analyze_budget_ms}" <<'PY'
import json, sys
budget = float(sys.argv[1])
report = json.load(open("build/reports/analyze_report.json"))
timings = report["timings_ms"]
total = sum(timings.values())
worst = max(timings, key=timings.get)
print(f"analyze pass timings: {total:.1f} ms total "
      f"(slowest: {worst} at {timings[worst]:.1f} ms)")
if total > budget:
    sys.exit(f"check_all: analyze pass budget exceeded: "
             f"{total:.1f} ms > {budget:.0f} ms")
PY
# SARIF for CI code-scanning upload. Archived unconditionally (the file is
# useful evidence either way); the exit status still gates.
./build/tools/analyze/copyattack-analyze --root=. --format=sarif \
  > build/reports/analyze.sarif \
  || { echo "check_all: analyze (sarif) FAILED" >&2; exit 1; }
# Baseline hard gate: fresh findings fail, and so do stale baseline.json
# entries the analyzer no longer emits (burn-down hygiene — delete the
# entry with the fix). Grandfathered findings are tracked, not fatal.
./build/tools/analyze/copyattack-analyze --root=. \
  --baseline=tools/analyze/baseline.json
echo "analyze reports archived at build/reports/analyze_report.json and build/reports/analyze.sarif"

# 2. Release wall: everything except the stress label (stress is TSan's
# job; see below).
run_preset release -LE stress

# 2b. Telemetry-export smoke: a tiny end-to-end attack with
# --telemetry_out must produce non-empty metrics.csv, summary.json and
# trace.json (the Chrome-trace file). Exercises the whole obs subsystem —
# registry, spans, exporters — through the real CLI.
step "telemetry export smoke"
telemetry_tmp="$(mktemp -d)"
trap 'rm -rf "${telemetry_tmp}"' EXIT
./build/tools/copyattack generate --config tiny \
  --out "${telemetry_tmp}/world" >/dev/null
./build/tools/copyattack attack --data "${telemetry_tmp}/world" \
  --method=TargetAttack40 --targets=2 --budget=6 \
  --telemetry_out="${telemetry_tmp}/telemetry" >/dev/null
for f in metrics.csv summary.json trace.json; do
  if [[ ! -s "${telemetry_tmp}/telemetry/${f}" ]]; then
    echo "check_all: telemetry smoke FAILED: missing or empty ${f}" >&2
    exit 1
  fi
done
# Archive the smoke artifacts next to the static-analysis report so one
# directory (build/reports/) holds everything CI wants to upload.
mkdir -p build/reports/telemetry_smoke
cp "${telemetry_tmp}/telemetry/"{metrics.csv,summary.json,trace.json} \
  build/reports/telemetry_smoke/
echo "telemetry smoke OK (artifacts archived at build/reports/telemetry_smoke/)"

# 2c. Arms-race smoke + bench baseline gate (ISSUE 8): run the tiny
# strategy-zoo x detector-zoo frontier end to end and schema-check its CSV
# (all 9 cells present), then regenerate the deterministic
# defense-detectability bench and compare it against the committed
# baseline with a tolerance so metric drift is caught, not just crashes.
step "arms race smoke + bench baseline gate"
bench_tmp="$(mktemp -d)"
(cd "${bench_tmp}" && "${repo_root}/build/bench/bench_arms_race" \
  --config=tiny >/dev/null)
frontier="${bench_tmp}/bench_results/arms_race_frontier.csv"
if [[ ! -s "${frontier}" ]]; then
  echo "check_all: arms-race smoke FAILED: missing ${frontier}" >&2
  exit 1
fi
expected_header="strategy,detector,hr20,auc,recall_at_5fpr,profiles"
if [[ "$(head -n1 "${frontier}")" != "${expected_header}" ]]; then
  echo "check_all: arms-race smoke FAILED: bad frontier header" >&2
  exit 1
fi
for cell in "CopyAttack,ZScore" "CopyAttack,kNN" "CopyAttack,Adaptive" \
            "SurrogateTransfer,ZScore" "SurrogateTransfer,kNN" \
            "SurrogateTransfer,Adaptive" "Influence,ZScore" \
            "Influence,kNN" "Influence,Adaptive"; do
  if ! grep -q "^${cell}," "${frontier}"; then
    echo "check_all: arms-race smoke FAILED: missing cell ${cell}" >&2
    exit 1
  fi
done
cp "${frontier}" build/reports/arms_race_frontier_tiny.csv
(cd "${bench_tmp}" && "${repo_root}/build/bench/bench_defense" >/dev/null)
./build/tools/csv_compare bench_results/defense_detectability.csv \
  "${bench_tmp}/bench_results/defense_detectability.csv" --tol=0.15
rm -rf "${bench_tmp}"
echo "arms race smoke OK (9/9 cells; defense baseline within tolerance)"

# 2d. Process-level chaos soak (ISSUE 10): fork attack-server runs, kill
# them at seeded random crash points (checkpoint rotation phases, shard
# boundaries, job transitions), resume each time, and require the final
# outcomes bit-identical to an uninterrupted run. The tsan variant reruns
# the same protocol under the race detector (fewer cycles — TSan is slow).
chaos_soak() {
  local preset="$1" cycles="$2"
  step "chaos soak [${preset}] (${cycles} kill/resume cycles)"
  local bin="build/tools/soak_runner"
  case "${preset}" in
    asan-ubsan) bin="build-asan/tools/soak_runner" ;;
    tsan) bin="build-tsan/tools/soak_runner" ;;
  esac
  local soak_tmp
  soak_tmp="$(mktemp -d)"
  "${bin}" --cycles="${cycles}" --seed=1337 --dir="${soak_tmp}"
  rm -rf "${soak_tmp}"
  echo "chaos soak [${preset}] OK"
}

chaos_soak release 20

if [[ "${quick}" == "1" ]]; then
  step "OK (quick: sanitizer presets skipped)"
  exit 0
fi

# Fault-injection soak (ISSUE 5): a short seeded campaign under the
# aggressive fault schedule, with the resilient client, checkpointing and
# telemetry all on, run against a sanitizer build. Exercises the
# fault/retry/breaker/checkpoint paths end to end where ASan/UBSan/TSan
# can see them; telemetry lands in build/reports/ with the other smoke
# artifacts.
fault_soak() {
  local preset="$1"
  step "fault-injection soak [${preset}]"
  local soak_tmp
  soak_tmp="$(mktemp -d)"
  ./build/tools/copyattack generate --config tiny \
    --out "${soak_tmp}/world" >/dev/null
  local bin="build/tools/copyattack"
  case "${preset}" in
    asan-ubsan) bin="build-asan/tools/copyattack" ;;
    tsan) bin="build-tsan/tools/copyattack" ;;
  esac
  "${bin}" attack --data "${soak_tmp}/world" \
    --method=CopyAttack --targets=2 --episodes=4 --budget=6 \
    --faults=aggressive --fault_seed=1337 \
    --checkpoint_dir="${soak_tmp}/ckpt" \
    --telemetry_out="${soak_tmp}/telemetry" >/dev/null
  # Resume from the checkpoint it just wrote — the load/validate path must
  # also be sanitizer-clean.
  "${bin}" attack --data "${soak_tmp}/world" \
    --method=CopyAttack --targets=2 --episodes=4 --budget=6 \
    --faults=aggressive --fault_seed=1337 \
    --checkpoint_dir="${soak_tmp}/ckpt" --resume=1 >/dev/null
  mkdir -p "build/reports/fault_soak_${preset}"
  cp "${soak_tmp}/telemetry/"{metrics.csv,summary.json,trace.json} \
    "build/reports/fault_soak_${preset}/"
  rm -rf "${soak_tmp}"
  echo "fault soak [${preset}] OK (telemetry at build/reports/fault_soak_${preset}/)"
}

# 3. ASan+UBSan: memory errors and UB across the unit + lint suites.
run_preset asan-ubsan -LE stress
fault_soak asan-ubsan

# Sharded-runner soak (ISSUE 6): drive the attack-server through the TSan
# binary with more shards than worker threads, checkpointing on, then run
# the same queue again with --resume so the per-shard checkpoint
# load/merge path is also exercised under the race detector.
parallel_soak() {
  step "sharded-runner soak [tsan]"
  local soak_tmp
  soak_tmp="$(mktemp -d)"
  local bin="build-tsan/tools/copyattack"
  "${bin}" generate --config tiny --out "${soak_tmp}/world" >/dev/null
  cat > "${soak_tmp}/jobs.csv" <<'CSV'
id,method,targets,budget,episodes,seed
soak-copy,CopyAttack,3,6,3,1337
soak-baseline,TargetAttack40,3,6,1,1337
CSV
  "${bin}" attack-server --data "${soak_tmp}/world" \
    --queue "${soak_tmp}/jobs.csv" --jobs=4 \
    --checkpoint_root="${soak_tmp}/ckpt" >/dev/null
  "${bin}" attack-server --data "${soak_tmp}/world" \
    --queue "${soak_tmp}/jobs.csv" --jobs=4 \
    --checkpoint_root="${soak_tmp}/ckpt" --resume=1 >/dev/null
  rm -rf "${soak_tmp}"
  echo "sharded-runner soak [tsan] OK"
}

# 4. TSan: unit suite for coverage, then the concurrency stress suite —
# the only preset that runs the `stress` label.
run_preset tsan -LE stress
fault_soak tsan
parallel_soak
chaos_soak tsan 20
step "test [tsan] stress label"
ctest --preset tsan-stress -j "${jobs}"

step "OK (lint + release + asan-ubsan + tsan all green)"
