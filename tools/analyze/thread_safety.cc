#include <map>
#include <set>
#include <string>
#include <utility>

#include "analyze/passes.h"

namespace copyattack::analyze {

namespace {

bool IsLockHolderType(const std::string& text) {
  return text == "lock_guard" || text == "unique_lock" ||
         text == "scoped_lock" || text == "shared_lock";
}

/// Mutex names a function's body demonstrably locks: identifiers passed to
/// RAII lock holders (`std::lock_guard<std::mutex> lock(mutex_)` yields
/// `mutex_`; `lock(buffer->mutex)` yields both `buffer` and `mutex`) plus
/// the receivers of explicit `.lock()` / `->lock()` calls. Evidence is
/// function-granular on purpose: a heuristic pass must not false-positive
/// on locks taken inside loops or branches.
std::set<std::string> LockedMutexes(const std::vector<Token>& tokens,
                                    std::size_t body_begin,
                                    std::size_t body_end) {
  std::set<std::string> locked;
  for (std::size_t i = body_begin + 1; i < body_end; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (IsLockHolderType(t.text)) {
      std::size_t j = i + 1;
      while (j < body_end && tokens[j].text != "(" &&
             tokens[j].text != ";") {
        ++j;
      }
      if (j >= body_end || tokens[j].text != "(") continue;
      int depth = 0;
      for (; j < body_end; ++j) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")" && --depth == 0) break;
        if (tokens[j].kind == TokenKind::kIdentifier) {
          locked.insert(tokens[j].text);
        }
      }
      continue;
    }
    if (t.text == "lock" && i + 1 < body_end && tokens[i + 1].text == "(" &&
        i >= 1 &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
        i >= 2 && tokens[i - 2].kind == TokenKind::kIdentifier) {
      locked.insert(tokens[i - 2].text);
    }
  }
  return locked;
}

/// Locals initialized from `std::make_unique` in this body. A member
/// access through such a pointer is pre-publication initialization: no
/// other thread can reach the object until it is stored somewhere shared,
/// so guarded fields written through it need no lock evidence. Like the
/// lock evidence this is function-granular — publication almost always
/// ends the constructing function, so the window where the exemption is
/// too generous (mutate-after-publish in the same body) is negligible for
/// a heuristic pass.
std::set<std::string> FreshReceivers(const std::vector<Token>& tokens,
                                     std::size_t body_begin,
                                     std::size_t body_end) {
  std::set<std::string> fresh;
  for (std::size_t i = body_begin + 1; i < body_end; ++i) {
    if (tokens[i].text != "make_unique") continue;
    std::size_t j = i;  // walk back over an optional std:: qualifier
    if (j >= 2 && tokens[j - 1].text == "::" && tokens[j - 2].text == "std") {
      j -= 2;
    }
    if (j >= 2 && tokens[j - 1].text == "=" &&
        tokens[j - 2].kind == TokenKind::kIdentifier) {
      fresh.insert(tokens[j - 2].text);
    }
  }
  return fresh;
}

}  // namespace

void RunThreadSafetyPass(const SourceTree& tree,
                         const std::vector<FileStructure>& structures,
                         std::vector<Violation>* violations) {
  // Guarded fields and CA_REQUIRES declarations are cross-file facts: a
  // field is annotated in the header, its accessors live in the .cc.
  std::map<std::string, std::vector<AnnotatedField>> guarded_by_name;
  std::map<std::pair<std::string, std::string>, std::set<std::string>>
      required;
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const FileStructure& structure = structures[i];
    for (const AnnotatedField& field : structure.fields) {
      if (field.atomic_only) {
        if (!field.type_has_atomic) {
          AddViolation(tree.files[i], field.line, "ts-atomic-type",
                       "field '" + field.field_name +
                           "' is CA_ATOMIC_ONLY but its declared type is "
                           "not std::atomic",
                       violations);
        }
        continue;  // atomic fields need no lock evidence
      }
      guarded_by_name[field.field_name].push_back(field);
    }
    for (const MethodRequires& decl : structure.declared_requires) {
      required[{decl.class_name, decl.method_name}].insert(
          decl.mutexes.begin(), decl.mutexes.end());
    }
    for (const FunctionDef& def : structure.functions) {
      required[{def.class_name, def.name}].insert(
          def.requires_mutexes.begin(), def.requires_mutexes.end());
    }
  }
  if (guarded_by_name.empty()) return;

  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const ScannedFile& file = tree.files[i];
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (const FunctionDef& def : structures[i].functions) {
      if (def.is_ctor || def.is_dtor) continue;  // pre/post-publication
      if (def.body_end <= def.body_begin) continue;

      std::set<std::string> evidence =
          LockedMutexes(tokens, def.body_begin, def.body_end);
      const auto req = required.find({def.class_name, def.name});
      if (req != required.end()) {
        evidence.insert(req->second.begin(), req->second.end());
      }
      const std::set<std::string> fresh =
          FreshReceivers(tokens, def.body_begin, def.body_end);

      std::set<std::string> flagged;  // one report per field per function
      for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
        const Token& t = tokens[k];
        if (t.kind != TokenKind::kIdentifier) continue;
        const auto found = guarded_by_name.find(t.text);
        if (found == guarded_by_name.end()) continue;

        const bool member_access =
            k >= 1 &&
            (tokens[k - 1].text == "." || tokens[k - 1].text == "->");
        if (member_access && k >= 2 &&
            tokens[k - 2].kind == TokenKind::kIdentifier &&
            fresh.count(tokens[k - 2].text) != 0) {
          continue;  // freshly make_unique'd receiver: pre-publication
        }
        bool applies = member_access;
        bool satisfied = false;
        for (const AnnotatedField& field : found->second) {
          // A bare identifier only refers to the field inside methods of
          // its own class (locals of other classes' methods may share the
          // name); `.`/`->` access can hit any object, so any candidate's
          // mutex being held counts as evidence.
          if (!member_access && field.class_name != def.class_name) continue;
          applies = true;
          if (evidence.count(field.mutex_name) != 0) satisfied = true;
        }
        if (!applies || satisfied) continue;
        if (!flagged.insert(t.text).second) continue;
        const AnnotatedField& field = found->second.front();
        AddViolation(
            file, t.line, "ts-unlocked-field",
            "field '" + t.text + "' (guarded by '" + field.mutex_name +
                "') accessed in " +
                (def.class_name.empty() ? def.name
                                        : def.class_name + "::" + def.name) +
                " without locking '" + field.mutex_name + "'",
            violations);
      }
    }
  }
}

}  // namespace copyattack::analyze
