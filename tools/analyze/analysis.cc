#include "analyze/analysis.h"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace copyattack::analyze {

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsExcluded(const std::string& rel_path,
                const std::vector<std::string>& excludes) {
  for (const std::string& pattern : excludes) {
    if (rel_path.find(pattern) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const ScannedFile* SourceTree::FindByRelPath(std::string_view rel_path) const {
  for (const ScannedFile& file : files) {
    if (file.rel_path == rel_path) return &file;
  }
  return nullptr;
}

bool ScanTree(const ScanOptions& options, SourceTree* tree,
              std::vector<Violation>* violations, std::string* error) {
  tree->root = options.root;
  tree->files.clear();

  const fs::path root(options.root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    *error = "analysis root is not a directory: " + options.root;
    return false;
  }

  std::vector<fs::path> sources;
  for (const std::string& target : options.targets) {
    const fs::path base = root / target;
    if (fs::is_regular_file(base, ec)) {
      if (IsSourceFile(base)) sources.push_back(base);
      continue;
    }
    if (!fs::is_directory(base, ec)) continue;  // optional target dirs
    for (fs::recursive_directory_iterator it(base, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
        sources.push_back(it->path());
      }
    }
    if (ec) {
      *error = "error walking " + base.string() + ": " + ec.message();
      return false;
    }
  }

  for (const fs::path& path : sources) {
    std::string rel = fs::relative(path, root, ec).generic_string();
    if (ec || rel.empty()) rel = path.generic_string();
    if (IsExcluded(rel, options.excludes)) continue;

    ScannedFile file;
    file.rel_path = std::move(rel);
    std::string io_error;
    if (!LexFileFromDisk(path.string(), &file.lexed, &io_error)) {
      violations->push_back(
          {file.rel_path, 0, "io", "cannot read file: " + io_error});
      continue;
    }
    tree->files.push_back(std::move(file));
  }

  std::sort(tree->files.begin(), tree->files.end(),
            [](const ScannedFile& a, const ScannedFile& b) {
              return a.rel_path < b.rel_path;
            });

  // Lexer complaints become violations: a mislexed file must not be able to
  // pass the tree check silently.
  for (const ScannedFile& file : tree->files) {
    for (const std::string& message : file.lexed.errors) {
      violations->push_back({file.rel_path, 0, "io", message});
    }
  }
  return true;
}

std::string ModuleOf(std::string_view rel_path) {
  std::string_view rest = rel_path;
  if (rest.rfind("src/", 0) == 0) rest.remove_prefix(4);
  const std::size_t slash = rest.find('/');
  // A file directly under src/ or the root has no module directory.
  if (slash == std::string_view::npos) return std::string();
  return std::string(rest.substr(0, slash));
}

std::string SrcRelative(std::string_view rel_path) {
  if (rel_path.rfind("src/", 0) == 0) rel_path.remove_prefix(4);
  return std::string(rel_path);
}

void AddViolation(const ScannedFile& file, std::size_t line,
                  std::string_view rule, std::string message,
                  std::vector<Violation>* violations) {
  if (file.lexed.Allows(line, "analyze:allow", rule)) return;
  violations->push_back(
      {file.rel_path, line, std::string(rule), std::move(message)});
}

const std::vector<RuleInfo>& RuleCatalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"io", "all", "file unreadable or not lexable as C++"},
      {"layer-undeclared-edge", "include",
       "include crosses modules without a layers.toml declaration"},
      {"layer-unknown-module", "include",
       "module directory missing from layers.toml"},
      {"layer-cycle", "include", "project include graph contains a cycle"},
      {"layer-impure-header", "include",
       "pure_headers entry includes another file"},
      {"iwyu-unused-include", "include",
       "header included but no name it provides is referenced"},
      {"ts-unlocked-field", "thread",
       "CA_GUARDED_BY field accessed without locking its mutex (receivers "
       "freshly make_unique'd in the same body are exempt)"},
      {"ts-atomic-type", "thread",
       "CA_ATOMIC_ONLY field whose declared type is not std::atomic"},
      {"det-raw-entropy", "determinism",
       "std::random_device / wall-clock seeding outside util/rng"},
      {"det-std-engine", "determinism",
       "std <random> engine or distribution outside util/rng (results vary "
       "across standard libraries)"},
      {"det-unseeded-rng", "determinism",
       "util::Rng constructed without an explicit seed"},
      {"det-rng-by-value", "determinism",
       "util::Rng taken by value (copies the stream; pass Rng&)"},
      {"layer-stale-pure-entry", "include",
       "pure_headers entry names a file that no longer exists in the tree"},
      {"ckpt-missing-member", "checkpoint",
       "CA_CHECKPOINTED member absent from the save or load serializer "
       "body and not waived with CA_NOT_CHECKPOINTED(reason)"},
      {"ckpt-order-mismatch", "checkpoint",
       "save and load serializers reference a CA_CHECKPOINTED type's "
       "members in different orders"},
      {"ckpt-no-serializer", "checkpoint",
       "CA_CHECKPOINTED names a save/load function with no definition in "
       "the tree"},
      {"ckpt-crash-phase", "checkpoint",
       "function marks checkpoint.* CA_CRASH_POINT sites but does not "
       "enumerate all three rotation phases (pre_temp_write, pre_rotate, "
       "pre_rename)"},
      {"lock-order-cycle", "lockorder",
       "declared + observed mutex acquisition graph contains a cycle"},
      {"lock-order-contradiction", "lockorder",
       "observed RAII nesting contradicts a declared CA_ACQUIRED_BEFORE "
       "edge"},
      {"lock-in-parallel-for", "lockorder",
       "blocking acquisition of a CA_ACQUIRED_BEFORE mutex inside a "
       "ParallelFor body"},
      {"oracle-direct-call", "oracle",
       "src/ code outside the allowlisted modules calls a metered oracle "
       "entry point or seam method directly, bypassing the "
       "ResilientBlackBox/BatchedBlackBox decorator stack"},
      {"oracle-unmetered-path", "oracle",
       "src/ function reaches a direct oracle call transitively without "
       "passing through an allowlisted gateway"},
      {"hot-path-alloc", "hotpath",
       "explicit allocation (new / make_unique / make_shared / malloc) in "
       "a function reachable from a CA_HOT_PATH root"},
      {"hot-path-lock", "hotpath",
       "blocking lock acquisition in a function reachable from a "
       "CA_HOT_PATH root"},
      {"hot-path-throw", "hotpath",
       "throw expression in a function reachable from a CA_HOT_PATH root"},
      {"hot-path-io", "hotpath",
       "stream or file IO in a function reachable from a CA_HOT_PATH root"},
      {"rng-adhoc-seed", "rng",
       "util::Rng in stream-scoped campaign code constructed from an "
       "arithmetically mixed seed instead of util::DeriveStreamSeed or "
       "restored state"},
      {"rng-fork-in-stream", "rng",
       "Rng::Fork in stream-scoped campaign code (draw-order dependent; "
       "breaks shard/resume invariance — derive a stream seed instead)"},
  };
  return kRules;
}

std::size_t ReportText(const std::vector<Violation>& violations,
                       std::size_t files_scanned, std::ostream& out) {
  for (const Violation& v : violations) {
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
        << "\n";
  }
  if (violations.empty()) {
    out << "copyattack-analyze: " << files_scanned << " files clean\n";
  } else {
    out << "copyattack-analyze: " << violations.size() << " violation(s) in "
        << files_scanned << " files\n";
  }
  return violations.size();
}

std::size_t ReportJson(const std::vector<Violation>& violations,
                       const std::vector<PassTiming>& timings,
                       std::size_t files_scanned,
                       const CallGraphStats* callgraph, std::ostream& out) {
  out << "{\n  \"tool\": \"copyattack-analyze\",\n  \"passes\": [";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    out << (i ? ", " : "") << "\"" << JsonEscape(timings[i].pass) << "\"";
  }
  out << "],\n  \"timings_ms\": {";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    out << (i ? ", " : "") << "\"" << JsonEscape(timings[i].pass)
        << "\": " << timings[i].millis;
  }
  out << "},\n  \"files_scanned\": " << files_scanned;
  if (callgraph != nullptr) {
    out << ",\n  \"callgraph\": {\"functions\": " << callgraph->functions
        << ", \"call_sites\": " << callgraph->call_sites
        << ", \"resolved_edges\": " << callgraph->resolved_edges
        << ", \"external_calls\": " << callgraph->external_calls
        << ", \"unresolved_calls\": " << callgraph->unresolved_calls
        << ", \"unresolved_rate\": " << callgraph->unresolved_rate << "}";
  }
  out << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << (i ? "," : "") << "\n    {\"file\": \"" << JsonEscape(v.file)
        << "\", \"line\": " << v.line << ", \"rule\": \""
        << JsonEscape(v.rule) << "\", \"message\": \""
        << JsonEscape(v.message) << "\"}";
  }
  if (!violations.empty()) out << "\n  ";
  out << "]\n}\n";
  return violations.size();
}

}  // namespace copyattack::analyze
