#ifndef COPYATTACK_TOOLS_ANALYZE_ANALYSIS_H_
#define COPYATTACK_TOOLS_ANALYZE_ANALYSIS_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/tokenizer.h"

/// Shared plumbing of the copyattack-analyze passes: the scanned file set,
/// path→module mapping, violation records, `analyze:allow(<rule>)`
/// suppression, and the text/JSON reporters.

namespace copyattack::analyze {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// One scanned source file: the lexed view plus its path relative to the
/// analysis root ('/'-separated regardless of platform).
struct ScannedFile {
  std::string rel_path;
  LexedFile lexed;
};

/// The whole scanned tree, sorted by rel_path for deterministic reports.
struct SourceTree {
  std::string root;
  std::vector<ScannedFile> files;

  const ScannedFile* FindByRelPath(std::string_view rel_path) const;
};

struct ScanOptions {
  std::string root = ".";
  /// Directories (or single files), relative to root.
  std::vector<std::string> targets;
  /// Path substrings to skip (seeded-violation corpora, build trees).
  std::vector<std::string> excludes;
};

/// Recursively loads every .h/.hpp/.cc/.cpp under the targets. Lexer-level
/// problems (unreadable file, unterminated constructs) are reported as
/// `io`-rule violations so a mislexed tree can never pass silently.
bool ScanTree(const ScanOptions& options, SourceTree* tree,
              std::vector<Violation>* violations, std::string* error);

/// Top-level module of a root-relative path: "src/util/rng.h" -> "util",
/// "tools/cli.cc" -> "tools", "tests/x.cc" -> "tests". Empty for files
/// directly in the root.
std::string ModuleOf(std::string_view rel_path);

/// The path with a leading "src/" stripped — the spelling used in project
/// `#include` directives and in layers.toml pure_headers entries.
std::string SrcRelative(std::string_view rel_path);

/// Appends a violation unless the offending line carries an
/// `analyze:allow(<rule>)` comment.
void AddViolation(const ScannedFile& file, std::size_t line,
                  std::string_view rule, std::string message,
                  std::vector<Violation>* violations);

/// Rule catalogue (for --list-rules and the docs).
struct RuleInfo {
  std::string_view id;
  std::string_view pass;
  std::string_view summary;
};
const std::vector<RuleInfo>& RuleCatalogue();

/// Wall-clock cost of one pass, reported in the JSON output so a pass
/// that regresses the sub-second lint budget is visible in CI artifacts.
struct PassTiming {
  std::string pass;
  double millis = 0.0;
};

/// Resolution accounting of the call-graph layer (tools/analyze/callgraph).
/// Emitted as the `callgraph` object of the JSON report whenever a
/// graph-based pass ran, so the soundness of those passes is a number in
/// CI artifacts, not folklore. `unresolved_rate` is
/// unresolved / max(1, call_sites - external): external calls (std::,
/// libc — nothing in-tree to resolve against) are excluded from the
/// denominator by design.
struct CallGraphStats {
  std::size_t functions = 0;
  std::size_t call_sites = 0;
  std::size_t resolved_edges = 0;
  std::size_t external_calls = 0;
  std::size_t unresolved_calls = 0;
  double unresolved_rate = 0.0;
};

/// Minimal JSON string escaping shared by the JSON and SARIF reporters.
std::string JsonEscape(std::string_view text);

/// Reporters. Both return the number of violations. `callgraph` may be
/// null (no graph-based pass ran); when set, its stats are emitted as a
/// top-level JSON object.
std::size_t ReportText(const std::vector<Violation>& violations,
                       std::size_t files_scanned, std::ostream& out);
std::size_t ReportJson(const std::vector<Violation>& violations,
                       const std::vector<PassTiming>& timings,
                       std::size_t files_scanned,
                       const CallGraphStats* callgraph, std::ostream& out);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_ANALYSIS_H_
