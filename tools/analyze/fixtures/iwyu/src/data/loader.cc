#include "data/loader.h"

// Seeded violation: nothing below references Tensor, TensorBytes, or any
// other name math/tensor.h provides -> iwyu-unused-include.
#include "math/tensor.h"

namespace fixture::data {

int LoadRows() { return 42; }

}  // namespace fixture::data
