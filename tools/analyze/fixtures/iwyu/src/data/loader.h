namespace fixture::data {

int LoadRows();

}  // namespace fixture::data
