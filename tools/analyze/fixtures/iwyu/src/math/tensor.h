#include <cstddef>

namespace fixture::math {

struct Tensor {
  double* payload;
  std::size_t rank;
};

inline std::size_t TensorBytes(const Tensor& t) {
  return t.rank * sizeof(double);
}

}  // namespace fixture::math
