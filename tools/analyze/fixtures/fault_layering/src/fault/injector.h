// Seeded violation: the fault decorator reaching up into core/, the
// layer that composes it. fault declares only the fault -> rec edge, so
// this include is a layer-undeclared-edge.
#include "core/runner.h"
#include "rec/oracle.h"

namespace fixture::fault {

struct Injector {
  rec::Oracle* inner;
  core::Runner* owner;  // the "reason" for the upward include
};

}  // namespace fixture::fault
