// Leaf of the fixture: the black-box interface the decorators wrap.

namespace fixture::rec {

struct Oracle {
  int queries;
};

}  // namespace fixture::rec
