// core -> rec is a declared edge; this header is legal on its own and
// exists so the fault/ violation has a real target to include.
#include "rec/oracle.h"

namespace fixture::core {

struct Runner {
  rec::Oracle* oracle;
};

}  // namespace fixture::core
