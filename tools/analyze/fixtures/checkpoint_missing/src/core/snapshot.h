#include <cstdint>
#include <iosfwd>

// Self-contained stand-ins for util/annotations.h: the pass is lexical, it
// keys on the macro spellings, not their expansion.
#define CA_CHECKPOINTED(save, load)
#define CA_NOT_CHECKPOINTED(reason)

namespace fixture::core {

/// Campaign progress snapshot, persisted between runs.
struct Snapshot CA_CHECKPOINTED(SaveState, LoadState) {
  std::uint64_t episodes = 0;
  double reward = 0.0;
  // Seeded violation: this field was added without touching SaveState /
  // LoadState and carries no CA_NOT_CHECKPOINTED(reason) exemption ->
  // ckpt-missing-member.
  std::uint64_t queries = 0;
  // Clean: exempted scratch state.
  double scratch CA_NOT_CHECKPOINTED("per-step scratch") = 0.0;
};

void SaveState(const Snapshot& snapshot, std::ostream& out);
bool LoadState(std::istream& in, Snapshot* snapshot);

}  // namespace fixture::core
