#include "core/snapshot.h"

#include <istream>
#include <ostream>

namespace fixture::core {

void SaveState(const Snapshot& snapshot, std::ostream& out) {
  out << snapshot.episodes << ' ' << snapshot.reward << '\n';
}

bool LoadState(std::istream& in, Snapshot* snapshot) {
  return static_cast<bool>(in >> snapshot->episodes >> snapshot->reward);
}

}  // namespace fixture::core
