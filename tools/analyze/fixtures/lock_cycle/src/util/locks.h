#include <mutex>

// Self-contained stand-ins for util/annotations.h: the pass is lexical, it
// keys on the macro spellings, not their expansion.
#define CA_ACQUIRED_BEFORE(...)
#define CA_GUARDED_BY(m)

namespace fixture::util {

class Registry {
 public:
  void Rebuild();

 private:
  // Seeded violation (half 1): declares it is taken before Pool::mu_p ...
  mutable std::mutex mu_r CA_ACQUIRED_BEFORE(Pool::mu_p);
  int entries CA_GUARDED_BY(mu_r) = 0;
};

class Pool {
 public:
  void Drain();

 private:
  // Seeded violation (half 2): ... while Pool declares the opposite
  // order. The two declared edges close a cycle -> lock-order-cycle.
  mutable std::mutex mu_p CA_ACQUIRED_BEFORE(Registry::mu_r);
  int pending CA_GUARDED_BY(mu_p) = 0;
};

}  // namespace fixture::util
