#include "core/cursor.h"

#include <istream>
#include <ostream>

namespace fixture::core {

void SaveCursor(const Cursor& cursor, std::ostream& out) {
  out << cursor.position << ' ' << cursor.generation << '\n';
}

// Seeded violation: reads the fields in the opposite order from
// SaveCursor -> ckpt-order-mismatch (every member IS referenced in both
// bodies, so ckpt-missing-member stays quiet).
bool LoadCursor(std::istream& in, Cursor* cursor) {
  return static_cast<bool>(in >> cursor->generation >> cursor->position);
}

}  // namespace fixture::core
