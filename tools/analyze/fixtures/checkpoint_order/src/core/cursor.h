#include <cstdint>
#include <iosfwd>

// Self-contained stand-ins for util/annotations.h: the pass is lexical, it
// keys on the macro spellings, not their expansion.
#define CA_CHECKPOINTED(save, load)
#define CA_NOT_CHECKPOINTED(reason)

namespace fixture::core {

/// Resume cursor for an episode stream.
struct Cursor CA_CHECKPOINTED(SaveCursor, LoadCursor) {
  std::uint64_t position = 0;
  std::uint64_t generation = 0;
};

void SaveCursor(const Cursor& cursor, std::ostream& out);
bool LoadCursor(std::istream& in, Cursor* cursor);

}  // namespace fixture::core
