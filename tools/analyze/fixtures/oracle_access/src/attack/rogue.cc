#include "rec/oracle.h"

namespace fixture::attack {

// VIOLATION oracle-direct-call: a strategy probing the concrete
// recommender without spending query budget.
int ProbeWithoutMeter(rec::BlackBoxRecommender* oracle, int user) {
  return oracle->QueryTopK(user, 20);
}

// VIOLATION oracle-direct-call: unmetered injection.
int RogueInject(rec::BlackBoxRecommender* oracle, int profile) {
  return oracle->InjectUser(profile);
}

// VIOLATION oracle-unmetered-path: reaches the oracle only through the
// rogue probe above.
int RunRogueCampaign(rec::BlackBoxRecommender* oracle) {
  int total = 0;
  for (int user = 0; user < 8; ++user) {
    total += ProbeWithoutMeter(oracle, user);
  }
  return total;
}

}  // namespace fixture::attack
