#include "rec/oracle.h"

namespace fixture::core {

// Sanctioned gateway (allow_files): calling the oracle here is the
// correct shape, and callers of the gateway must NOT be flagged.
int MeteredQuery(rec::BlackBoxRecommender* oracle, int user, int k) {
  return oracle->QueryTopK(user, k);
}

}  // namespace fixture::core
