#ifndef FIXTURE_REC_ORACLE_H_
#define FIXTURE_REC_ORACLE_H_

namespace fixture::rec {

// Minimal stand-in for the metered oracle stack.
class BlackBoxRecommender {
 public:
  int QueryTopK(int user, int k) { return user + k; }
  int InjectUser(int profile) { return profile; }
  int Query(int user, int k) { return QueryTopK(user, k); }
};

}  // namespace fixture::rec

#endif  // FIXTURE_REC_ORACLE_H_
