// Leaf of the fixture: the promotion-job queue the violation reaches for.

namespace fixture::serve {

struct JobQueue {
  int pending;
};

}  // namespace fixture::serve
