// serve -> core is a declared edge; this header is the legal direction
// (the server composes the runner, not the other way around).
#include "core/runner.h"
#include "serve/job_queue.h"

namespace fixture::serve {

struct AttackServer {
  JobQueue* queue;
  core::Runner* runner;
};

}  // namespace fixture::serve
