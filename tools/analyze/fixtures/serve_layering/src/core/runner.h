// Seeded violation: the campaign runner reaching up into serve/, the
// layer that schedules it. core declares no edges at all, so this
// include is a layer-undeclared-edge.
#include "serve/job_queue.h"

namespace fixture::core {

struct Runner {
  fixture::serve::JobQueue* queue;  // the "reason" for the upward include
};

}  // namespace fixture::core
