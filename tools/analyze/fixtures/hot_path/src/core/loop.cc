#include <cstdio>
#include <mutex>

#define CA_HOT_PATH
#define CA_COLD_OK(reason)

namespace fixture::core {

std::mutex score_mutex;

// VIOLATION hot-path-alloc: reached from the ScoreUser root below.
float* GrowBuffer(int n) {
  return new float[n];
}

// VIOLATION hot-path-io: reached from the ScoreUser root below.
void LogScore(float score) {
  std::printf("score=%f\n", score);
}

// VIOLATION hot-path-throw: reached from the ScoreUser root below.
void Validate(int user) {
  if (user < 0) throw user;
}

// CA_COLD_OK shields both its own body and its callees from the scan.
float* ColdRebuild(int n) CA_COLD_OK("episode setup, off the step loop") {
  return GrowBuffer(n);
}

// VIOLATION hot-path-lock (the lock_guard below), plus the three
// reachable violations above.
float ScoreUser(int user, int n) CA_HOT_PATH {
  std::lock_guard<std::mutex> guard(score_mutex);
  Validate(user);
  float* buffer = GrowBuffer(n);
  float score = buffer[0] + static_cast<float>(user);
  LogScore(score);
  return score;
}

}  // namespace fixture::core
