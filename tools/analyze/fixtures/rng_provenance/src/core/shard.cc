#include "util/rng.h"

namespace fixture::core {

// VIOLATION rng-adhoc-seed: XOR mixing collides across shards.
std::uint64_t PlayShard(std::uint64_t shard_seed) {
  util::Rng episode_rng(shard_seed ^ 0xBEEFCAFEULL);
  return episode_rng.Next();
}

// VIOLATION rng-adhoc-seed: multiplicative mixing, same problem.
std::uint64_t PlayItem(std::uint64_t base, std::uint64_t index) {
  util::Rng item_rng(base + 1000003ULL * index);
  return item_rng.Next();
}

// VIOLATION rng-fork-in-stream: forked streams depend on draw order.
std::uint64_t SplitStream(util::Rng& rng) {
  util::Rng child = rng.Fork();
  return child.Next();
}

// Clean: DeriveStreamSeed is the sanctioned derivation.
std::uint64_t DerivedOk(std::uint64_t base) {
  util::Rng rng(util::DeriveStreamSeed(base, 2));
  return rng.Next();
}

// Clean: a bare base seed names a stream without mixing one.
std::uint64_t PlainOk(std::uint64_t seed) {
  util::Rng rng(seed);
  return rng.Next();
}

}  // namespace fixture::core
