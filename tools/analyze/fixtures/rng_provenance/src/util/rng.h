#ifndef FIXTURE_UTIL_RNG_H_
#define FIXTURE_UTIL_RNG_H_

#include <cstdint>

namespace fixture::util {

std::uint64_t DeriveStreamSeed(std::uint64_t base, std::uint64_t stream);

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  Rng Fork() { return Rng(state_ * 6364136223846793005ULL + 1ULL); }
  std::uint64_t Next() { return state_ += 0x9E3779B97F4A7C15ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace fixture::util

#endif  // FIXTURE_UTIL_RNG_H_
