// Seeded violation: a leaf module reaching up into rec/. This is the
// canonical breach the include-graph pass exists to catch — the edge is
// undeclared (layer-undeclared-edge) and, because model.h includes this
// header back, it also closes an include cycle (layer-cycle).
#include "rec/model.h"

namespace fixture::math {

struct Matrix {
  double* data;
  rec::Model* observer;  // the "reason" for the upward include
};

}  // namespace fixture::math
