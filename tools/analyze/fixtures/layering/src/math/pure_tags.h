// Seeded violation: listed under [pure] headers in layers.toml, but pure
// headers must be include-free — any include here could smuggle a layering
// edge past the exemption -> layer-impure-header.
#include <cstddef>

namespace fixture::math {

struct DenseTag {};

}  // namespace fixture::math
