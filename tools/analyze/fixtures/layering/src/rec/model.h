// rec -> math is a declared edge, so this include is legal on its own;
// together with matrix.h's upward include it forms the seeded cycle.
#include "math/matrix.h"

namespace fixture::rec {

struct Model {
  math::Matrix* weights;
};

}  // namespace fixture::rec
