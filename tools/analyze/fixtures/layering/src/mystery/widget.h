// Seeded violation: the mystery/ module directory is absent from
// layers.toml, so the contract is not total -> layer-unknown-module.

namespace fixture::mystery {

struct Widget {
  int knobs;
};

}  // namespace fixture::mystery
