#include <ctime>
#include <random>

namespace util {
class Rng {
 public:
  explicit Rng(unsigned long long seed = 0);
  double UniformDouble(double lo, double hi);
};
}  // namespace util

namespace fixture::core {

// Seeded violation: Rng taken by value copies the stream, so the caller's
// generator never advances -> det-rng-by-value.
double Play(util::Rng rng) { return rng.UniformDouble(0.0, 1.0); }

double RunEpisode() {
  std::random_device rd;          // seeded: det-raw-entropy
  std::mt19937 gen(rd());         // seeded: det-std-engine
  const unsigned wall =
      static_cast<unsigned>(time(nullptr));  // seeded: det-raw-entropy
  util::Rng rng;                  // seeded: det-unseeded-rng
  return Play(rng) + static_cast<double>(gen() % (wall | 1u));
}

}  // namespace fixture::core
