#include <cstddef>
#include <mutex>

// Self-contained stand-ins for util/annotations.h: the pass is lexical, it
// keys on the macro spellings, not their expansion.
#define CA_ACQUIRED_BEFORE(...)
#define CA_GUARDED_BY(m)

namespace fixture::util {

void ParallelFor(std::size_t n, std::size_t num_threads,
                 void (*fn)(std::size_t));

class Counter {
 public:
  void Tally(std::size_t n);
  std::size_t total() const;

 private:
  /// Tracked leaf lock (zero-arg annotation enters the lock-order graph).
  mutable std::mutex mu_ CA_ACQUIRED_BEFORE();
  std::size_t total_ CA_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture::util
