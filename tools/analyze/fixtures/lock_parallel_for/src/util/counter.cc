#include "util/counter.h"

namespace fixture::util {

void Counter::Tally(std::size_t n) {
  // Seeded violation: every worker blocks on the annotated mutex for
  // every index, serializing the parallel section -> lock-in-parallel-for.
  ParallelFor(n, 4, [this](std::size_t) {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
  });
}

std::size_t Counter::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace fixture::util
