#include <cstdio>
#include <string>

// Self-contained stub of the real fault/crash_point.h macro: the fixture
// tree must lex without the product headers.
#define CA_CRASH_POINT(site) ::fixture::core::NoteCrashSite(site)

namespace fixture::core {

void NoteCrashSite(const char* site) { (void)site; }

// SEEDED VIOLATION: instruments the checkpoint write path with only the
// first rotation phase. The rename and rotate windows are unkillable, so
// the analyzer must flag ckpt-crash-phase.
bool SaveSnapshotFile(const std::string& path, int episodes) {
  CA_CRASH_POINT("checkpoint.pre_temp_write");
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "%d\n", episodes);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

// A non-checkpoint crash site alone must NOT trigger the rule: only
// bodies marking checkpoint.* sites owe the full phase enumeration.
void RunShard(int shard) {
  CA_CRASH_POINT("runner.shard_begin");
  (void)shard;
}

}  // namespace fixture::core
