// Leaf of the fixture: the surrogate model the violation reaches for.

namespace fixture::attack {

struct Surrogate {
  int embedding_dim;
};

}  // namespace fixture::attack
