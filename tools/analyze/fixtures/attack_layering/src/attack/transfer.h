// attack -> core is a declared edge; this header is the legal direction
// (a zoo strategy implements the core interface, not the other way
// around).
#include "attack/surrogate.h"
#include "core/strategy.h"

namespace fixture::attack {

struct Transfer {
  Surrogate* surrogate;
  core::Strategy* interface_slot;
};

}  // namespace fixture::attack
