// Seeded violation: the strategy interface reaching up into attack/, the
// zoo of its own implementations. core declares no edges at all, so this
// include is a layer-undeclared-edge.
#include "attack/surrogate.h"

namespace fixture::core {

struct Strategy {
  fixture::attack::Surrogate* impl;  // the "reason" for the upward include
};

}  // namespace fixture::core
