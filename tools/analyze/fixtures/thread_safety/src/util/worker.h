#include <cstddef>
#include <mutex>

// Self-contained stand-ins for util/annotations.h: the pass is lexical, it
// keys on the macro spellings, not their expansion.
#define CA_GUARDED_BY(m)
#define CA_REQUIRES(m)
#define CA_ATOMIC_ONLY

namespace fixture::util {

class Worker {
 public:
  void Increment();          // seeded: writes pending_ with no lock
  void Reset();              // clean: locks mutex_
  std::size_t Flush() CA_REQUIRES(mutex_);  // clean: caller holds the lock

 private:
  std::mutex mutex_;
  int pending_ CA_GUARDED_BY(mutex_) = 0;
  // Seeded violation: CA_ATOMIC_ONLY promises lock-free safety, but the
  // declared type is a plain long -> ts-atomic-type.
  long hits_ CA_ATOMIC_ONLY = 0;
};

}  // namespace fixture::util
