#include "util/worker.h"

namespace fixture::util {

// Seeded violation: pending_ is CA_GUARDED_BY(mutex_) and nothing here
// locks it -> ts-unlocked-field.
void Worker::Increment() { pending_ += 1; }

// Clean: the RAII guard names the right mutex.
void Worker::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_ = 0;
}

// Clean: the header declares CA_REQUIRES(mutex_), so the caller holds it.
std::size_t Worker::Flush() {
  const std::size_t drained = static_cast<std::size_t>(pending_);
  pending_ = 0;
  return drained;
}

}  // namespace fixture::util
