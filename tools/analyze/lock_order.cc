#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/passes.h"

namespace copyattack::analyze {

namespace {

constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

bool IsLockHolder(const std::string& text) {
  return text == "lock_guard" || text == "unique_lock" ||
         text == "scoped_lock" || text == "shared_lock";
}

/// One CA_ACQUIRED_BEFORE-annotated mutex: a node of the acquisition
/// graph, addressed as `Class::member` (or bare member at namespace
/// scope).
struct MutexNodeInfo {
  std::string class_name;
  std::string mutex_name;
  std::size_t file = 0;
  std::size_t line = 0;

  std::string Label() const {
    return class_name.empty() ? mutex_name
                              : class_name + "::" + mutex_name;
  }
};

/// An acquisition-order edge: while holding `from`, `to` was (or may be)
/// acquired. Declared edges come from annotation arguments; observed edges
/// from RAII-holder nesting inside one function body.
struct OrderEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t file = 0;   ///< site of the inner acquisition / annotation
  std::size_t line = 0;
  bool declared = false;
  std::string context;    ///< enclosing function for observed edges
};

struct LockGraph {
  std::vector<MutexNodeInfo> nodes;
  /// (class, mutex) -> node; resolution helpers below.
  std::map<std::pair<std::string, std::string>, std::size_t> by_key;
  std::map<std::string, std::vector<std::size_t>> by_name;

  std::size_t Exact(const std::string& class_name,
                    const std::string& mutex_name) const {
    const auto it = by_key.find({class_name, mutex_name});
    return it == by_key.end() ? kNoNode : it->second;
  }

  /// A bare identifier names a mutex of the enclosing class first; failing
  /// that it resolves only if the name is unique tree-wide (four classes
  /// name their registry mutex `mutex_` — an ambiguous name yields no
  /// node, and no false edge).
  std::size_t ResolveBare(const std::string& own_class,
                          const std::string& mutex_name) const {
    const std::size_t own = Exact(own_class, mutex_name);
    if (own != kNoNode) return own;
    const auto it = by_name.find(mutex_name);
    if (it != by_name.end() && it->second.size() == 1) {
      return it->second.front();
    }
    return kNoNode;
  }

  /// `x->mutex` / `x.mutex`: the receiver's type is not knowable at token
  /// level, so member accesses resolve only via a tree-wide unique name.
  std::size_t ResolveMember(const std::string& mutex_name) const {
    const auto it = by_name.find(mutex_name);
    if (it != by_name.end() && it->second.size() == 1) {
      return it->second.front();
    }
    return kNoNode;
  }

  /// Annotation-argument spelling: `Class::member` is exact, a bare name
  /// resolves like a bare identifier in the annotating class.
  std::size_t ResolveSpec(const std::string& own_class,
                          const std::string& spec) const {
    const std::size_t sep = spec.rfind("::");
    if (sep == std::string::npos) return ResolveBare(own_class, spec);
    return Exact(spec.substr(0, sep), spec.substr(sep + 2));
  }
};

/// One RAII acquisition site inside a function body.
struct Acquisition {
  std::size_t node = 0;
  std::size_t token = 0;  ///< index of the holder-type identifier
  std::size_t line = 0;
  std::int64_t depth = 0;  ///< brace depth at the declaration
};

/// Extracts the acquired-mutex node for the holder whose type identifier
/// sits at `i`, or kNoNode if the argument does not resolve to an
/// annotated mutex. Mirrors the thread pass's argument scan, but keeps the
/// receiver shape (`m` vs `x->m`) because resolution differs.
std::size_t AcquiredNode(const std::vector<Token>& tokens, std::size_t i,
                         std::size_t body_end, const LockGraph& graph,
                         const std::string& own_class,
                         std::size_t* close_paren) {
  std::size_t j = i + 1;
  while (j < body_end && tokens[j].text != "(" && tokens[j].text != ";") {
    ++j;
  }
  if (j >= body_end || tokens[j].text != "(") return kNoNode;
  std::size_t last_ident = kNoNode;
  int depth = 0;
  for (; j < body_end; ++j) {
    if (tokens[j].text == "(") ++depth;
    if (tokens[j].text == ")" && --depth == 0) break;
    if (tokens[j].kind == TokenKind::kIdentifier) last_ident = j;
  }
  if (close_paren != nullptr) *close_paren = j;
  if (last_ident == kNoNode) return kNoNode;
  const bool member_access =
      last_ident >= 1 && (tokens[last_ident - 1].text == "." ||
                          tokens[last_ident - 1].text == "->");
  return member_access ? graph.ResolveMember(tokens[last_ident].text)
                       : graph.ResolveBare(own_class,
                                           tokens[last_ident].text);
}

std::string CycleMessage(const std::vector<std::size_t>& cycle,
                         const std::map<std::pair<std::size_t, std::size_t>,
                                        OrderEdge>& edges,
                         const SourceTree& tree, const LockGraph& graph) {
  std::string message = "lock-order cycle: ";
  for (std::size_t k = 0; k < cycle.size(); ++k) {
    const std::size_t from = cycle[k];
    const std::size_t to = cycle[(k + 1) % cycle.size()];
    const auto it = edges.find({from, to});
    message += graph.nodes[from].Label() + " -> ";
    if (it != edges.end()) {
      const OrderEdge& edge = it->second;
      message += "(";
      message += edge.declared ? "declared at " : "acquired at ";
      message += tree.files[edge.file].rel_path + ":" +
                 std::to_string(edge.line) + ") ";
    }
  }
  message += graph.nodes[cycle.front()].Label();
  return message;
}

}  // namespace

void RunLockOrderPass(const SourceTree& tree,
                      const std::vector<FileStructure>& structures,
                      std::vector<Violation>* violations) {
  LockGraph graph;
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    for (const MutexOrder& order : structures[i].mutex_orders) {
      const auto key = std::make_pair(order.class_name, order.mutex_name);
      if (graph.by_key.count(key) != 0) continue;
      graph.by_key[key] = graph.nodes.size();
      graph.by_name[order.mutex_name].push_back(graph.nodes.size());
      graph.nodes.push_back(
          {order.class_name, order.mutex_name, i, order.line});
    }
  }
  if (graph.nodes.empty()) return;

  // Declared edges from annotation arguments.
  std::map<std::pair<std::size_t, std::size_t>, OrderEdge> edges;
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    for (const MutexOrder& order : structures[i].mutex_orders) {
      const std::size_t from =
          graph.Exact(order.class_name, order.mutex_name);
      if (from == kNoNode) continue;
      for (const std::string& spec : order.before) {
        const std::size_t to = graph.ResolveSpec(order.class_name, spec);
        if (to == kNoNode || to == from) continue;
        edges.emplace(std::make_pair(from, to),
                      OrderEdge{from, to, i, order.line, true, ""});
      }
    }
  }

  // Observed edges: RAII-holder nesting within each function body, plus
  // the ParallelFor check. A holder stays active until the brace depth of
  // its declaration closes.
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const ScannedFile& file = tree.files[i];
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (const FunctionDef& def : structures[i].functions) {
      if (def.body_end <= def.body_begin) continue;
      const std::string context = def.class_name.empty()
                                      ? def.name
                                      : def.class_name + "::" + def.name;

      // Token ranges of ParallelFor(...) call arguments in this body: the
      // loop lambda runs on pool workers, where blocking on an annotated
      // mutex serializes the parallel section (and, for the pool's own
      // mutex, can deadlock a worker against the submitter).
      std::vector<std::pair<std::size_t, std::size_t>> parallel_for;
      for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
        if (tokens[k].kind != TokenKind::kIdentifier ||
            tokens[k].text != "ParallelFor") {
          continue;
        }
        std::size_t j = k + 1;
        if (j >= def.body_end || tokens[j].text != "(") continue;
        int depth = 0;
        for (; j < def.body_end; ++j) {
          if (tokens[j].text == "(") ++depth;
          if (tokens[j].text == ")" && --depth == 0) break;
        }
        parallel_for.emplace_back(k + 1, j);
      }

      std::vector<Acquisition> active;
      std::int64_t depth = 0;
      for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
        const Token& t = tokens[k];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "{") ++depth;
          if (t.text == "}") {
            --depth;
            while (!active.empty() && active.back().depth > depth) {
              active.pop_back();
            }
          }
          continue;
        }
        if (t.kind != TokenKind::kIdentifier || !IsLockHolder(t.text)) {
          continue;
        }
        std::size_t close = k;
        const std::size_t node = AcquiredNode(
            tokens, k, def.body_end, graph, def.class_name, &close);
        if (node == kNoNode) {
          k = close;
          continue;
        }
        for (const auto& range : parallel_for) {
          if (k > range.first && k < range.second) {
            AddViolation(
                file, t.line, "lock-in-parallel-for",
                "blocking acquisition of annotated mutex '" +
                    graph.nodes[node].Label() +
                    "' inside a ParallelFor body (in " + context +
                    "); workers must not contend on ordered locks",
                violations);
            break;
          }
        }
        for (const Acquisition& held : active) {
          if (held.node == node) continue;
          const auto key = std::make_pair(held.node, node);
          if (edges.count(key) == 0) {
            edges.emplace(key, OrderEdge{held.node, node, i, t.line, false,
                                         context});
          }
          // An observed nesting that contradicts a declared edge is
          // reported even when the reverse observation never happens —
          // the annotation is the contract.
          const auto declared = edges.find({node, held.node});
          if (declared != edges.end() && declared->second.declared) {
            // Built by append (GCC 12's -Wrestrict misfires on the
            // equivalent operator+ chain at -O2).
            std::string message = "'";
            message += graph.nodes[node].Label();
            message += "' acquired while '";
            message += graph.nodes[held.node].Label();
            message += "' is held (in " + context + ", outer lock at line " +
                       std::to_string(held.line) + "), but " +
                       tree.files[declared->second.file].rel_path + ":" +
                       std::to_string(declared->second.line) +
                       " declares the opposite order via CA_ACQUIRED_BEFORE";
            AddViolation(file, t.line, "lock-order-contradiction", message,
                         violations);
          }
        }
        active.push_back(Acquisition{node, k, t.line, depth});
        k = close;
      }
    }
  }

  // Cycle detection over the combined declared + observed graph.
  // Contradictions already reported above are pruned first so one
  // mistake does not surface as both a contradiction and a cycle.
  std::map<std::size_t, std::vector<std::size_t>> adjacency;
  for (const auto& [key, edge] : edges) {
    const auto reverse = edges.find({key.second, key.first});
    if (reverse != edges.end() && edge.declared != reverse->second.declared &&
        !edge.declared) {
      continue;  // the observed half of a reported contradiction
    }
    adjacency[key.first].push_back(key.second);
  }

  const std::size_t n = graph.nodes.size();
  std::vector<int> state(n, 0);
  std::vector<std::size_t> path;
  std::set<std::string> reported;
  struct Frame {
    std::size_t node;
    // Not `next`: that name collides with a CA_GUARDED_BY field of
    // TraceRecorder's ThreadBuffer, and the thread pass matches guarded
    // fields by name tree-wide.
    std::size_t next_edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<Frame> stack{{root, 0}};
    state[root] = 1;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto it = adjacency.find(frame.node);
      const std::size_t degree =
          it == adjacency.end() ? 0 : it->second.size();
      if (frame.next_edge >= degree) {
        state[frame.node] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::size_t next = it->second[frame.next_edge++];
      if (state[next] == 1) {
        std::vector<std::size_t> cycle(
            std::find(path.begin(), path.end(), next), path.end());
        std::size_t pivot = 0;
        for (std::size_t k = 1; k < cycle.size(); ++k) {
          if (graph.nodes[cycle[k]].Label() <
              graph.nodes[cycle[pivot]].Label()) {
            pivot = k;
          }
        }
        std::rotate(cycle.begin(),
                    cycle.begin() + static_cast<std::ptrdiff_t>(pivot),
                    cycle.end());
        std::string canonical;
        for (const std::size_t member : cycle) {
          canonical += graph.nodes[member].Label() + ";";
        }
        if (reported.insert(canonical).second) {
          const auto back_edge = edges.find({frame.node, next});
          const std::size_t at_file = back_edge != edges.end()
                                          ? back_edge->second.file
                                          : graph.nodes[next].file;
          const std::size_t at_line = back_edge != edges.end()
                                          ? back_edge->second.line
                                          : graph.nodes[next].line;
          AddViolation(tree.files[at_file], at_line, "lock-order-cycle",
                       CycleMessage(cycle, edges, tree, graph), violations);
        }
        continue;
      }
      if (state[next] == 0) {
        state[next] = 1;
        path.push_back(next);
        stack.push_back(Frame{next, 0});
      }
    }
  }
}

}  // namespace copyattack::analyze
