#include "analyze/structure.h"

#include <cstdint>

namespace copyattack::analyze {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool IsFundamentalTypeWord(const std::string& text) {
  return text == "void" || text == "bool" || text == "char" ||
         text == "int" || text == "short" || text == "long" ||
         text == "signed" || text == "unsigned" || text == "float" ||
         text == "double" || text == "auto" || text == "wchar_t" ||
         text == "char8_t" || text == "char16_t" || text == "char32_t";
}

bool IsControlWord(const std::string& text) {
  return text == "if" || text == "for" || text == "while" ||
         text == "switch" || text == "do" || text == "else" ||
         text == "try" || text == "catch" || text == "return" ||
         text == "sizeof" || text == "alignof" || text == "alignas" ||
         text == "decltype" || text == "noexcept" || text == "throw" ||
         text == "static_assert" || text == "new" || text == "delete";
}

/// Walks the token stream tracking namespace/class/enum/function/block
/// nesting. Every `{` is classified from the declaration tokens since the
/// last `;` / `{` / `}` (the "head"); unrecognized shapes become plain
/// blocks, so the worst failure mode is a function the passes do not see —
/// never a misattributed one.
class Scanner {
 public:
  explicit Scanner(const LexedFile& file) : tokens_(file.tokens) {}

  FileStructure Run() {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.in_directive) {
        // Directive lines never open scopes; macro bodies with (balanced)
        // braces must not pollute the next declaration's head.
        if (t.kind == TokenKind::kDirective && t.text == "define" &&
            i + 1 < tokens_.size() &&
            tokens_[i + 1].kind == TokenKind::kIdentifier) {
          result_.exported.insert(tokens_[i + 1].text);
        }
        continue;
      }
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          ClassifyOpenBrace(i);
          head_start_ = i + 1;
        } else if (t.text == "}") {
          CloseBrace(i);
          head_start_ = i + 1;
        } else if (t.text == ";") {
          head_start_ = i + 1;
        }
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        MaybeAnnotation(i);
        MaybeExport(i);
      }
    }
    return std::move(result_);
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kEnum, kFunction, kBlock };
    Kind kind;
    std::string name;
    std::size_t function_index = kNone;
  };

  Scope::Kind InnermostKind() const {
    return scopes_.empty() ? Scope::kNamespace : scopes_.back().kind;
  }

  std::string CurrentClassName() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  void Push(Scope::Kind kind, std::string name = "",
            std::size_t function_index = kNone) {
    scopes_.push_back(Scope{kind, std::move(name), function_index});
  }

  /// Non-directive token indices in [head_start_, brace).
  std::vector<std::size_t> HeadIndices(std::size_t brace) const {
    std::vector<std::size_t> head;
    for (std::size_t i = head_start_; i < brace; ++i) {
      if (!tokens_[i].in_directive) head.push_back(i);
    }
    return head;
  }

  void ClassifyOpenBrace(std::size_t i) {
    const Scope::Kind outer = InnermostKind();
    if (outer == Scope::kFunction || outer == Scope::kBlock ||
        outer == Scope::kEnum) {
      Push(Scope::kBlock);
      return;
    }
    const std::vector<std::size_t> head = HeadIndices(i);
    if (head.empty()) {
      Push(Scope::kBlock);
      return;
    }

    const Token& first = tokens_[head.front()];
    const bool inline_ns = first.text == "inline" && head.size() >= 2 &&
                           tokens_[head[1]].text == "namespace";
    if (first.text == "namespace" || inline_ns) {
      std::string name;
      for (std::size_t h = inline_ns ? 2 : 1; h < head.size(); ++h) {
        if (tokens_[head[h]].kind != TokenKind::kIdentifier) continue;
        if (!name.empty()) name += "::";
        name += tokens_[head[h]].text;
      }
      Push(Scope::kNamespace, std::move(name));
      return;
    }
    if (first.text == "extern" && head.size() <= 2) {
      Push(Scope::kNamespace);  // extern "C" linkage block
      return;
    }

    // class/struct/union/enum keyword at template-bracket depth 0 (so
    // `template <class T>` parameters do not count).
    std::size_t class_kw = kNone;
    bool is_enum = false;
    {
      std::int64_t angle = 0;
      for (std::size_t h = 0; h < head.size(); ++h) {
        const Token& t = tokens_[head[h]];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "<") ++angle;
          if (t.text == ">" && angle > 0) --angle;
          continue;
        }
        if (t.kind != TokenKind::kIdentifier || angle != 0) continue;
        if (t.text == "enum") {
          is_enum = true;
          break;
        }
        if (class_kw == kNone &&
            (t.text == "class" || t.text == "struct" || t.text == "union")) {
          class_kw = h;
        }
      }
    }
    if (is_enum) {
      Push(Scope::kEnum);
      return;
    }
    if (class_kw != kNone) {
      Push(Scope::kClass, ClassNameFromHead(head, class_kw));
      return;
    }

    // Brace initializers: `x = {...}`, `f({...})`, `arr[{...}]`, and
    // constructor-init-list members `: member_{...}` / `, member_{...}`.
    const Token& last = tokens_[head.back()];
    if (last.kind == TokenKind::kPunct &&
        (last.text == "=" || last.text == "," || last.text == "(" ||
         last.text == "[" || last.text == "<")) {
      Push(Scope::kBlock);
      return;
    }
    if (last.kind == TokenKind::kIdentifier && head.size() >= 2) {
      const Token& prev = tokens_[head[head.size() - 2]];
      if (prev.kind == TokenKind::kPunct &&
          (prev.text == ":" || prev.text == ",")) {
        Push(Scope::kBlock);
        return;
      }
    }
    if (HasTopLevelAssignment(head)) {
      Push(Scope::kBlock);  // `auto x = <expr> {` — initializer, not a body
      return;
    }

    FunctionDef def;
    if (ExtractFunction(head, &def)) {
      def.body_begin = i;
      def.line = tokens_[i].line;
      result_.functions.push_back(std::move(def));
      const std::size_t index = result_.functions.size() - 1;
      Push(Scope::kFunction, result_.functions[index].name, index);
      return;
    }
    Push(Scope::kBlock);
  }

  void CloseBrace(std::size_t i) {
    if (scopes_.empty()) return;
    const Scope scope = scopes_.back();
    scopes_.pop_back();
    if (scope.kind == Scope::kFunction && scope.function_index != kNone) {
      result_.functions[scope.function_index].body_end = i;
    }
  }

  std::string ClassNameFromHead(const std::vector<std::size_t>& head,
                                std::size_t class_kw) const {
    for (std::size_t h = class_kw + 1; h < head.size(); ++h) {
      const Token& t = tokens_[head[h]];
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "alignas") {
          h = SkipParenGroupInHead(head, h + 1);
          continue;
        }
        return t.text;
      }
      break;  // `{`-adjacent punctuation: anonymous
    }
    return "";
  }

  /// If head[h] is `(`, returns the index of its matching `)` (or the last
  /// head index); otherwise returns h.
  std::size_t SkipParenGroupInHead(const std::vector<std::size_t>& head,
                                   std::size_t h) const {
    if (h >= head.size() || tokens_[head[h]].text != "(") return h;
    std::int64_t depth = 0;
    for (; h < head.size(); ++h) {
      const std::string& text = tokens_[head[h]].text;
      if (text == "(") ++depth;
      if (text == ")" && --depth == 0) return h;
    }
    return head.size() - 1;
  }

  bool HasTopLevelAssignment(const std::vector<std::size_t>& head) const {
    std::int64_t depth = 0;
    for (std::size_t h = 0; h < head.size(); ++h) {
      const std::string& text = tokens_[head[h]].text;
      if (text == "(" || text == "[") ++depth;
      if ((text == ")" || text == "]") && depth > 0) --depth;
      if (text == "=" && depth == 0 && h > 0) {
        const std::string& prev = tokens_[head[h - 1]].text;
        if (prev != "operator" && prev != "=" && prev != "!" &&
            prev != "<" && prev != ">") {
          return true;
        }
      }
    }
    return false;
  }

  bool ExtractFunction(const std::vector<std::size_t>& head,
                       FunctionDef* def) {
    // The parameter-list `(` is the first one directly preceded by a
    // plausible name: an identifier that is not a type/control keyword, or
    // an `operator<punct>` spelling.
    std::size_t name_pos = kNone;
    for (std::size_t h = 1; h < head.size(); ++h) {
      if (tokens_[head[h]].kind != TokenKind::kPunct ||
          tokens_[head[h]].text != "(") {
        continue;
      }
      const Token& prev = tokens_[head[h - 1]];
      if (prev.kind == TokenKind::kIdentifier) {
        if (IsFundamentalTypeWord(prev.text) || IsControlWord(prev.text)) {
          continue;
        }
        name_pos = h - 1;
        break;
      }
      if (prev.kind == TokenKind::kPunct && h >= 2 &&
          tokens_[head[h - 2]].text == "operator") {
        name_pos = h - 2;  // operator+ / operator== / ...
        break;
      }
    }
    if (name_pos == kNone) return false;

    def->name = tokens_[head[name_pos]].text;
    std::vector<std::string> qualifiers;
    std::size_t q = name_pos;
    while (q >= 2 && tokens_[head[q - 1]].text == "::" &&
           tokens_[head[q - 2]].kind == TokenKind::kIdentifier) {
      qualifiers.push_back(tokens_[head[q - 2]].text);
      q -= 2;
    }
    def->is_dtor = name_pos >= 1 && tokens_[head[name_pos - 1]].text == "~";
    def->class_name =
        !qualifiers.empty() ? qualifiers.front() : CurrentClassName();
    def->is_ctor = !def->is_dtor && !def->class_name.empty() &&
                   def->name == def->class_name;

    for (std::size_t h = 0; h + 1 < head.size(); ++h) {
      if (tokens_[head[h]].text == "CA_REQUIRES") {
        const std::string mutex = LastIdentifierInParenGroup(head, h + 1);
        if (!mutex.empty()) def->requires_mutexes.push_back(mutex);
      }
    }
    return true;
  }

  std::string LastIdentifierInParenGroup(const std::vector<std::size_t>& head,
                                         std::size_t h) const {
    if (h >= head.size() || tokens_[head[h]].text != "(") return "";
    std::string last;
    std::int64_t depth = 0;
    for (; h < head.size(); ++h) {
      const Token& t = tokens_[head[h]];
      if (t.text == "(") ++depth;
      if (t.text == ")" && --depth == 0) break;
      if (t.kind == TokenKind::kIdentifier) last = t.text;
    }
    return last;
  }

  /// Same as above, but over raw token indices (annotations sit outside any
  /// gathered head when encountered mid-walk).
  std::string LastIdentifierInParens(std::size_t i) const {
    if (i >= tokens_.size() || tokens_[i].text != "(") return "";
    std::string last;
    std::int64_t depth = 0;
    for (; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.in_directive) continue;
      if (t.text == "(") ++depth;
      if (t.text == ")" && --depth == 0) break;
      if (t.kind == TokenKind::kIdentifier) last = t.text;
    }
    return last;
  }

  std::size_t PrevCodeToken(std::size_t i) const {
    while (i > 0) {
      --i;
      if (!tokens_[i].in_directive) return i;
    }
    return kNone;
  }

  std::size_t NextCodeToken(std::size_t i) const {
    for (++i; i < tokens_.size(); ++i) {
      if (!tokens_[i].in_directive) return i;
    }
    return kNone;
  }

  /// True if the declaration tokens preceding `field_pos` (back to the last
  /// `;` / `{` / `}` / access-specifier `:`) mention `atomic`.
  bool DeclMentionsAtomic(std::size_t field_pos) const {
    std::size_t i = field_pos;
    while ((i = PrevCodeToken(i)) != kNone) {
      const Token& t = tokens_[i];
      if (t.kind == TokenKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}" ||
           t.text == ":")) {
        return false;
      }
      if (t.kind == TokenKind::kIdentifier && t.text == "atomic") return true;
    }
    return false;
  }

  void MaybeAnnotation(std::size_t i) {
    const std::string& text = tokens_[i].text;
    const bool guarded = text == "CA_GUARDED_BY";
    const bool atomic_only = text == "CA_ATOMIC_ONLY";
    const bool requires_anno = text == "CA_REQUIRES";
    if (!guarded && !atomic_only && !requires_anno) return;
    if (InnermostKind() != Scope::kClass) return;  // heads handle the rest

    if (guarded || atomic_only) {
      const std::size_t field_pos = PrevCodeToken(i);
      if (field_pos == kNone ||
          tokens_[field_pos].kind != TokenKind::kIdentifier) {
        return;
      }
      AnnotatedField field;
      field.class_name = CurrentClassName();
      field.field_name = tokens_[field_pos].text;
      field.atomic_only = atomic_only;
      field.type_has_atomic = DeclMentionsAtomic(field_pos);
      field.line = tokens_[i].line;
      if (guarded) {
        const std::size_t paren = NextCodeToken(i);
        field.mutex_name =
            paren == kNone ? "" : LastIdentifierInParens(paren);
        if (field.mutex_name.empty()) return;  // malformed; ignore
      }
      result_.fields.push_back(std::move(field));
      return;
    }

    // CA_REQUIRES on an in-class method declaration:
    //   ReturnType Name(args...) [const] CA_REQUIRES(m);
    // Walk back over trailing qualifiers to the parameter list's `)`, match
    // it to its `(`, and take the identifier before it as the method name.
    std::size_t j = PrevCodeToken(i);
    while (j != kNone && tokens_[j].kind == TokenKind::kIdentifier &&
           (tokens_[j].text == "const" || tokens_[j].text == "noexcept" ||
            tokens_[j].text == "override" || tokens_[j].text == "final")) {
      j = PrevCodeToken(j);
    }
    if (j == kNone || tokens_[j].text != ")") return;
    std::int64_t depth = 0;
    while (j != kNone) {
      if (tokens_[j].text == ")") ++depth;
      if (tokens_[j].text == "(" && --depth == 0) break;
      j = PrevCodeToken(j);
    }
    if (j == kNone) return;
    const std::size_t name_pos = PrevCodeToken(j);
    if (name_pos == kNone ||
        tokens_[name_pos].kind != TokenKind::kIdentifier) {
      return;
    }
    const std::size_t paren = NextCodeToken(i);
    const std::string mutex =
        paren == kNone ? "" : LastIdentifierInParens(paren);
    if (mutex.empty()) return;
    result_.declared_requires.push_back(
        MethodRequires{CurrentClassName(), tokens_[name_pos].text, {mutex}});
  }

  void MaybeExport(std::size_t i) {
    const Token& t = tokens_[i];
    const Scope::Kind kind = InnermostKind();

    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      std::size_t j = NextCodeToken(i);
      if (j != kNone && (tokens_[j].text == "class" ||
                         tokens_[j].text == "struct")) {
        j = NextCodeToken(j);  // `enum class X`
      }
      if (j != kNone && tokens_[j].kind == TokenKind::kIdentifier &&
          tokens_[j].text != "alignas") {
        result_.exported.insert(tokens_[j].text);
      }
      return;
    }
    if (t.text == "using" || t.text == "typedef") {
      std::size_t j = i;
      std::string last_ident;
      for (std::size_t steps = 0; steps < 48; ++steps) {
        j = NextCodeToken(j);
        if (j == kNone) return;
        const Token& tj = tokens_[j];
        if (tj.text == "namespace") return;  // using-directive: no name
        if (tj.text == "=") break;           // alias: name precedes `=`
        if (tj.text == ";") break;           // declaration: last identifier
        if (tj.kind == TokenKind::kIdentifier) last_ident = tj.text;
      }
      if (!last_ident.empty()) result_.exported.insert(last_ident);
      return;
    }

    if (kind == Scope::kEnum) {
      const std::size_t j = NextCodeToken(i);
      if (j != kNone && (tokens_[j].text == "," || tokens_[j].text == "}" ||
                         tokens_[j].text == "=")) {
        result_.exported.insert(t.text);
      }
      return;
    }
    if (kind == Scope::kNamespace || kind == Scope::kClass) {
      const std::size_t j = NextCodeToken(i);
      if (j == kNone) return;
      const std::string& next = tokens_[j].text;
      // Entity names: `Name(...)` declarations, `name = init`,
      // `Type name;` members/externs, and `name{init}` / `name[rank]`.
      if (next == "(" || next == "=" || next == ";" || next == "{" ||
          next == "[") {
        result_.exported.insert(t.text);
      }
      return;
    }
  }

  const std::vector<Token>& tokens_;
  std::vector<Scope> scopes_;
  std::size_t head_start_ = 0;
  FileStructure result_;
};

}  // namespace

FileStructure ScanStructure(const LexedFile& file) {
  return Scanner(file).Run();
}

}  // namespace copyattack::analyze
