#include "analyze/structure.h"

#include <cstdint>

namespace copyattack::analyze {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool IsFundamentalTypeWord(const std::string& text) {
  return text == "void" || text == "bool" || text == "char" ||
         text == "int" || text == "short" || text == "long" ||
         text == "signed" || text == "unsigned" || text == "float" ||
         text == "double" || text == "auto" || text == "wchar_t" ||
         text == "char8_t" || text == "char16_t" || text == "char32_t";
}

bool IsControlWord(const std::string& text) {
  return text == "if" || text == "for" || text == "while" ||
         text == "switch" || text == "do" || text == "else" ||
         text == "try" || text == "catch" || text == "return" ||
         text == "sizeof" || text == "alignof" || text == "alignas" ||
         text == "decltype" || text == "noexcept" || text == "throw" ||
         text == "static_assert" || text == "new" || text == "delete";
}

/// Walks the token stream tracking namespace/class/enum/function/block
/// nesting. Every `{` is classified from the declaration tokens since the
/// last `;` / `{` / `}` (the "head"); unrecognized shapes become plain
/// blocks, so the worst failure mode is a function the passes do not see —
/// never a misattributed one.
class Scanner {
 public:
  explicit Scanner(const LexedFile& file) : tokens_(file.tokens) {}

  FileStructure Run() {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.in_directive) {
        // Directive lines never open scopes; macro bodies with (balanced)
        // braces must not pollute the next declaration's head.
        if (t.kind == TokenKind::kDirective && t.text == "define" &&
            i + 1 < tokens_.size() &&
            tokens_[i + 1].kind == TokenKind::kIdentifier) {
          result_.exported.insert(tokens_[i + 1].text);
        }
        continue;
      }
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          ClassifyOpenBrace(i);
          head_start_ = i + 1;
        } else if (t.text == "}") {
          CloseBrace(i);
          head_start_ = i + 1;
        } else if (t.text == ";") {
          if (InCheckpointedClass()) MaybeField(HeadIndices(i));
          head_start_ = i + 1;
        }
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        MaybeAnnotation(i);
        MaybeExport(i);
      }
    }
    return std::move(result_);
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kEnum, kFunction, kBlock };
    Kind kind;
    std::string name;
    std::size_t function_index = kNone;
    bool checkpointed = false;  ///< class head carried CA_CHECKPOINTED
  };

  Scope::Kind InnermostKind() const {
    return scopes_.empty() ? Scope::kNamespace : scopes_.back().kind;
  }

  /// True when member declarations at the current nesting level belong to a
  /// CA_CHECKPOINTED class (field extraction is active).
  bool InCheckpointedClass() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::kClass &&
           scopes_.back().checkpointed;
  }

  std::string CurrentClassName() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  void Push(Scope::Kind kind, std::string name = "",
            std::size_t function_index = kNone) {
    scopes_.push_back(Scope{kind, std::move(name), function_index});
  }

  /// Non-directive token indices in [head_start_, brace).
  std::vector<std::size_t> HeadIndices(std::size_t brace) const {
    std::vector<std::size_t> head;
    for (std::size_t i = head_start_; i < brace; ++i) {
      if (!tokens_[i].in_directive) head.push_back(i);
    }
    return head;
  }

  void ClassifyOpenBrace(std::size_t i) {
    const Scope::Kind outer = InnermostKind();
    if (outer == Scope::kFunction || outer == Scope::kBlock ||
        outer == Scope::kEnum) {
      Push(Scope::kBlock);
      return;
    }
    const std::vector<std::size_t> head = HeadIndices(i);
    if (head.empty()) {
      Push(Scope::kBlock);
      return;
    }

    const Token& first = tokens_[head.front()];
    const bool inline_ns = first.text == "inline" && head.size() >= 2 &&
                           tokens_[head[1]].text == "namespace";
    if (first.text == "namespace" || inline_ns) {
      std::string name;
      for (std::size_t h = inline_ns ? 2 : 1; h < head.size(); ++h) {
        if (tokens_[head[h]].kind != TokenKind::kIdentifier) continue;
        if (!name.empty()) name += "::";
        name += tokens_[head[h]].text;
      }
      Push(Scope::kNamespace, std::move(name));
      return;
    }
    if (first.text == "extern" && head.size() <= 2) {
      Push(Scope::kNamespace);  // extern "C" linkage block
      return;
    }

    // class/struct/union/enum keyword at template-bracket depth 0 (so
    // `template <class T>` parameters do not count).
    std::size_t class_kw = kNone;
    bool is_enum = false;
    {
      std::int64_t angle = 0;
      for (std::size_t h = 0; h < head.size(); ++h) {
        const Token& t = tokens_[head[h]];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "<") ++angle;
          if (t.text == ">" && angle > 0) --angle;
          continue;
        }
        if (t.kind != TokenKind::kIdentifier || angle != 0) continue;
        if (t.text == "enum") {
          is_enum = true;
          break;
        }
        if (class_kw == kNone &&
            (t.text == "class" || t.text == "struct" || t.text == "union")) {
          class_kw = h;
        }
      }
    }
    if (is_enum) {
      Push(Scope::kEnum);
      return;
    }
    if (class_kw != kNone) {
      std::string class_name = ClassNameFromHead(head, class_kw);
      if (!class_name.empty()) result_.classes.insert(class_name);
      const bool checkpointed = MaybeCheckpointedType(head, class_name);
      Push(Scope::kClass, std::move(class_name));
      scopes_.back().checkpointed = checkpointed;
      return;
    }

    // Brace initializers: `x = {...}`, `f({...})`, `arr[{...}]`, and
    // constructor-init-list members `: member_{...}` / `, member_{...}`.
    // In a CA_CHECKPOINTED class a brace-initialized member (`words[4] =
    // {0,0,0,0};`, `Matrix m{...};`) reaches end-of-declarator here — the
    // later `;` sees an empty head — so extraction runs on this head.
    const Token& last = tokens_[head.back()];
    if (last.kind == TokenKind::kPunct &&
        (last.text == "=" || last.text == "," || last.text == "(" ||
         last.text == "[" || last.text == "<")) {
      if (outer == Scope::kClass && InCheckpointedClass() &&
          last.text == "=") {
        MaybeField({head.begin(), head.end() - 1});
      }
      Push(Scope::kBlock);
      return;
    }
    if (last.kind == TokenKind::kIdentifier && head.size() >= 2) {
      const Token& prev = tokens_[head[head.size() - 2]];
      if (prev.kind == TokenKind::kPunct &&
          (prev.text == ":" || prev.text == ",")) {
        Push(Scope::kBlock);
        return;
      }
    }
    if (HasTopLevelAssignment(head)) {
      Push(Scope::kBlock);  // `auto x = <expr> {` — initializer, not a body
      return;
    }

    FunctionDef def;
    if (ExtractFunction(head, &def)) {
      def.body_begin = i;
      def.line = tokens_[i].line;
      result_.functions.push_back(std::move(def));
      const std::size_t index = result_.functions.size() - 1;
      Push(Scope::kFunction, result_.functions[index].name, index);
      return;
    }
    // Direct brace init of a member (`Matrix m{...};`) — still a declarator
    // end for field extraction.
    if (outer == Scope::kClass && InCheckpointedClass() &&
        last.kind == TokenKind::kIdentifier) {
      MaybeField(head);
    }
    Push(Scope::kBlock);
  }

  void CloseBrace(std::size_t i) {
    if (scopes_.empty()) return;
    const Scope scope = scopes_.back();
    scopes_.pop_back();
    if (scope.kind == Scope::kFunction && scope.function_index != kNone) {
      result_.functions[scope.function_index].body_end = i;
    }
  }

  std::string ClassNameFromHead(const std::vector<std::size_t>& head,
                                std::size_t class_kw) const {
    for (std::size_t h = class_kw + 1; h < head.size(); ++h) {
      const Token& t = tokens_[head[h]];
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "alignas") {
          h = SkipParenGroupInHead(head, h + 1);
          continue;
        }
        return t.text;
      }
      break;  // `{`-adjacent punctuation: anonymous
    }
    return "";
  }

  /// If head[h] is `(`, returns the index of its matching `)` (or the last
  /// head index); otherwise returns h.
  std::size_t SkipParenGroupInHead(const std::vector<std::size_t>& head,
                                   std::size_t h) const {
    if (h >= head.size() || tokens_[head[h]].text != "(") return h;
    std::int64_t depth = 0;
    for (; h < head.size(); ++h) {
      const std::string& text = tokens_[head[h]].text;
      if (text == "(") ++depth;
      if (text == ")" && --depth == 0) return h;
    }
    return head.size() - 1;
  }

  bool HasTopLevelAssignment(const std::vector<std::size_t>& head) const {
    std::int64_t depth = 0;
    for (std::size_t h = 0; h < head.size(); ++h) {
      const std::string& text = tokens_[head[h]].text;
      if (text == "(" || text == "[") ++depth;
      if ((text == ")" || text == "]") && depth > 0) --depth;
      if (text == "=" && depth == 0 && h > 0) {
        const std::string& prev = tokens_[head[h - 1]].text;
        if (prev != "operator" && prev != "=" && prev != "!" &&
            prev != "<" && prev != ">") {
          return true;
        }
      }
    }
    return false;
  }

  bool ExtractFunction(const std::vector<std::size_t>& head,
                       FunctionDef* def) {
    // The parameter-list `(` is the first one directly preceded by a
    // plausible name: an identifier that is not a type/control keyword, or
    // an `operator<punct>` spelling.
    std::size_t name_pos = kNone;
    for (std::size_t h = 1; h < head.size(); ++h) {
      if (tokens_[head[h]].kind != TokenKind::kPunct ||
          tokens_[head[h]].text != "(") {
        continue;
      }
      const Token& prev = tokens_[head[h - 1]];
      if (prev.kind == TokenKind::kIdentifier) {
        if (IsFundamentalTypeWord(prev.text) || IsControlWord(prev.text)) {
          continue;
        }
        name_pos = h - 1;
        break;
      }
      if (prev.kind == TokenKind::kPunct && h >= 2 &&
          tokens_[head[h - 2]].text == "operator") {
        name_pos = h - 2;  // operator+ / operator== / ...
        break;
      }
    }
    if (name_pos == kNone) return false;

    def->name = tokens_[head[name_pos]].text;
    std::vector<std::string> qualifiers;
    std::size_t q = name_pos;
    while (q >= 2 && tokens_[head[q - 1]].text == "::" &&
           tokens_[head[q - 2]].kind == TokenKind::kIdentifier) {
      qualifiers.push_back(tokens_[head[q - 2]].text);
      q -= 2;
    }
    def->is_dtor = name_pos >= 1 && tokens_[head[name_pos - 1]].text == "~";
    def->class_name =
        !qualifiers.empty() ? qualifiers.front() : CurrentClassName();
    def->is_ctor = !def->is_dtor && !def->class_name.empty() &&
                   def->name == def->class_name;

    for (std::size_t h = 0; h + 1 < head.size(); ++h) {
      if (tokens_[head[h]].text == "CA_REQUIRES") {
        const std::string mutex = LastIdentifierInParenGroup(head, h + 1);
        if (!mutex.empty()) def->requires_mutexes.push_back(mutex);
      }
    }
    for (const std::size_t h : head) {
      if (tokens_[h].text == "CA_HOT_PATH") def->hot_path = true;
      if (tokens_[h].text == "CA_COLD_OK") def->cold_ok = true;
    }
    def->head_begin = head.front();
    return true;
  }

  std::string LastIdentifierInParenGroup(const std::vector<std::size_t>& head,
                                         std::size_t h) const {
    if (h >= head.size() || tokens_[head[h]].text != "(") return "";
    std::string last;
    std::int64_t depth = 0;
    for (; h < head.size(); ++h) {
      const Token& t = tokens_[head[h]];
      if (t.text == "(") ++depth;
      if (t.text == ")" && --depth == 0) break;
      if (t.kind == TokenKind::kIdentifier) last = t.text;
    }
    return last;
  }

  /// Same as above, but over raw token indices (annotations sit outside any
  /// gathered head when encountered mid-walk).
  std::string LastIdentifierInParens(std::size_t i) const {
    if (i >= tokens_.size() || tokens_[i].text != "(") return "";
    std::string last;
    std::int64_t depth = 0;
    for (; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.in_directive) continue;
      if (t.text == "(") ++depth;
      if (t.text == ")" && --depth == 0) break;
      if (t.kind == TokenKind::kIdentifier) last = t.text;
    }
    return last;
  }

  /// Parses the paren group opening at raw token index `paren` into
  /// depth-1, comma-separated arguments, each the concatenation of its
  /// identifier / `::` tokens ("mutex_", "ThreadBuffer::mutex"). String
  /// literals (blanked by the lexer) and nested groups contribute nothing.
  std::vector<std::string> ParseAnnotationArgs(std::size_t paren) const {
    std::vector<std::string> args;
    if (paren == kNone || paren >= tokens_.size() ||
        tokens_[paren].text != "(") {
      return args;
    }
    std::string current;
    std::int64_t depth = 0;
    for (std::size_t i = paren; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.in_directive) continue;
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") {
          ++depth;
        } else if (t.text == ")") {
          if (--depth == 0) break;
        } else if (t.text == "," && depth == 1) {
          if (!current.empty()) args.push_back(std::move(current));
          current.clear();
        } else if (t.text == "::" && depth == 1) {
          current += "::";
        }
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && depth == 1) current += t.text;
    }
    if (!current.empty()) args.push_back(std::move(current));
    return args;
  }

  static void SplitQualified(const std::string& spelled,
                             std::string* qualifier, std::string* name) {
    const std::size_t sep = spelled.rfind("::");
    if (sep == std::string::npos) {
      *name = spelled;
      return;
    }
    *qualifier = spelled.substr(0, sep);
    *name = spelled.substr(sep + 2);
  }

  /// Records a CA_CHECKPOINTED annotation found in a class head (it sits
  /// after the class name, before any base clause). Returns whether the
  /// class is checkpointed so the scope can arm field extraction.
  bool MaybeCheckpointedType(const std::vector<std::size_t>& head,
                             const std::string& class_name) {
    for (std::size_t h = 0; h < head.size(); ++h) {
      if (tokens_[head[h]].text != "CA_CHECKPOINTED") continue;
      CheckpointedType type;
      type.class_name = class_name;
      type.line = tokens_[head[h]].line;
      type.save_name = "SaveState";
      type.load_name = "LoadState";
      const std::vector<std::string> args =
          ParseAnnotationArgs(NextCodeToken(head[h]));
      if (!args.empty()) {
        SplitQualified(args[0], &type.save_qualifier, &type.save_name);
      }
      if (args.size() >= 2) {
        SplitQualified(args[1], &type.load_qualifier, &type.load_name);
      }
      result_.checkpointed_types.push_back(std::move(type));
      return true;
    }
    return false;
  }

  /// Field extraction for CA_CHECKPOINTED classes. `head` is the token run
  /// of one member declaration (terminated by `;` or by a brace
  /// initializer's `{`, with a trailing `=` already dropped). Extracts the
  /// declarator name, erring toward skipping anything that is not plainly
  /// a data member — method declarations, nested types, aliases, statics —
  /// so the checkpoint pass never reports a member that does not exist.
  void MaybeField(std::vector<std::size_t> head) {
    while (head.size() >= 2 && tokens_[head[1]].text == ":" &&
           (tokens_[head[0]].text == "public" ||
            tokens_[head[0]].text == "private" ||
            tokens_[head[0]].text == "protected")) {
      head.erase(head.begin(), head.begin() + 2);
    }
    while (!head.empty() && tokens_[head[0]].text == "mutable") {
      head.erase(head.begin());
    }
    if (head.empty()) return;
    const std::string& first = tokens_[head[0]].text;
    if (first == "static" || first == "using" || first == "typedef" ||
        first == "friend" || first == "template" || first == "enum" ||
        first == "class" || first == "struct" || first == "union" ||
        first == "virtual" || first == "explicit") {
      return;
    }
    for (const std::size_t h : head) {
      if (tokens_[h].text == "operator") return;
    }

    // The declarator proper: everything before a top-level `=`. Top-level
    // `:` (bit-field) or `,` (multi-declarator) shapes are skipped rather
    // than half-parsed.
    std::vector<std::size_t> decl;
    {
      std::int64_t depth = 0;
      for (const std::size_t h : head) {
        const Token& t = tokens_[h];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
          if ((t.text == ")" || t.text == "]" || t.text == ">") && depth > 0)
            --depth;
          if (depth == 0 && t.text == "=") break;
          if (depth == 0 && (t.text == ":" || t.text == ",")) return;
        }
        decl.push_back(h);
      }
    }

    // Strip trailing annotation macro groups and array extents; anything
    // else parenthesized at the tail is a function declaration.
    bool exempt = false;
    while (!decl.empty()) {
      const Token& last = tokens_[decl.back()];
      if (last.kind == TokenKind::kIdentifier &&
          last.text == "CA_ATOMIC_ONLY") {
        decl.pop_back();
        continue;
      }
      if (last.text == ")" || last.text == "]") {
        const std::string open = last.text == ")" ? "(" : "[";
        std::int64_t depth = 0;
        std::size_t h = decl.size();
        bool matched = false;
        while (h > 0) {
          --h;
          const std::string& text = tokens_[decl[h]].text;
          if (text == last.text) ++depth;
          if (text == open && --depth == 0) {
            matched = true;
            break;
          }
        }
        if (!matched) return;
        if (last.text == ")") {
          if (h == 0) return;
          const Token& macro = tokens_[decl[h - 1]];
          if (macro.kind != TokenKind::kIdentifier ||
              macro.text.rfind("CA_", 0) != 0) {
            return;  // parameter list, not an annotation
          }
          if (macro.text == "CA_NOT_CHECKPOINTED") exempt = true;
          decl.erase(decl.begin() + static_cast<std::ptrdiff_t>(h - 1),
                     decl.end());
        } else {
          decl.erase(decl.begin() + static_cast<std::ptrdiff_t>(h),
                     decl.end());
        }
        continue;
      }
      break;
    }
    if (decl.size() < 2) return;  // a member needs at least type + name
    const Token& name = tokens_[decl.back()];
    if (name.kind != TokenKind::kIdentifier) return;
    if (name.text == "const" || name.text == "noexcept" ||
        name.text == "override" || name.text == "final" ||
        name.text == "default" || name.text == "delete" ||
        IsFundamentalTypeWord(name.text) || IsControlWord(name.text)) {
      return;
    }
    FieldDecl field;
    field.class_name = CurrentClassName();
    field.field_name = name.text;
    field.exempt = exempt;
    field.line = name.line;
    result_.checkpoint_fields.push_back(std::move(field));
  }

  std::size_t PrevCodeToken(std::size_t i) const {
    while (i > 0) {
      --i;
      if (!tokens_[i].in_directive) return i;
    }
    return kNone;
  }

  std::size_t NextCodeToken(std::size_t i) const {
    for (++i; i < tokens_.size(); ++i) {
      if (!tokens_[i].in_directive) return i;
    }
    return kNone;
  }

  /// True if the declaration tokens preceding `field_pos` (back to the last
  /// `;` / `{` / `}` / access-specifier `:`) mention `atomic`.
  bool DeclMentionsAtomic(std::size_t field_pos) const {
    std::size_t i = field_pos;
    while ((i = PrevCodeToken(i)) != kNone) {
      const Token& t = tokens_[i];
      if (t.kind == TokenKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}" ||
           t.text == ":")) {
        return false;
      }
      if (t.kind == TokenKind::kIdentifier && t.text == "atomic") return true;
    }
    return false;
  }

  void MaybeAnnotation(std::size_t i) {
    const std::string& text = tokens_[i].text;
    const bool guarded = text == "CA_GUARDED_BY";
    const bool atomic_only = text == "CA_ATOMIC_ONLY";
    const bool requires_anno = text == "CA_REQUIRES";
    const bool acquired_before = text == "CA_ACQUIRED_BEFORE";
    if (!guarded && !atomic_only && !requires_anno && !acquired_before) {
      return;
    }
    if (InnermostKind() != Scope::kClass) return;  // heads handle the rest

    if (acquired_before) {
      const std::size_t mutex_pos = PrevCodeToken(i);
      if (mutex_pos == kNone ||
          tokens_[mutex_pos].kind != TokenKind::kIdentifier) {
        return;
      }
      MutexOrder order;
      order.class_name = CurrentClassName();
      order.mutex_name = tokens_[mutex_pos].text;
      order.before = ParseAnnotationArgs(NextCodeToken(i));
      order.line = tokens_[i].line;
      result_.mutex_orders.push_back(std::move(order));
      return;
    }

    if (guarded || atomic_only) {
      const std::size_t field_pos = PrevCodeToken(i);
      if (field_pos == kNone ||
          tokens_[field_pos].kind != TokenKind::kIdentifier) {
        return;
      }
      AnnotatedField field;
      field.class_name = CurrentClassName();
      field.field_name = tokens_[field_pos].text;
      field.atomic_only = atomic_only;
      field.type_has_atomic = DeclMentionsAtomic(field_pos);
      field.line = tokens_[i].line;
      if (guarded) {
        const std::size_t paren = NextCodeToken(i);
        field.mutex_name =
            paren == kNone ? "" : LastIdentifierInParens(paren);
        if (field.mutex_name.empty()) return;  // malformed; ignore
      }
      result_.fields.push_back(std::move(field));
      return;
    }

    // CA_REQUIRES on an in-class method declaration:
    //   ReturnType Name(args...) [const] CA_REQUIRES(m);
    // Walk back over trailing qualifiers to the parameter list's `)`, match
    // it to its `(`, and take the identifier before it as the method name.
    std::size_t j = PrevCodeToken(i);
    while (j != kNone && tokens_[j].kind == TokenKind::kIdentifier &&
           (tokens_[j].text == "const" || tokens_[j].text == "noexcept" ||
            tokens_[j].text == "override" || tokens_[j].text == "final")) {
      j = PrevCodeToken(j);
    }
    if (j == kNone || tokens_[j].text != ")") return;
    std::int64_t depth = 0;
    while (j != kNone) {
      if (tokens_[j].text == ")") ++depth;
      if (tokens_[j].text == "(" && --depth == 0) break;
      j = PrevCodeToken(j);
    }
    if (j == kNone) return;
    const std::size_t name_pos = PrevCodeToken(j);
    if (name_pos == kNone ||
        tokens_[name_pos].kind != TokenKind::kIdentifier) {
      return;
    }
    const std::size_t paren = NextCodeToken(i);
    const std::string mutex =
        paren == kNone ? "" : LastIdentifierInParens(paren);
    if (mutex.empty()) return;
    result_.declared_requires.push_back(
        MethodRequires{CurrentClassName(), tokens_[name_pos].text, {mutex}});
  }

  void MaybeExport(std::size_t i) {
    const Token& t = tokens_[i];
    const Scope::Kind kind = InnermostKind();

    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      std::size_t j = NextCodeToken(i);
      if (j != kNone && (tokens_[j].text == "class" ||
                         tokens_[j].text == "struct")) {
        j = NextCodeToken(j);  // `enum class X`
      }
      if (j != kNone && tokens_[j].kind == TokenKind::kIdentifier &&
          tokens_[j].text != "alignas") {
        result_.exported.insert(tokens_[j].text);
      }
      return;
    }
    if (t.text == "using" || t.text == "typedef") {
      std::size_t j = i;
      std::string last_ident;
      for (std::size_t steps = 0; steps < 48; ++steps) {
        j = NextCodeToken(j);
        if (j == kNone) return;
        const Token& tj = tokens_[j];
        if (tj.text == "namespace") return;  // using-directive: no name
        if (tj.text == "=") break;           // alias: name precedes `=`
        if (tj.text == ";") break;           // declaration: last identifier
        if (tj.kind == TokenKind::kIdentifier) last_ident = tj.text;
      }
      if (!last_ident.empty()) result_.exported.insert(last_ident);
      return;
    }

    if (kind == Scope::kEnum) {
      const std::size_t j = NextCodeToken(i);
      if (j != kNone && (tokens_[j].text == "," || tokens_[j].text == "}" ||
                         tokens_[j].text == "=")) {
        result_.exported.insert(t.text);
      }
      return;
    }
    if (kind == Scope::kNamespace || kind == Scope::kClass) {
      const std::size_t j = NextCodeToken(i);
      if (j == kNone) return;
      const std::string& next = tokens_[j].text;
      // Entity names: `Name(...)` declarations, `name = init`,
      // `Type name;` members/externs, and `name{init}` / `name[rank]`.
      if (next == "(" || next == "=" || next == ";" || next == "{" ||
          next == "[") {
        result_.exported.insert(t.text);
      }
      return;
    }
  }

  const std::vector<Token>& tokens_;
  std::vector<Scope> scopes_;
  std::size_t head_start_ = 0;
  FileStructure result_;
};

}  // namespace

FileStructure ScanStructure(const LexedFile& file) {
  return Scanner(file).Run();
}

}  // namespace copyattack::analyze
