#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"

/// RNG stream provenance (ISSUE 9): the sharded campaign runner's
/// bit-identical guarantee (outcomes invariant to shard/thread count, and
/// across kill-and-resume) holds only because every random stream in
/// campaign code is derived as DeriveStreamSeed(base, stream_index) —
/// never by ad-hoc XOR/multiply mixing (collision-prone across shards) and
/// never by Fork() (draw-order dependent, so two interleavings of the same
/// campaign would diverge). The [rng] stream_scoped prefixes in
/// layers.toml name the files under that contract.
///
/// Policy (DESIGN.md §15): a *plain* base seed — a bare identifier or
/// member chain like `job.seed` — is allowed (it names a stream, it does
/// not mix one); any constructor argument containing arithmetic operators
/// or numeric literals needs DeriveStreamSeed provenance, either lexically
/// in the argument or through a called function whose body uses it (one
/// call-graph hop of dataflow).

namespace copyattack::analyze {

namespace {

bool IsStreamScoped(const LayerContract& contract,
                    const std::string& rel_path) {
  for (const std::string& prefix : contract.rng_stream_scoped) {
    if (rel_path.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Shift operators lex as two single-char angles and are not listed here;
/// a shifted seed in practice always carries a numeric literal, which the
/// kNumber check catches on its own.
bool IsMixingPunct(const std::string& text) {
  return text == "^" || text == "+" || text == "-" || text == "*" ||
         text == "%" || text == "|" || text == "&";
}

/// True when `name` resolves (unique-name) to a definition whose body
/// mentions DeriveStreamSeed — the "blessed wrapper" provenance tier.
bool BodyDerivesStream(const SourceTree& tree, const CallGraph& graph,
                       const std::vector<FileStructure>& structures,
                       const std::string& name) {
  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    if (graph.nodes[n].name != name) continue;
    const CallGraphNode& node = graph.nodes[n];
    const FunctionDef& def =
        structures[node.file_index].functions[node.function_index];
    const std::vector<Token>& tokens =
        tree.files[node.file_index].lexed.tokens;
    const std::size_t end =
        def.body_end < tokens.size() ? def.body_end : tokens.size();
    for (std::size_t i = def.body_begin + 1; i < end; ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier &&
          tokens[i].text == "DeriveStreamSeed") {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void RunRngProvenancePass(const SourceTree& tree,
                          const LayerContract& contract,
                          const CallGraph& graph,
                          const std::vector<FileStructure>& structures,
                          std::vector<Violation>* violations) {
  if (contract.rng_stream_scoped.empty()) return;

  for (std::size_t f = 0; f < tree.files.size(); ++f) {
    const ScannedFile& file = tree.files[f];
    if (!IsStreamScoped(contract, file.rel_path)) continue;
    const std::vector<Token>& tokens = file.lexed.tokens;

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.in_directive || t.kind != TokenKind::kIdentifier) continue;

      // Rng::Fork in stream-scoped code: draw-order dependent by
      // construction, so shard invariance dies with it.
      if (t.text == "Fork" && i > 0 &&
          (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
          tokens[i + 1].text == "(") {
        AddViolation(file, t.line, "rng-fork-in-stream",
                     "Rng::Fork in stream-scoped campaign code; forked "
                     "streams depend on draw order — derive the stream "
                     "with util::DeriveStreamSeed(base, index) instead",
                     violations);
        continue;
      }

      // `Rng name(args...)` / `Rng name{args...}` constructions.
      if (t.text != "Rng") continue;
      if (i > 0 && tokens[i - 1].text == "::" && i >= 2 &&
          tokens[i - 2].text == "Rng") {
        continue;  // out-of-class definition qualifier
      }
      std::size_t open = i + 1;
      std::string var;
      if (tokens[open].kind == TokenKind::kIdentifier) {
        var = tokens[open].text;
        ++open;
      }
      if (open >= tokens.size() ||
          (tokens[open].text != "(" && tokens[open].text != "{")) {
        continue;
      }
      const std::string close = tokens[open].text == "(" ? ")" : "}";
      const std::string& opener = tokens[open].text;

      // Scan the argument tokens for provenance and for mixing.
      bool derives = false;
      bool mixes = false;
      std::string wrapper;  // first called identifier inside the args
      int depth = 0;
      for (std::size_t j = open; j < tokens.size(); ++j) {
        const Token& a = tokens[j];
        if (a.text == opener) {
          ++depth;
          continue;
        }
        if (a.text == close && --depth == 0) break;
        if (a.kind == TokenKind::kIdentifier) {
          if (a.text == "DeriveStreamSeed") derives = true;
          if (wrapper.empty() && j + 1 < tokens.size() &&
              tokens[j + 1].text == "(") {
            wrapper = a.text;
          }
          continue;
        }
        if (a.kind == TokenKind::kNumber) mixes = true;
        if (a.kind == TokenKind::kPunct && IsMixingPunct(a.text)) {
          mixes = true;
        }
      }
      if (derives || !mixes) continue;
      if (!wrapper.empty() &&
          BodyDerivesStream(tree, graph, structures, wrapper)) {
        continue;
      }
      AddViolation(
          file, t.line, "rng-adhoc-seed",
          "Rng `" + (var.empty() ? std::string("<temporary>") : var) +
              "` is seeded by ad-hoc arithmetic in stream-scoped campaign "
              "code; use util::DeriveStreamSeed(base, stream_index) so "
              "shard and resume streams stay collision-free and "
              "bit-identical",
          violations);
    }
  }
}

}  // namespace copyattack::analyze
