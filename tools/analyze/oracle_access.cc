#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"

/// Metered-oracle enforcement (ISSUE 9): the paper's premise is a
/// black-box attacker under a query budget, which only holds if every
/// oracle operation flows through the metered decorator stack
/// (BlackBoxRecommender <- FaultInjector <- ResilientBlackBox <-
/// BatchedBlackBox). A strategy that calls QueryTopK on the concrete
/// recommender directly would read the target without spending budget —
/// its campaign numbers would be fiction. The [oracle] section of
/// layers.toml names the stack's classes, its metered entry points, the
/// interface seam methods, and the sanctioned callers; everything else in
/// src/ that reaches the oracle is a finding.

namespace copyattack::analyze {

namespace {

bool InSrc(const std::string& rel_path) {
  return rel_path.rfind("src/", 0) == 0;
}

bool Allowlisted(const OracleContract& oracle, const std::string& rel_path) {
  const std::string module = ModuleOf(rel_path);
  for (const std::string& allowed : oracle.allow_modules) {
    if (module == allowed) return true;
  }
  for (const std::string& allowed : oracle.allow_files) {
    if (rel_path == allowed) return true;
  }
  return false;
}

/// True when the call site plausibly targets the oracle stack: an entry
/// point by name, or a seam method whose receiver/qualifier/resolved
/// targets land on an [oracle] class.
bool TargetsOracle(const OracleContract& oracle, const CallGraph& graph,
                   const CallSite& site) {
  if (oracle.IsEntryPoint(site.name)) return true;
  if (!oracle.IsSeamMethod(site.name)) return false;
  if (!site.qualifier.empty() && oracle.IsOracleClass(site.qualifier)) {
    return true;
  }
  for (const std::size_t target : site.targets) {
    if (oracle.IsOracleClass(graph.nodes[target].class_name)) return true;
  }
  return false;
}

}  // namespace

void RunOracleAccessPass(const SourceTree& tree,
                         const LayerContract& contract,
                         const CallGraph& graph,
                         std::vector<Violation>* violations) {
  const OracleContract& oracle = contract.oracle;
  if (!oracle.configured) return;

  // 1. Direct offenders: non-allowlisted src/ functions (outside the stack
  // itself) with a call site that lands on the oracle.
  std::vector<std::size_t> offenders;
  std::set<std::size_t> offender_set;
  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    const CallGraphNode& node = graph.nodes[n];
    const std::string& rel_path = graph.FileOf(tree, n);
    if (!InSrc(rel_path)) continue;  // tools/tests/bench probe at will
    if (oracle.IsOracleClass(node.class_name)) continue;  // the stack
    if (Allowlisted(oracle, rel_path)) continue;
    for (const CallSite& site : node.calls) {
      if (!TargetsOracle(oracle, graph, site)) continue;
      AddViolation(tree.files[node.file_index], site.line,
                   "oracle-direct-call",
                   graph.Display(n) + " calls oracle operation `" +
                       site.name +
                       "` directly, bypassing the metered decorator stack; "
                       "route it through the sanctioned gateway (see "
                       "[oracle] in " +
                       contract.source_path + ")",
                   violations);
      if (offender_set.insert(n).second) offenders.push_back(n);
    }
  }
  if (offenders.empty()) return;

  // 2. Transitive callers: walk the reverse graph from the offenders. The
  // walk does not pass through allowlisted/oracle-stack functions (calling
  // a sanctioned gateway is the *correct* shape, and must not taint the
  // gateway's own callers).
  const auto barrier = [&](std::size_t n) {
    const std::string& rel_path = graph.FileOf(tree, n);
    return !InSrc(rel_path) ||
           oracle.IsOracleClass(graph.nodes[n].class_name) ||
           Allowlisted(oracle, rel_path);
  };
  std::vector<std::size_t> parent;
  graph.Reach(offenders, /*use_reverse=*/true, barrier, &parent);
  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    if (parent[n] == CallGraph::kNoNode || parent[n] == n) continue;
    if (offender_set.count(n) != 0) continue;  // already reported directly
    if (barrier(n)) continue;
    AddViolation(tree.files[graph.nodes[n].file_index], graph.nodes[n].line,
                 "oracle-unmetered-path",
                 graph.Display(n) +
                     " reaches an unmetered oracle call (call chain: " +
                     graph.PathFrom(parent, n) + ")",
                 violations);
  }
}

}  // namespace copyattack::analyze
