#ifndef COPYATTACK_TOOLS_ANALYZE_REPORT_H_
#define COPYATTACK_TOOLS_ANALYZE_REPORT_H_

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "analyze/analysis.h"

/// SARIF output and baseline diffing for copyattack-analyze.
///
/// SARIF (Static Analysis Results Interchange Format 2.1.0) is what CI
/// code-scanning UIs ingest; `--format=sarif` emits one run with the full
/// rule catalogue as the tool driver and one result per violation.
///
/// The baseline (`tools/analyze/baseline.json`, `--baseline=<path>`)
/// grandfathers known findings so a new pass can land with existing debt
/// tracked instead of blocking: a finding matching a baseline entry is
/// reported but does not fail the run; a finding NOT in the baseline
/// fails; a baseline entry the analyzer no longer emits also fails
/// (stale-entry burn-down hygiene — delete the entry with the fix).
/// Matching is by (file, rule, message), deliberately line-insensitive so
/// unrelated edits shifting a grandfathered finding do not churn the file.

namespace copyattack::analyze {

/// Writes SARIF 2.1.0; returns the number of violations.
std::size_t ReportSarif(const std::vector<Violation>& violations,
                        std::ostream& out);

/// The line-insensitive identity used for baseline matching.
std::string BaselineKey(const Violation& violation);

/// Multiset of baseline keys (identical findings may legitimately repeat).
using Baseline = std::map<std::string, std::size_t>;

/// Parses a baseline file: `{"entries": [{"file":..., "rule":...,
/// "message":...}, ...]}`. A strict subset of JSON — unknown keys are
/// errors so typos cannot silently un-grandfather a finding.
bool LoadBaseline(const std::string& path, Baseline* baseline,
                  std::string* error);

struct BaselineDiff {
  std::vector<Violation> fresh;        ///< not grandfathered: fail
  std::size_t grandfathered = 0;       ///< matched an entry: tracked
  std::vector<std::string> stale;      ///< entry no longer emitted: fail
};

BaselineDiff DiffBaseline(const std::vector<Violation>& violations,
                          Baseline baseline);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_REPORT_H_
