#ifndef COPYATTACK_TOOLS_ANALYZE_LAYERS_H_
#define COPYATTACK_TOOLS_ANALYZE_LAYERS_H_

#include <map>
#include <string>
#include <vector>

/// The module layering contract, declared in tools/analyze/layers.toml and
/// enforced by the include-graph pass. The manifest is a TOML subset: `#`
/// comments, `[section]` headers, and single-line `key = ["a", "b"]` string
/// arrays — enough to be read by standard TOML tooling without this repo
/// growing a dependency on a real TOML parser.

namespace copyattack::analyze {

struct LayerContract {
  /// module -> modules its files may include from (directly). A module under
  /// src/ that is absent here is a violation: the contract must be total.
  std::map<std::string, std::vector<std::string>> modules;
  /// Modules allowed to depend on anything (tools, bench, tests, examples).
  std::vector<std::string> top_modules;
  /// Repo-relative headers includable from any module. Restricted to
  /// include-free headers (the include pass verifies this), so they can never
  /// smuggle in a layering edge. Exists for src/util/annotations.h, which
  /// leaf modules below util need without creating a util-cycle. Entries
  /// naming files absent from the scanned tree are flagged
  /// (layer-stale-pure-entry) so the exemption list cannot rot.
  std::vector<std::string> pure_headers;
  /// Path the contract was loaded from; stale-entry findings anchor here.
  std::string source_path;

  bool IsTopModule(const std::string& module) const;
  bool IsPureHeader(const std::string& rel_path) const;
  /// True if files in `from` may include files in `to` per the contract
  /// (same module, top module, or a declared edge).
  bool AllowsEdge(const std::string& from, const std::string& to) const;
};

/// Parses the manifest; returns false with `*error` set on malformed input.
bool LoadLayerContract(const std::string& path, LayerContract* contract,
                       std::string* error);

/// Parses manifest text (exposed for the unit tests).
bool ParseLayerContract(const std::string& text, LayerContract* contract,
                        std::string* error);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_LAYERS_H_
