#ifndef COPYATTACK_TOOLS_ANALYZE_LAYERS_H_
#define COPYATTACK_TOOLS_ANALYZE_LAYERS_H_

#include <map>
#include <string>
#include <vector>

/// The module layering contract, declared in tools/analyze/layers.toml and
/// enforced by the include-graph pass. The manifest is a TOML subset: `#`
/// comments, `[section]` headers, and single-line `key = ["a", "b"]` string
/// arrays — enough to be read by standard TOML tooling without this repo
/// growing a dependency on a real TOML parser.

namespace copyattack::analyze {

/// The metered-oracle contract ([oracle] section, optional): which classes
/// form the black-box decorator stack, which method names are its metered
/// entry points / decorator seams, and which modules/files are sanctioned
/// to talk to it directly. Absent section = oracle pass inert (fixture
/// trees and downstream users opt in explicitly).
struct OracleContract {
  bool configured = false;
  std::vector<std::string> classes;       ///< decorator-stack class names
  std::vector<std::string> entry_points;  ///< innermost metered methods
  std::vector<std::string> seam_methods;  ///< interface seam method names
  std::vector<std::string> allow_modules; ///< modules that may call directly
  std::vector<std::string> allow_files;   ///< rel paths that may call directly

  bool IsOracleClass(const std::string& name) const;
  bool IsEntryPoint(const std::string& name) const;
  bool IsSeamMethod(const std::string& name) const;
};

struct LayerContract {
  /// module -> modules its files may include from (directly). A module under
  /// src/ that is absent here is a violation: the contract must be total.
  std::map<std::string, std::vector<std::string>> modules;
  /// Modules allowed to depend on anything (tools, bench, tests, examples).
  std::vector<std::string> top_modules;
  /// Repo-relative headers includable from any module. Restricted to
  /// include-free headers (the include pass verifies this), so they can never
  /// smuggle in a layering edge. Exists for src/util/annotations.h, which
  /// leaf modules below util need without creating a util-cycle. Entries
  /// naming files absent from the scanned tree are flagged
  /// (layer-stale-pure-entry) so the exemption list cannot rot.
  std::vector<std::string> pure_headers;
  /// Path the contract was loaded from; stale-entry findings anchor here.
  std::string source_path;
  /// Optional [oracle] section (metered-oracle enforcement).
  OracleContract oracle;
  /// Optional [rng] stream_scoped entries: path prefixes of sharded /
  /// checkpointed campaign code where every util::Rng seed must come from
  /// util::DeriveStreamSeed or restored state. Empty = rng pass inert.
  std::vector<std::string> rng_stream_scoped;

  bool IsTopModule(const std::string& module) const;
  bool IsPureHeader(const std::string& rel_path) const;
  /// True if files in `from` may include files in `to` per the contract
  /// (same module, top module, or a declared edge).
  bool AllowsEdge(const std::string& from, const std::string& to) const;
};

/// Parses the manifest; returns false with `*error` set on malformed input.
bool LoadLayerContract(const std::string& path, LayerContract* contract,
                       std::string* error);

/// Parses manifest text (exposed for the unit tests).
bool ParseLayerContract(const std::string& text, LayerContract* contract,
                        std::string* error);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_LAYERS_H_
