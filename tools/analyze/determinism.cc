#include <set>
#include <string>

#include "analyze/passes.h"

namespace copyattack::analyze {

namespace {

bool IsStdRandomName(const std::string& text) {
  static const std::set<std::string> kNames = {
      "mt19937",
      "mt19937_64",
      "minstd_rand",
      "minstd_rand0",
      "default_random_engine",
      "ranlux24",
      "ranlux48",
      "ranlux24_base",
      "ranlux48_base",
      "knuth_b",
      "uniform_int_distribution",
      "uniform_real_distribution",
      "normal_distribution",
      "bernoulli_distribution",
      "binomial_distribution",
      "geometric_distribution",
      "poisson_distribution",
      "exponential_distribution",
      "gamma_distribution",
      "discrete_distribution",
      "piecewise_constant_distribution",
      "piecewise_linear_distribution",
  };
  return kNames.count(text) != 0;
}

/// util/rng owns the repo's only engine; its implementation is exempt from
/// every determinism rule (it is the sanctioned wrapper the rules steer
/// everyone else toward).
bool IsRngImplementation(const std::string& rel_path) {
  return rel_path == "src/util/rng.h" || rel_path == "src/util/rng.cc";
}

bool InAnyFunctionBody(const FileStructure& structure, std::size_t index) {
  for (const FunctionDef& def : structure.functions) {
    if (index > def.body_begin && index < def.body_end) return true;
  }
  return false;
}

/// True if any scanned file constructor-initializes member `name`
/// (`name(expr...)` or `name{expr...}` with a non-empty argument list) —
/// the evidence that a `util::Rng name;` member declaration is seeded.
bool MemberIsCtorInitialized(const SourceTree& tree,
                             const std::string& name) {
  for (const ScannedFile& file : tree.files) {
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier ||
          tokens[i].text != name) {
        continue;
      }
      const std::string& open = tokens[i + 1].text;
      const std::string& next = tokens[i + 2].text;
      if ((open == "(" && next != ")") || (open == "{" && next != "}")) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void RunDeterminismPass(const SourceTree& tree,
                        const std::vector<FileStructure>& structures,
                        std::vector<Violation>* violations) {
  for (std::size_t f = 0; f < tree.files.size(); ++f) {
    const ScannedFile& file = tree.files[f];
    if (IsRngImplementation(file.rel_path)) continue;
    const bool entropy_exempt = file.rel_path == "tests/test_seed.h";
    const bool in_src = file.rel_path.rfind("src/", 0) == 0;
    const std::vector<Token>& tokens = file.lexed.tokens;

    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;

      if (t.text == "random_device" && !entropy_exempt) {
        AddViolation(file, t.line, "det-raw-entropy",
                     "std::random_device is nondeterministic; seed from "
                     "config / tests::SeedForTest() instead",
                     violations);
        continue;
      }
      if (t.text == "time" && !entropy_exempt && i + 3 < tokens.size() &&
          tokens[i + 1].text == "(" && tokens[i + 3].text == ")" &&
          (tokens[i + 2].text == "nullptr" || tokens[i + 2].text == "NULL" ||
           tokens[i + 2].text == "0")) {
        AddViolation(file, t.line, "det-raw-entropy",
                     "wall-clock seeding (time(" + tokens[i + 2].text +
                         ")) is nondeterministic; use an explicit seed",
                     violations);
        continue;
      }
      if (IsStdRandomName(t.text)) {
        AddViolation(file, t.line, "det-std-engine",
                     "std::" + t.text +
                         " used directly; distribution results vary across "
                         "standard libraries — go through util::Rng",
                     violations);
        continue;
      }

      // util::Rng construction/parameter discipline, src/ only (tests may
      // build fixtures however they like).
      if (t.text != "Rng" || !in_src) continue;
      if (i >= 1 && tokens[i - 1].text == "::" && i >= 2 &&
          tokens[i - 2].text == "Rng") {
        continue;  // the Rng:: qualifier of an out-of-class definition
      }
      const bool in_body = InAnyFunctionBody(structures[f], i);
      if (i + 1 >= tokens.size()) continue;
      const Token& after = tokens[i + 1];

      if (after.kind == TokenKind::kIdentifier) {
        // `Rng name ...` — a declaration.
        if (i + 2 >= tokens.size()) continue;
        const std::string& tail = tokens[i + 2].text;
        if (tail == ";") {
          if (in_body) {
            AddViolation(file, t.line, "det-unseeded-rng",
                         "'" + after.text +
                             "' is default-constructed; every default Rng "
                             "shares one stream — pass an explicit seed",
                         violations);
          } else if (!MemberIsCtorInitialized(tree, after.text)) {
            AddViolation(file, t.line, "det-unseeded-rng",
                         "member '" + after.text +
                             "' is never constructor-initialized with a "
                             "seed",
                         violations);
          }
        } else if (tail == "{" && i + 3 < tokens.size() &&
                   tokens[i + 3].text == "}") {
          AddViolation(file, t.line, "det-unseeded-rng",
                       "'" + after.text +
                           "' is default-constructed ({}); pass an explicit "
                           "seed",
                       violations);
        } else if ((tail == "," || tail == ")") && !in_body) {
          AddViolation(file, t.line, "det-rng-by-value",
                       "parameter '" + after.text +
                           "' takes Rng by value, copying the stream; pass "
                           "Rng&",
                       violations);
        }
        continue;
      }
      if (in_body && after.text == "(" && i + 2 < tokens.size() &&
          tokens[i + 2].text == ")") {
        AddViolation(file, t.line, "det-unseeded-rng",
                     "temporary Rng() is default-constructed; pass an "
                     "explicit seed",
                     violations);
        continue;
      }
      if (in_body && after.text == "{" && i + 2 < tokens.size() &&
          tokens[i + 2].text == "}") {
        AddViolation(file, t.line, "det-unseeded-rng",
                     "temporary Rng{} is default-constructed; pass an "
                     "explicit seed",
                     violations);
      }
    }
  }
}

}  // namespace copyattack::analyze
