// copyattack-analyze: semantic static analysis for the copyattack tree.
//
//   copyattack-analyze --root=<repo> [--layers=<toml>] [--pass=a,b,...]
//                      [--format=text|json] [--exclude=<substr>]...
//                      [--list-rules] [target dirs...]
//
// Passes: include (module layering + cycles + IWYU-lite), thread
// (CA_GUARDED_BY / CA_REQUIRES / CA_ATOMIC_ONLY discipline), determinism
// (seed and RNG discipline). Default targets: src tools bench tests
// examples (whichever exist under the root). Exit codes: 0 clean,
// 1 violations, 2 usage/configuration error.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/analysis.h"
#include "analyze/layers.h"
#include "analyze/passes.h"
#include "analyze/structure.h"

namespace {

using namespace copyattack::analyze;  // tool entry point, not library code

struct Options {
  std::string root = ".";
  std::string layers_path;  // default: <root>/tools/analyze/layers.toml
  std::string format = "text";
  std::vector<std::string> passes;  // empty = all
  std::vector<std::string> excludes = {"tools/analyze/fixtures/",
                                       "tools/lint_selftest/"};
  std::vector<std::string> targets;
  bool list_rules = false;
};

bool TakeFlag(const std::string& arg, const std::string& name,
              std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

bool ParseArgs(int argc, char** argv, Options* options, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (TakeFlag(arg, "root", &options->root)) continue;
    if (TakeFlag(arg, "layers", &options->layers_path)) continue;
    if (TakeFlag(arg, "format", &options->format)) continue;
    if (TakeFlag(arg, "pass", &value)) {
      options->passes = SplitCsv(value);
      continue;
    }
    if (TakeFlag(arg, "exclude", &value)) {
      options->excludes.push_back(value);
      continue;
    }
    if (arg == "--list-rules") {
      options->list_rules = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      *error = "unknown flag: " + arg;
      return false;
    }
    options->targets.push_back(arg);
  }
  if (options->format != "text" && options->format != "json") {
    *error = "--format must be text or json";
    return false;
  }
  for (const std::string& pass : options->passes) {
    if (pass != "include" && pass != "thread" && pass != "determinism") {
      *error = "unknown pass: " + pass +
               " (expected include, thread, determinism)";
      return false;
    }
  }
  return true;
}

bool PassEnabled(const Options& options, const std::string& pass) {
  if (options.passes.empty()) return true;
  for (const std::string& enabled : options.passes) {
    if (enabled == pass) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::cerr << "copyattack-analyze: " << error << "\n";
    return 2;
  }

  if (options.list_rules) {
    for (const RuleInfo& rule : RuleCatalogue()) {
      std::cout << rule.id << " (" << rule.pass << "): " << rule.summary
                << "\n";
    }
    return 0;
  }

  if (options.targets.empty()) {
    for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
      std::error_code ec;
      if (std::filesystem::is_directory(
              std::filesystem::path(options.root) / dir, ec)) {
        options.targets.push_back(dir);
      }
    }
  }
  if (options.layers_path.empty()) {
    options.layers_path = options.root + "/tools/analyze/layers.toml";
    std::error_code ec;
    if (!std::filesystem::is_regular_file(options.layers_path, ec)) {
      // Fixture trees keep their manifest at the root.
      const std::string at_root = options.root + "/layers.toml";
      if (std::filesystem::is_regular_file(at_root, ec)) {
        options.layers_path = at_root;
      }
    }
  }

  LayerContract contract;
  if (!LoadLayerContract(options.layers_path, &contract, &error)) {
    std::cerr << "copyattack-analyze: " << error << "\n";
    return 2;
  }

  ScanOptions scan;
  scan.root = options.root;
  scan.targets = options.targets;
  scan.excludes = options.excludes;
  SourceTree tree;
  std::vector<Violation> violations;
  if (!ScanTree(scan, &tree, &violations, &error)) {
    std::cerr << "copyattack-analyze: " << error << "\n";
    return 2;
  }

  std::vector<FileStructure> structures;
  structures.reserve(tree.files.size());
  for (const ScannedFile& file : tree.files) {
    structures.push_back(ScanStructure(file.lexed));
  }

  std::vector<std::string> ran;
  if (PassEnabled(options, "include")) {
    RunIncludeGraphPass(tree, contract, structures, &violations);
    ran.push_back("include");
  }
  if (PassEnabled(options, "thread")) {
    RunThreadSafetyPass(tree, structures, &violations);
    ran.push_back("thread");
  }
  if (PassEnabled(options, "determinism")) {
    RunDeterminismPass(tree, structures, &violations);
    ran.push_back("determinism");
  }

  std::size_t count = 0;
  if (options.format == "json") {
    count = ReportJson(violations, ran, tree.files.size(), std::cout);
  } else {
    count = ReportText(violations, tree.files.size(), std::cout);
  }
  return count == 0 ? 0 : 1;
}
