// copyattack-analyze: semantic static analysis for the copyattack tree.
//
//   copyattack-analyze --root=<repo> [--layers=<toml>] [--pass=a,b,...]
//                      [--format=text|json|sarif] [--baseline=<json>]
//                      [--exclude=<substr>]... [--list-rules]
//                      [target dirs...]
//
// Passes: include (module layering + cycles + IWYU-lite), thread
// (CA_GUARDED_BY / CA_REQUIRES / CA_ATOMIC_ONLY discipline), determinism
// (seed and RNG discipline), checkpoint (CA_CHECKPOINTED save/load
// coverage), lockorder (CA_ACQUIRED_BEFORE acquisition graph), oracle
// (metered-oracle access via the call graph), hotpath (CA_HOT_PATH purity),
// rng (DeriveStreamSeed provenance in stream-scoped campaign code). The
// call graph is built once, on demand, when any graph-based pass runs; its
// resolution stats land in the JSON report. Default targets: src tools
// bench tests examples (whichever exist under the root). With --baseline,
// grandfathered findings do not fail the run but stale baseline entries
// do. Exit codes: 0 clean, 1 violations, 2 usage/configuration error.

#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/analysis.h"
#include "analyze/callgraph.h"
#include "analyze/layers.h"
#include "analyze/passes.h"
#include "analyze/report.h"
#include "analyze/structure.h"

namespace {

using namespace copyattack::analyze;  // tool entry point, not library code

/// The one registry of valid pass names: drives --pass validation (and its
/// error message) and PassEnabled, so the two can never drift apart.
constexpr const char* kPassNames[] = {
    "include", "thread", "determinism", "checkpoint",
    "lockorder", "oracle", "hotpath", "rng",
};

bool IsKnownPass(const std::string& pass) {
  for (const char* name : kPassNames) {
    if (pass == name) return true;
  }
  return false;
}

std::string KnownPassList() {
  std::string out;
  for (const char* name : kPassNames) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

struct Options {
  std::string root = ".";
  std::string layers_path;  // default: <root>/tools/analyze/layers.toml
  std::string format = "text";
  std::string baseline_path;  // empty = no baseline gating
  std::vector<std::string> passes;  // empty = all
  std::vector<std::string> excludes = {"tools/analyze/fixtures/",
                                       "tools/lint_selftest/"};
  std::vector<std::string> targets;
  bool list_rules = false;
};

bool TakeFlag(const std::string& arg, const std::string& name,
              std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

bool ParseArgs(int argc, char** argv, Options* options, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (TakeFlag(arg, "root", &options->root)) continue;
    if (TakeFlag(arg, "layers", &options->layers_path)) continue;
    if (TakeFlag(arg, "format", &options->format)) continue;
    if (TakeFlag(arg, "baseline", &options->baseline_path)) continue;
    if (TakeFlag(arg, "pass", &value)) {
      options->passes = SplitCsv(value);
      continue;
    }
    if (TakeFlag(arg, "exclude", &value)) {
      options->excludes.push_back(value);
      continue;
    }
    if (arg == "--list-rules") {
      options->list_rules = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      *error = "unknown flag: " + arg;
      return false;
    }
    options->targets.push_back(arg);
  }
  if (options->format != "text" && options->format != "json" &&
      options->format != "sarif") {
    *error = "--format must be text, json, or sarif";
    return false;
  }
  for (const std::string& pass : options->passes) {
    if (!IsKnownPass(pass)) {
      *error = "unknown pass: " + pass + " (expected " + KnownPassList() +
               ")";
      return false;
    }
  }
  return true;
}

bool PassEnabled(const Options& options, const std::string& pass) {
  if (options.passes.empty()) return true;
  for (const std::string& enabled : options.passes) {
    if (enabled == pass) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::cerr << "copyattack-analyze: " << error << "\n";
    return 2;
  }

  if (options.list_rules) {
    for (const RuleInfo& rule : RuleCatalogue()) {
      std::cout << rule.id << " (" << rule.pass << "): " << rule.summary
                << "\n";
    }
    return 0;
  }

  if (options.targets.empty()) {
    for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
      std::error_code ec;
      if (std::filesystem::is_directory(
              std::filesystem::path(options.root) / dir, ec)) {
        options.targets.push_back(dir);
      }
    }
  }
  if (options.layers_path.empty()) {
    options.layers_path = options.root + "/tools/analyze/layers.toml";
    std::error_code ec;
    if (!std::filesystem::is_regular_file(options.layers_path, ec)) {
      // Fixture trees keep their manifest at the root.
      const std::string at_root = options.root + "/layers.toml";
      if (std::filesystem::is_regular_file(at_root, ec)) {
        options.layers_path = at_root;
      }
    }
  }

  LayerContract contract;
  if (!LoadLayerContract(options.layers_path, &contract, &error)) {
    std::cerr << "copyattack-analyze: " << error << "\n";
    return 2;
  }

  ScanOptions scan;
  scan.root = options.root;
  scan.targets = options.targets;
  scan.excludes = options.excludes;
  SourceTree tree;
  std::vector<Violation> violations;
  if (!ScanTree(scan, &tree, &violations, &error)) {
    std::cerr << "copyattack-analyze: " << error << "\n";
    return 2;
  }

  std::vector<FileStructure> structures;
  structures.reserve(tree.files.size());
  for (const ScannedFile& file : tree.files) {
    structures.push_back(ScanStructure(file.lexed));
  }

  std::vector<PassTiming> timings;
  const auto timed = [&](const char* pass, auto&& run) {
    if (!PassEnabled(options, pass)) return;
    const auto start = std::chrono::steady_clock::now();
    run();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    timings.push_back({pass, elapsed.count()});
  };
  timed("include", [&] {
    RunIncludeGraphPass(tree, contract, structures, &violations);
  });
  timed("thread",
        [&] { RunThreadSafetyPass(tree, structures, &violations); });
  timed("determinism",
        [&] { RunDeterminismPass(tree, structures, &violations); });
  timed("checkpoint",
        [&] { RunCheckpointPass(tree, structures, &violations); });
  timed("lockorder",
        [&] { RunLockOrderPass(tree, structures, &violations); });

  // Graph-based passes (ISSUE 9). The call graph is built once, timed as
  // its own entry, and only when at least one of them is enabled.
  CallGraph graph;
  bool graph_built = false;
  const bool graph_wanted = PassEnabled(options, "oracle") ||
                            PassEnabled(options, "hotpath") ||
                            PassEnabled(options, "rng");
  if (graph_wanted) {
    const auto start = std::chrono::steady_clock::now();
    graph = BuildCallGraph(tree, structures);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    timings.push_back({"callgraph", elapsed.count()});
    graph_built = true;
  }
  timed("oracle",
        [&] { RunOracleAccessPass(tree, contract, graph, &violations); });
  timed("hotpath",
        [&] { RunHotPathPass(tree, graph, structures, &violations); });
  timed("rng", [&] {
    RunRngProvenancePass(tree, contract, graph, structures, &violations);
  });

  // With a baseline, grandfathered findings still appear in the report but
  // only fresh findings (and stale entries) decide the exit code.
  bool baseline_failed = false;
  std::size_t grandfathered = 0;
  if (!options.baseline_path.empty()) {
    Baseline baseline;
    if (!LoadBaseline(options.baseline_path, &baseline, &error)) {
      std::cerr << "copyattack-analyze: " << error << "\n";
      return 2;
    }
    BaselineDiff diff = DiffBaseline(violations, std::move(baseline));
    grandfathered = diff.grandfathered;
    baseline_failed = !diff.fresh.empty() || !diff.stale.empty();
    for (const std::string& key : diff.stale) {
      std::cerr << "copyattack-analyze: stale baseline entry (fixed? delete "
                   "it): "
                << key << "\n";
    }
  }

  std::size_t count = 0;
  if (options.format == "json") {
    count = ReportJson(violations, timings, tree.files.size(),
                       graph_built ? &graph.stats : nullptr, std::cout);
  } else if (options.format == "sarif") {
    count = ReportSarif(violations, std::cout);
  } else {
    count = ReportText(violations, tree.files.size(), std::cout);
  }
  if (!options.baseline_path.empty()) {
    std::cerr << "copyattack-analyze: baseline "
              << (baseline_failed ? "FAIL" : "ok") << " (" << grandfathered
              << " grandfathered)\n";
    return baseline_failed ? 1 : 0;
  }
  return count == 0 ? 0 : 1;
}
