#ifndef COPYATTACK_TOOLS_ANALYZE_CALLGRAPH_H_
#define COPYATTACK_TOOLS_ANALYZE_CALLGRAPH_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analyze/analysis.h"
#include "analyze/structure.h"

/// Call-graph construction over the tokenizer + scope scanner: the semantic
/// layer under the oracle-access, hot-path-purity and rng-provenance passes.
///
/// Nodes are the function *definitions* the structure scanner found across
/// the whole tree. Call sites are extracted from each body by matching
/// `name(`, `name<...>(`, `Qualifier::name(`, `recv.name(` / `recv->name(`
/// and `KnownClass var(args)` constructor shapes, then resolved against the
/// definition index through a small tier ladder (exact class+name match,
/// receiver typing from locals/parameters/members, virtual-dispatch
/// fan-out, unique-name fallback). Everything the ladder cannot place is
/// counted, not dropped: `CallGraphStats` separates *external* calls (no
/// in-tree definition — std::, libc, macros that lex like calls) from
/// *unresolved* ones (in-tree candidates exist but the receiver or overload
/// was ambiguous), so the soundness of every downstream pass is measurable
/// from the JSON report rather than assumed.

namespace copyattack::analyze {

/// One extracted call expression inside a function body.
struct CallSite {
  std::size_t line = 0;
  std::size_t token = 0;   ///< index of the callee-name token in its file
  std::string name;        ///< callee as spelled ("Query", "TopKPerRow")
  std::string qualifier;   ///< `Q` of `Q::name(`; empty otherwise
  std::string receiver;    ///< `r` of `r.name(` / `r->name(`; "this" incl.
  bool member_call = false;
  /// Resolved callee node ids. More than one means overload or virtual
  /// fan-out (every plausible target, by design — the passes built on the
  /// graph are reachability checks and must over- rather than under-
  /// approximate).
  std::vector<std::size_t> targets;
  /// Why resolution failed ("" when `targets` is non-empty or the call is
  /// external). Reported through the stats, and available to passes that
  /// want to surface their own blind spots.
  std::string why_unresolved;
  bool external = false;  ///< no in-tree definition matches the name
};

/// One function definition (a graph node).
struct CallGraphNode {
  std::size_t file_index = 0;      ///< into SourceTree::files / structures
  std::size_t function_index = 0;  ///< into FileStructure::functions
  std::string name;
  std::string class_name;  ///< empty for free functions
  std::size_t line = 0;
  bool hot_path = false;
  bool cold_ok = false;
  std::vector<CallSite> calls;
};

struct CallGraph {
  std::vector<CallGraphNode> nodes;
  /// Resolved edges, deduplicated: edges[n] = callee node ids.
  std::vector<std::vector<std::size_t>> edges;
  /// Reverse adjacency: reverse[n] = caller node ids.
  std::vector<std::vector<std::size_t>> reverse;
  CallGraphStats stats;

  static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

  /// "Class::Name" or "Name" — the spelling used in pass messages.
  std::string Display(std::size_t node) const;

  /// Root-relative path of the file defining `node`.
  const std::string& FileOf(const SourceTree& tree, std::size_t node) const;

  /// BFS from `roots` over `edges` (or `reverse`). Nodes where `barrier`
  /// returns true are *reached* (they appear in `parent`) but not expanded
  /// — the shape every pass needs for CA_COLD_OK / allowlist semantics.
  /// `parent[n]` is the predecessor node id (kNoNode for roots and
  /// unreached nodes); roots map to themselves.
  void Reach(const std::vector<std::size_t>& roots, bool use_reverse,
             const std::function<bool(std::size_t)>& barrier,
             std::vector<std::size_t>* parent) const;

  /// Walks `parent` back from `node` to its root, rendering up to `limit`
  /// hops as "Root -> ... -> Node" for violation messages.
  std::string PathFrom(const std::vector<std::size_t>& parent,
                       std::size_t node, std::size_t limit = 5) const;
};

/// Builds the graph. `structures` must be index-aligned with `tree.files`.
CallGraph BuildCallGraph(const SourceTree& tree,
                         const std::vector<FileStructure>& structures);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_CALLGRAPH_H_
