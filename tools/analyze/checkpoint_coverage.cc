#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/passes.h"

namespace copyattack::analyze {

namespace {

/// One serializer-body candidate for a CA_CHECKPOINTED type.
struct Candidate {
  std::size_t file = 0;
  const FunctionDef* def = nullptr;
};

std::string Spell(const std::string& qualifier, const std::string& name) {
  return qualifier.empty() ? name : qualifier + "::" + name;
}

/// First-occurrence order of `members` (as identifier tokens) inside the
/// function body. String literals are blanked by the lexer, so a member
/// name inside a log message or CSV header never counts as a reference.
std::vector<std::string> ReferenceOrder(const ScannedFile& file,
                                        const FunctionDef& def,
                                        const std::set<std::string>& members) {
  std::vector<std::string> order;
  std::set<std::string> seen;
  const std::vector<Token>& tokens = file.lexed.tokens;
  for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
    const Token& t = tokens[k];
    if (t.kind != TokenKind::kIdentifier || t.in_directive) continue;
    if (members.count(t.text) == 0) continue;
    if (seen.insert(t.text).second) order.push_back(t.text);
  }
  return order;
}

std::string JoinNames(const std::vector<std::string>& names) {
  if (names.empty()) return "(none)";
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Resolves a serializer name to a definition body. Qualified names
/// (`Owner::Fn`) match only methods of `Owner`; unqualified names prefer
/// methods of the annotated class itself, then free functions, then any
/// method. Within a tier the body referencing the most tracked members
/// wins — that is what picks the stream overload of SaveParameters over
/// the path-taking convenience overload, which references no member at
/// all. Ties break on (path, line) so reports are deterministic.
Candidate ResolveSerializer(const SourceTree& tree,
                            const std::vector<FileStructure>& structures,
                            const std::string& qualifier,
                            const std::string& name,
                            const std::string& own_class,
                            const std::set<std::string>& members) {
  std::vector<Candidate> same_class;
  std::vector<Candidate> free_fns;
  std::vector<Candidate> others;
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    for (const FunctionDef& def : structures[i].functions) {
      if (def.name != name || def.body_end <= def.body_begin) continue;
      if (!qualifier.empty()) {
        if (def.class_name == qualifier) others.push_back({i, &def});
        continue;
      }
      if (def.class_name == own_class) {
        same_class.push_back({i, &def});
      } else if (def.class_name.empty()) {
        free_fns.push_back({i, &def});
      } else {
        others.push_back({i, &def});
      }
    }
  }
  const std::vector<Candidate>* tier = &others;
  if (qualifier.empty()) {
    if (!same_class.empty()) {
      tier = &same_class;
    } else if (!free_fns.empty()) {
      tier = &free_fns;
    }
  }

  Candidate best;
  std::size_t best_count = 0;
  for (const Candidate& cand : *tier) {
    const std::size_t count =
        ReferenceOrder(tree.files[cand.file], *cand.def, members).size();
    bool better = best.def == nullptr || count > best_count;
    if (!better && count == best_count) {
      const std::string& best_path = tree.files[best.file].rel_path;
      const std::string& cand_path = tree.files[cand.file].rel_path;
      better = cand_path < best_path ||
               (cand_path == best_path && cand.def->line < best.def->line);
    }
    if (better) {
      best = cand;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

void RunCheckpointPass(const SourceTree& tree,
                       const std::vector<FileStructure>& structures,
                       std::vector<Violation>* violations) {
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const ScannedFile& decl_file = tree.files[i];
    for (const CheckpointedType& type : structures[i].checkpointed_types) {
      // The members of an annotated type sit in the same file as the
      // annotation (the class body follows the head), so pairing by
      // (file, class name) cannot cross-talk between same-named nested
      // types in different headers.
      std::vector<const FieldDecl*> fields;
      std::set<std::string> tracked;
      for (const FieldDecl& field : structures[i].checkpoint_fields) {
        if (field.class_name != type.class_name) continue;
        fields.push_back(&field);
        if (!field.exempt) tracked.insert(field.field_name);
      }
      if (tracked.empty()) continue;  // nothing checkable

      const std::string save_spelled =
          Spell(type.save_qualifier, type.save_name);
      const std::string load_spelled =
          Spell(type.load_qualifier, type.load_name);
      const Candidate save =
          ResolveSerializer(tree, structures, type.save_qualifier,
                            type.save_name, type.class_name, tracked);
      const Candidate load =
          ResolveSerializer(tree, structures, type.load_qualifier,
                            type.load_name, type.class_name, tracked);
      if (save.def == nullptr) {
        AddViolation(decl_file, type.line, "ckpt-no-serializer",
                     "CA_CHECKPOINTED type '" + type.class_name +
                         "' names save serializer '" + save_spelled +
                         "' but no definition was found in the tree",
                     violations);
      }
      if (load.def == nullptr) {
        AddViolation(decl_file, type.line, "ckpt-no-serializer",
                     "CA_CHECKPOINTED type '" + type.class_name +
                         "' names load serializer '" + load_spelled +
                         "' but no definition was found in the tree",
                     violations);
      }
      if (save.def == nullptr || load.def == nullptr) continue;

      const std::vector<std::string> save_order =
          ReferenceOrder(tree.files[save.file], *save.def, tracked);
      const std::vector<std::string> load_order =
          ReferenceOrder(tree.files[load.file], *load.def, tracked);
      const std::set<std::string> in_save(save_order.begin(),
                                          save_order.end());
      const std::set<std::string> in_load(load_order.begin(),
                                          load_order.end());

      for (const FieldDecl* field : fields) {
        if (field->exempt) continue;
        const bool saved = in_save.count(field->field_name) != 0;
        const bool loaded = in_load.count(field->field_name) != 0;
        if (saved && loaded) continue;
        std::string where;
        if (!saved) where += "save '" + save_spelled + "'";
        if (!loaded) {
          if (!where.empty()) where += " or ";
          where += "load '" + load_spelled + "'";
        }
        AddViolation(decl_file, field->line, "ckpt-missing-member",
                     "member '" + field->field_name +
                         "' of CA_CHECKPOINTED type '" + type.class_name +
                         "' is not referenced in " + where +
                         "; serialize it or mark it "
                         "CA_NOT_CHECKPOINTED(reason)",
                     violations);
      }

      // Order check over the members both bodies reference (missing ones
      // are already reported above; re-flagging them here would double
      // count a single omission).
      std::vector<std::string> save_common;
      std::vector<std::string> load_common;
      for (const std::string& name : save_order) {
        if (in_load.count(name) != 0) save_common.push_back(name);
      }
      for (const std::string& name : load_order) {
        if (in_save.count(name) != 0) load_common.push_back(name);
      }
      if (save_common != load_common) {
        AddViolation(
            tree.files[save.file], save.def->line, "ckpt-order-mismatch",
            "type '" + type.class_name + "': save '" + save_spelled +
                "' references members in order [" + JoinNames(save_common) +
                "] but load '" + load_spelled + "' uses [" +
                JoinNames(load_common) +
                "]; streams replay byte-for-byte, so the orders must match",
            violations);
      }
    }
  }
}

}  // namespace copyattack::analyze
