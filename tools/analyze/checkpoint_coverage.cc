#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/passes.h"

namespace copyattack::analyze {

namespace {

/// One serializer-body candidate for a CA_CHECKPOINTED type.
struct Candidate {
  std::size_t file = 0;
  const FunctionDef* def = nullptr;
};

std::string Spell(const std::string& qualifier, const std::string& name) {
  return qualifier.empty() ? name : qualifier + "::" + name;
}

/// First-occurrence order of `members` (as identifier tokens) inside the
/// function body. String literals are blanked by the lexer, so a member
/// name inside a log message or CSV header never counts as a reference.
std::vector<std::string> ReferenceOrder(const ScannedFile& file,
                                        const FunctionDef& def,
                                        const std::set<std::string>& members) {
  std::vector<std::string> order;
  std::set<std::string> seen;
  const std::vector<Token>& tokens = file.lexed.tokens;
  for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
    const Token& t = tokens[k];
    if (t.kind != TokenKind::kIdentifier || t.in_directive) continue;
    if (members.count(t.text) == 0) continue;
    if (seen.insert(t.text).second) order.push_back(t.text);
  }
  return order;
}

std::string JoinNames(const std::vector<std::string>& names) {
  if (names.empty()) return "(none)";
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Resolves a serializer name to a definition body. Qualified names
/// (`Owner::Fn`) match only methods of `Owner`; unqualified names prefer
/// methods of the annotated class itself, then free functions, then any
/// method. Within a tier the body referencing the most tracked members
/// wins — that is what picks the stream overload of SaveParameters over
/// the path-taking convenience overload, which references no member at
/// all. Ties break on (path, line) so reports are deterministic.
Candidate ResolveSerializer(const SourceTree& tree,
                            const std::vector<FileStructure>& structures,
                            const std::string& qualifier,
                            const std::string& name,
                            const std::string& own_class,
                            const std::set<std::string>& members) {
  std::vector<Candidate> same_class;
  std::vector<Candidate> free_fns;
  std::vector<Candidate> others;
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    for (const FunctionDef& def : structures[i].functions) {
      if (def.name != name || def.body_end <= def.body_begin) continue;
      if (!qualifier.empty()) {
        if (def.class_name == qualifier) others.push_back({i, &def});
        continue;
      }
      if (def.class_name == own_class) {
        same_class.push_back({i, &def});
      } else if (def.class_name.empty()) {
        free_fns.push_back({i, &def});
      } else {
        others.push_back({i, &def});
      }
    }
  }
  const std::vector<Candidate>* tier = &others;
  if (qualifier.empty()) {
    if (!same_class.empty()) {
      tier = &same_class;
    } else if (!free_fns.empty()) {
      tier = &free_fns;
    }
  }

  Candidate best;
  std::size_t best_count = 0;
  for (const Candidate& cand : *tier) {
    const std::size_t count =
        ReferenceOrder(tree.files[cand.file], *cand.def, members).size();
    bool better = best.def == nullptr || count > best_count;
    if (!better && count == best_count) {
      const std::string& best_path = tree.files[best.file].rel_path;
      const std::string& cand_path = tree.files[cand.file].rel_path;
      better = cand_path < best_path ||
               (cand_path == best_path && cand.def->line < best.def->line);
    }
    if (better) {
      best = cand;
      best_count = count;
    }
  }
  return best;
}

/// All three phases of the checkpoint rotation, in write order
/// (core::SaveCampaignCheckpoint, DESIGN.md §16). A body that
/// crash-instruments the checkpoint write path must enumerate every one
/// — a skipped phase is a crash window the soak can never schedule.
const char* const kRotationPhases[] = {"checkpoint.pre_temp_write",
                                       "checkpoint.pre_rotate",
                                       "checkpoint.pre_rename"};

/// Extracts the quoted site names of `CA_CRASH_POINT("...")` calls in
/// `def`'s body. The macro occurrences are located through the token
/// stream (so `#define CA_CRASH_POINT(...)` and commented-out calls
/// never count), but the site names are read back from the raw
/// `content` because the tokenizer blanks string-literal interiors.
std::vector<std::string> CrashSitesInBody(const ScannedFile& file,
                                          const FunctionDef& def) {
  std::vector<std::string> sites;
  const std::vector<Token>& tokens = file.lexed.tokens;
  if (def.body_end <= def.body_begin || def.body_end >= tokens.size()) {
    return sites;
  }
  std::set<std::size_t> lines;
  for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
    const Token& t = tokens[k];
    if (t.kind == TokenKind::kIdentifier && !t.in_directive &&
        t.text == "CA_CRASH_POINT") {
      lines.insert(t.line);
    }
  }
  if (lines.empty()) return sites;
  const std::string& content = file.lexed.content;
  std::size_t line_no = 1;
  std::size_t begin = 0;
  for (std::size_t pos = 0; pos <= content.size(); ++pos) {
    if (pos != content.size() && content[pos] != '\n') continue;
    if (lines.count(line_no) != 0) {
      const std::string line = content.substr(begin, pos - begin);
      std::size_t at = 0;
      while ((at = line.find("CA_CRASH_POINT", at)) != std::string::npos) {
        at += sizeof("CA_CRASH_POINT") - 1;
        const std::size_t open = line.find('"', at);
        if (open == std::string::npos) break;
        const std::size_t close = line.find('"', open + 1);
        if (close == std::string::npos) break;
        sites.push_back(line.substr(open + 1, close - open - 1));
        at = close + 1;
      }
    }
    begin = pos + 1;
    ++line_no;
  }
  return sites;
}

}  // namespace

void RunCheckpointPass(const SourceTree& tree,
                       const std::vector<FileStructure>& structures,
                       std::vector<Violation>* violations) {
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const ScannedFile& decl_file = tree.files[i];
    for (const CheckpointedType& type : structures[i].checkpointed_types) {
      // The members of an annotated type sit in the same file as the
      // annotation (the class body follows the head), so pairing by
      // (file, class name) cannot cross-talk between same-named nested
      // types in different headers.
      std::vector<const FieldDecl*> fields;
      std::set<std::string> tracked;
      for (const FieldDecl& field : structures[i].checkpoint_fields) {
        if (field.class_name != type.class_name) continue;
        fields.push_back(&field);
        if (!field.exempt) tracked.insert(field.field_name);
      }
      if (tracked.empty()) continue;  // nothing checkable

      const std::string save_spelled =
          Spell(type.save_qualifier, type.save_name);
      const std::string load_spelled =
          Spell(type.load_qualifier, type.load_name);
      const Candidate save =
          ResolveSerializer(tree, structures, type.save_qualifier,
                            type.save_name, type.class_name, tracked);
      const Candidate load =
          ResolveSerializer(tree, structures, type.load_qualifier,
                            type.load_name, type.class_name, tracked);
      if (save.def == nullptr) {
        AddViolation(decl_file, type.line, "ckpt-no-serializer",
                     "CA_CHECKPOINTED type '" + type.class_name +
                         "' names save serializer '" + save_spelled +
                         "' but no definition was found in the tree",
                     violations);
      }
      if (load.def == nullptr) {
        AddViolation(decl_file, type.line, "ckpt-no-serializer",
                     "CA_CHECKPOINTED type '" + type.class_name +
                         "' names load serializer '" + load_spelled +
                         "' but no definition was found in the tree",
                     violations);
      }
      if (save.def == nullptr || load.def == nullptr) continue;

      const std::vector<std::string> save_order =
          ReferenceOrder(tree.files[save.file], *save.def, tracked);
      const std::vector<std::string> load_order =
          ReferenceOrder(tree.files[load.file], *load.def, tracked);
      const std::set<std::string> in_save(save_order.begin(),
                                          save_order.end());
      const std::set<std::string> in_load(load_order.begin(),
                                          load_order.end());

      for (const FieldDecl* field : fields) {
        if (field->exempt) continue;
        const bool saved = in_save.count(field->field_name) != 0;
        const bool loaded = in_load.count(field->field_name) != 0;
        if (saved && loaded) continue;
        std::string where;
        if (!saved) where += "save '" + save_spelled + "'";
        if (!loaded) {
          if (!where.empty()) where += " or ";
          where += "load '" + load_spelled + "'";
        }
        AddViolation(decl_file, field->line, "ckpt-missing-member",
                     "member '" + field->field_name +
                         "' of CA_CHECKPOINTED type '" + type.class_name +
                         "' is not referenced in " + where +
                         "; serialize it or mark it "
                         "CA_NOT_CHECKPOINTED(reason)",
                     violations);
      }

      // Order check over the members both bodies reference (missing ones
      // are already reported above; re-flagging them here would double
      // count a single omission).
      std::vector<std::string> save_common;
      std::vector<std::string> load_common;
      for (const std::string& name : save_order) {
        if (in_load.count(name) != 0) save_common.push_back(name);
      }
      for (const std::string& name : load_order) {
        if (in_save.count(name) != 0) load_common.push_back(name);
      }
      if (save_common != load_common) {
        AddViolation(
            tree.files[save.file], save.def->line, "ckpt-order-mismatch",
            "type '" + type.class_name + "': save '" + save_spelled +
                "' references members in order [" + JoinNames(save_common) +
                "] but load '" + load_spelled + "' uses [" +
                JoinNames(load_common) +
                "]; streams replay byte-for-byte, so the orders must match",
            violations);
      }
    }
  }

  // Crash-phase discipline (ISSUE 10): a function that marks ANY
  // `checkpoint.*` crash point is instrumenting the checkpoint write
  // path and must enumerate all three rotation phases, so a new
  // serializer cannot ship with a crash window the soak never exercises.
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const ScannedFile& file = tree.files[i];
    for (const FunctionDef& def : structures[i].functions) {
      const std::vector<std::string> sites = CrashSitesInBody(file, def);
      bool in_checkpoint_path = false;
      for (const std::string& site : sites) {
        if (site.rfind("checkpoint.", 0) == 0) {
          in_checkpoint_path = true;
          break;
        }
      }
      if (!in_checkpoint_path) continue;
      const std::set<std::string> have(sites.begin(), sites.end());
      std::vector<std::string> missing;
      for (const char* phase : kRotationPhases) {
        if (have.count(phase) == 0) missing.push_back(phase);
      }
      if (missing.empty()) continue;
      AddViolation(
          file, def.line, "ckpt-crash-phase",
          "function '" + def.name +
              "' marks checkpoint.* crash points but omits rotation "
              "phase(s) [" +
              JoinNames(missing) +
              "]; the checkpoint write path must enumerate "
              "pre_temp_write, pre_rotate and pre_rename so the chaos "
              "soak can kill inside every window",
          violations);
    }
  }
}

}  // namespace copyattack::analyze
