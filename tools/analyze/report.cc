#include "analyze/report.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace copyattack::analyze {

namespace {

/// Minimal JSON reader for the baseline schema. Handles objects, arrays,
/// strings with standard escapes, and skips insignificant whitespace —
/// nothing else, because the baseline writer (a human with an editor, or
/// a jq one-liner over the JSON report) never produces anything else.
class BaselineParser {
 public:
  explicit BaselineParser(const std::string& text) : text_(text) {}

  bool Parse(Baseline* baseline, std::string* error) {
    SkipSpace();
    if (!Expect('{', error)) return false;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return AtEnd(error);
    }
    std::string key;
    if (!ParseString(&key, error)) return false;
    if (key != "entries") {
      *error = "expected top-level key \"entries\", got \"" + key + "\"";
      return false;
    }
    SkipSpace();
    if (!Expect(':', error)) return false;
    SkipSpace();
    if (!Expect('[', error)) return false;
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
    } else {
      while (true) {
        if (!ParseEntry(baseline, error)) return false;
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          SkipSpace();
          continue;
        }
        if (!Expect(']', error)) return false;
        break;
      }
    }
    SkipSpace();
    if (!Expect('}', error)) return false;
    return AtEnd(error);
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Expect(char c, std::string* error) {
    if (Peek() != c) {
      *error = std::string("expected '") + c + "' at offset " +
               std::to_string(pos_);
      return false;
    }
    ++pos_;
    return true;
  }

  bool AtEnd(std::string* error) {
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    SkipSpace();
    if (!Expect('"', error)) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            *error = "truncated \\u escape";
            return false;
          }
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value |= static_cast<unsigned>(h - 'A' + 10);
            else {
              *error = "bad \\u escape";
              return false;
            }
          }
          // The reporter only ever escapes control bytes, so a plain
          // narrow append is lossless for everything it round-trips.
          *out += static_cast<char>(value & 0xFF);
          break;
        }
        default:
          *error = std::string("unsupported escape \\") + esc;
          return false;
      }
    }
    *error = "unterminated string";
    return false;
  }

  bool ParseEntry(Baseline* baseline, std::string* error) {
    SkipSpace();
    if (!Expect('{', error)) return false;
    std::string file;
    std::string rule;
    std::string message;
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first && !Expect(',', error)) return false;
      first = false;
      std::string key;
      std::string value;
      if (!ParseString(&key, error)) return false;
      SkipSpace();
      if (!Expect(':', error)) return false;
      if (!ParseString(&value, error)) return false;
      if (key == "file") file = value;
      else if (key == "rule") rule = value;
      else if (key == "message") message = value;
      else {
        *error = "unknown baseline entry key \"" + key + "\"";
        return false;
      }
      SkipSpace();
      if (Peek() == ',') continue;
    }
    if (file.empty() || rule.empty()) {
      *error = "baseline entry needs non-empty \"file\" and \"rule\"";
      return false;
    }
    Violation v{file, 0, rule, message};
    ++(*baseline)[BaselineKey(v)];
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t ReportSarif(const std::vector<Violation>& violations,
                        std::ostream& out) {
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"copyattack-analyze\",\n"
      << "          \"informationUri\": "
         "\"https://arxiv.org/abs/2005.08147\",\n"
      << "          \"rules\": [";
  const std::vector<RuleInfo>& rules = RuleCatalogue();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i ? "," : "") << "\n            {\"id\": \""
        << JsonEscape(rules[i].id) << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}, \"properties\": {\"pass\": \""
        << JsonEscape(rules[i].pass) << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    // SARIF regions are 1-based; `io` findings carry line 0 (whole file).
    const std::size_t line = v.line == 0 ? 1 : v.line;
    out << (i ? "," : "") << "\n        {\"ruleId\": \""
        << JsonEscape(v.rule) << "\", \"level\": \"error\", "
        << "\"message\": {\"text\": \"" << JsonEscape(v.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << JsonEscape(v.file)
        << "\"}, \"region\": {\"startLine\": " << line << "}}}]}";
  }
  out << "\n      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return violations.size();
}

std::string BaselineKey(const Violation& violation) {
  return violation.file + "|" + violation.rule + "|" + violation.message;
}

bool LoadBaseline(const std::string& path, Baseline* baseline,
                  std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open baseline: " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  BaselineParser parser(text);
  if (!parser.Parse(baseline, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

BaselineDiff DiffBaseline(const std::vector<Violation>& violations,
                          Baseline baseline) {
  BaselineDiff diff;
  for (const Violation& v : violations) {
    const auto it = baseline.find(BaselineKey(v));
    if (it != baseline.end() && it->second > 0) {
      --it->second;
      ++diff.grandfathered;
    } else {
      diff.fresh.push_back(v);
    }
  }
  for (const auto& [key, remaining] : baseline) {
    for (std::size_t k = 0; k < remaining; ++k) diff.stale.push_back(key);
  }
  return diff;
}

}  // namespace copyattack::analyze
