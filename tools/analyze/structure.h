#ifndef COPYATTACK_TOOLS_ANALYZE_STRUCTURE_H_
#define COPYATTACK_TOOLS_ANALYZE_STRUCTURE_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analyze/tokenizer.h"

/// A heuristic scope scanner over the token stream: tracks namespace /
/// class / function / block nesting by brace matching and classifies each
/// `{` from the declaration tokens preceding it. It deliberately errs
/// toward missing a construct rather than misreading one — the passes
/// built on it must not produce false positives on a clean tree, and the
/// WILL_FAIL fixtures pin that every rule still fires.

namespace copyattack::analyze {

/// One function (or method) definition with its brace-delimited body.
struct FunctionDef {
  std::string name;        ///< unqualified name ("Submit", "ThreadPool")
  std::string class_name;  ///< from a qualifier or enclosing class; "" free
  bool is_ctor = false;
  bool is_dtor = false;
  std::size_t line = 0;        ///< line of the body's opening brace
  std::size_t head_begin = 0;  ///< first token index of the declaration head
  std::size_t body_begin = 0;  ///< token index of `{`
  std::size_t body_end = 0;    ///< token index of matching `}` (exclusive
                               ///< range is [body_begin + 1, body_end))
  /// Mutexes named in CA_REQUIRES(...) on this definition's head.
  std::vector<std::string> requires_mutexes;
  /// Head carried CA_HOT_PATH: a root of the hot-path purity walk.
  bool hot_path = false;
  /// Head carried CA_COLD_OK(reason): reached but never scanned/expanded.
  bool cold_ok = false;
};

/// A field carrying a CA_GUARDED_BY or CA_ATOMIC_ONLY annotation.
struct AnnotatedField {
  std::string class_name;
  std::string field_name;
  std::string mutex_name;  ///< empty for CA_ATOMIC_ONLY
  bool atomic_only = false;
  bool type_has_atomic = false;  ///< declared type mentions `atomic`
  std::size_t line = 0;
};

/// A CA_REQUIRES(...) on an in-class method declaration (no body here).
struct MethodRequires {
  std::string class_name;
  std::string method_name;
  std::vector<std::string> mutexes;
};

/// One non-static data member of a class whose head carried
/// CA_CHECKPOINTED. Harvested by the field-extraction layer; `exempt` is
/// set when the declaration trails a CA_NOT_CHECKPOINTED(reason).
struct FieldDecl {
  std::string class_name;
  std::string field_name;
  bool exempt = false;
  std::size_t line = 0;
};

/// A type marked CA_CHECKPOINTED(save, load) — the checkpoint pass checks
/// its members against the named serializer bodies. Names may be qualified
/// (`Owner::Fn`), split here into qualifier + unqualified name; empty
/// argument list defaults to SaveState/LoadState.
struct CheckpointedType {
  std::string class_name;
  std::string save_qualifier;  ///< empty = unqualified
  std::string save_name;
  std::string load_qualifier;
  std::string load_name;
  std::size_t line = 0;
};

/// A mutex member annotated CA_ACQUIRED_BEFORE(...). `before` lists the
/// declared successors as written (bare or `Class::member`); empty means
/// tracked-only (leaf of the declared order).
struct MutexOrder {
  std::string class_name;
  std::string mutex_name;
  std::vector<std::string> before;
  std::size_t line = 0;
};

struct FileStructure {
  std::vector<FunctionDef> functions;
  std::vector<AnnotatedField> fields;
  std::vector<MethodRequires> declared_requires;
  std::vector<FieldDecl> checkpoint_fields;
  std::vector<CheckpointedType> checkpointed_types;
  std::vector<MutexOrder> mutex_orders;
  /// Names this file makes available to includers: macro names, type names
  /// (definitions and forward declarations), enumerators, aliases, and
  /// namespace/class-scope entity names. Used by the IWYU-lite check; kept
  /// deliberately generous so that check under-reports rather than flags a
  /// header that is genuinely used.
  std::set<std::string> exported;
  /// Every class/struct/union this file *defines* (a brace body was seen),
  /// including pure interfaces with no method definitions. The call-graph
  /// builder needs these to type receivers declared as interface pointers.
  std::set<std::string> classes;
};

FileStructure ScanStructure(const LexedFile& file);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_STRUCTURE_H_
