#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "analyze/passes.h"

namespace copyattack::analyze {

namespace {

struct IncludeEdge {
  std::size_t from = 0;  ///< index into tree.files
  std::size_t to = 0;
  std::size_t line = 0;
};

std::string DirOf(const std::string& rel_path) {
  const std::size_t slash = rel_path.rfind('/');
  return slash == std::string::npos ? "" : rel_path.substr(0, slash);
}

std::string StripExtension(const std::string& rel_path) {
  const std::size_t dot = rel_path.rfind('.');
  return dot == std::string::npos ? rel_path : rel_path.substr(0, dot);
}

/// Resolves a quoted include spelling against the tree: project headers are
/// spelled src-relative ("util/rng.h"); includer-relative and root-relative
/// spellings are accepted as fallbacks.
std::size_t Resolve(const std::map<std::string, std::size_t>& by_rel_path,
                    const std::string& includer_dir,
                    const std::string& spelling) {
  const std::string candidates[] = {
      "src/" + spelling,
      includer_dir.empty() ? spelling : includer_dir + "/" + spelling,
      spelling,
  };
  for (const std::string& candidate : candidates) {
    const auto it = by_rel_path.find(candidate);
    if (it != by_rel_path.end()) return it->second;
  }
  return static_cast<std::size_t>(-1);
}

/// Exported names provided transitively by file `index` (its own exports
/// plus everything reachable through its project includes). Memoized;
/// `visiting` guards against include cycles (reported separately).
const std::set<std::string>& ProvidedNames(
    std::size_t index, const std::vector<std::vector<std::size_t>>& adjacency,
    const std::vector<FileStructure>& structures,
    std::vector<std::set<std::string>>* memo, std::vector<int>* state) {
  std::set<std::string>& provided = (*memo)[index];
  if ((*state)[index] != 0) return provided;  // done or on the current path
  (*state)[index] = 1;
  provided = structures[index].exported;
  for (const std::size_t next : adjacency[index]) {
    const std::set<std::string>& below =
        ProvidedNames(next, adjacency, structures, memo, state);
    provided.insert(below.begin(), below.end());
  }
  (*state)[index] = 2;
  return provided;
}

void FindCycles(const SourceTree& tree,
                const std::vector<std::vector<IncludeEdge>>& out_edges,
                std::vector<Violation>* violations) {
  // Iterative DFS with a path stack; each back edge closes one cycle,
  // reported at the back edge's include line and deduplicated by the
  // canonical (rotation-normalized) member list.
  const std::size_t n = tree.files.size();
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on path, 2 done
  std::vector<std::size_t> path;
  std::set<std::string> reported;

  struct Frame {
    std::size_t node;
    std::size_t next_edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<Frame> stack{{root, 0}};
    state[root] = 1;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& edges = out_edges[frame.node];
      if (frame.next_edge >= edges.size()) {
        state[frame.node] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge edge = edges[frame.next_edge++];
      if (state[edge.to] == 1) {
        // Reconstruct the cycle from the path suffix starting at edge.to.
        const auto begin =
            std::find(path.begin(), path.end(), edge.to);
        std::vector<std::size_t> cycle(begin, path.end());
        std::string canonical;
        {
          // Rotate so the lexicographically smallest member leads.
          std::size_t pivot = 0;
          for (std::size_t k = 1; k < cycle.size(); ++k) {
            if (tree.files[cycle[k]].rel_path <
                tree.files[cycle[pivot]].rel_path) {
              pivot = k;
            }
          }
          std::rotate(cycle.begin(), cycle.begin() + pivot, cycle.end());
          for (const std::size_t member : cycle) {
            canonical += tree.files[member].rel_path + ";";
          }
        }
        if (reported.insert(canonical).second) {
          std::string message = "include cycle: ";
          for (const std::size_t member : cycle) {
            message += tree.files[member].rel_path + " -> ";
          }
          message += tree.files[cycle.front()].rel_path;
          AddViolation(tree.files[edge.from], edge.line, "layer-cycle",
                       std::move(message), violations);
        }
        continue;
      }
      if (state[edge.to] == 0) {
        state[edge.to] = 1;
        path.push_back(edge.to);
        stack.push_back(Frame{edge.to, 0});
      }
    }
  }
}

}  // namespace

void RunIncludeGraphPass(const SourceTree& tree,
                         const LayerContract& contract,
                         const std::vector<FileStructure>& structures,
                         std::vector<Violation>* violations) {
  const std::size_t n = tree.files.size();
  std::map<std::string, std::size_t> by_rel_path;
  for (std::size_t i = 0; i < n; ++i) by_rel_path[tree.files[i].rel_path] = i;

  std::vector<std::vector<IncludeEdge>> out_edges(n);
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ScannedFile& file = tree.files[i];
    const std::string dir = DirOf(file.rel_path);
    for (const Token& token : file.lexed.tokens) {
      if (token.kind != TokenKind::kIncludePath || token.angled) continue;
      const std::size_t target = Resolve(by_rel_path, dir, token.text);
      if (target == static_cast<std::size_t>(-1)) continue;  // external
      out_edges[i].push_back(IncludeEdge{i, target, token.line});
      adjacency[i].push_back(target);
    }
  }

  // Layering contract.
  std::set<std::string> unknown_reported;
  for (std::size_t i = 0; i < n; ++i) {
    const ScannedFile& from = tree.files[i];
    const std::string from_module = ModuleOf(from.rel_path);
    const bool from_known = from_module.empty() ||
                            contract.modules.count(from_module) != 0 ||
                            contract.IsTopModule(from_module);
    if (!from_known && unknown_reported.insert(from_module).second) {
      AddViolation(from, 1, "layer-unknown-module",
                   "module '" + from_module +
                       "' is not declared in layers.toml ([modules] or "
                       "[top]); the layering contract must be total",
                   violations);
    }
    for (const IncludeEdge& edge : out_edges[i]) {
      const ScannedFile& to = tree.files[edge.to];
      if (contract.IsPureHeader(to.rel_path)) continue;
      const std::string to_module = ModuleOf(to.rel_path);
      if (!from_known || from_module.empty() || to_module.empty()) continue;
      if (!contract.AllowsEdge(from_module, to_module)) {
        AddViolation(from, edge.line, "layer-undeclared-edge",
                     "module '" + from_module + "' may not include '" +
                         to.rel_path + "' (" + from_module + " -> " +
                         to_module + " is not declared in layers.toml)",
                     violations);
      }
    }
  }

  // Every pure_headers entry must name a file in the scanned tree; a stale
  // entry is a standing layering exemption for a path someone could later
  // reintroduce with includes. No AddViolation: there is no ScannedFile to
  // carry an allow-comment, and the finding anchors to the manifest itself.
  for (const std::string& entry : contract.pure_headers) {
    if (by_rel_path.count(entry) != 0) continue;
    violations->push_back(
        {contract.source_path.empty() ? std::string("layers.toml")
                                      : contract.source_path,
         1, "layer-stale-pure-entry",
         "pure_headers entry '" + entry +
             "' names no file in the scanned tree (entries are "
             "repo-relative, e.g. src/util/annotations.h)"});
  }

  // Pure headers must be include-free — that is what makes them safe to
  // exempt from layering.
  for (std::size_t i = 0; i < n; ++i) {
    const ScannedFile& file = tree.files[i];
    if (!contract.IsPureHeader(file.rel_path)) continue;
    for (const Token& token : file.lexed.tokens) {
      if (token.kind != TokenKind::kIncludePath) continue;
      AddViolation(file, token.line, "layer-impure-header",
                   "pure header includes '" + token.text +
                       "'; pure_headers entries must be include-free",
                   violations);
    }
  }

  FindCycles(tree, out_edges, violations);

  // IWYU-lite over src/: a quoted project include none of whose provided
  // names appear in the includer is dead weight. The provided set is
  // transitive and the export extraction generous, so this under-reports
  // rather than flags legitimate includes.
  std::vector<std::set<std::string>> memo(n);
  std::vector<int> memo_state(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const ScannedFile& file = tree.files[i];
    if (file.rel_path.rfind("src/", 0) != 0) continue;
    std::set<std::string> used;
    for (const Token& token : file.lexed.tokens) {
      if (token.kind == TokenKind::kIdentifier) used.insert(token.text);
    }
    const std::string own_stem = StripExtension(file.rel_path);
    for (const IncludeEdge& edge : out_edges[i]) {
      const ScannedFile& to = tree.files[edge.to];
      if (StripExtension(to.rel_path) == own_stem) continue;  // x.cc -> x.h
      const std::set<std::string>& provided = ProvidedNames(
          edge.to, adjacency, structures, &memo, &memo_state);
      const bool referenced =
          std::any_of(provided.begin(), provided.end(),
                      [&used](const std::string& name) {
                        return used.count(name) != 0;
                      });
      if (!referenced) {
        AddViolation(file, edge.line, "iwyu-unused-include",
                     "'" + to.rel_path +
                         "' is included but provides no name referenced in "
                         "this file",
                     violations);
      }
    }
  }
}

}  // namespace copyattack::analyze
