#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"

/// Hot-path purity (ISSUE 9): the machine-checked form of the PR-1
/// performance contract. `CA_HOT_PATH` definitions are roots; every src/
/// function the call graph reaches from a root must stay free of explicit
/// allocation, blocking lock acquisition, `throw`, and stream/file IO.
/// `CA_COLD_OK(reason)` functions are reached but neither scanned nor
/// expanded — the annotated escape hatch for config-gated slow paths.
///
/// Deliberate scope limits (documented in DESIGN.md §15): amortized
/// container growth (push_back/reserve — the PR-1 AppendRow design) is
/// allowed; only explicit `new`/make_unique/make_shared/malloc tokens are
/// flagged. String-stream formatting is allowed (checkpoint blobs);
/// file/console streams are not. ALL_CAPS macro interiors (CA_CHECK,
/// OBS_SPAN) are invisible to the token-level graph by design — the obs
/// macros are separately perf-gated by perf_smoke.

namespace copyattack::analyze {

namespace {

bool InSrc(const std::string& rel_path) {
  return rel_path.rfind("src/", 0) == 0;
}

bool IsAllocToken(const std::string& text) {
  return text == "new" || text == "make_unique" || text == "make_shared" ||
         text == "malloc" || text == "calloc" || text == "realloc";
}

bool IsLockTypeToken(const std::string& text) {
  return text == "lock_guard" || text == "unique_lock" ||
         text == "scoped_lock" || text == "shared_lock";
}

bool IsIoToken(const std::string& text) {
  static const std::set<std::string> kIo = {
      "fopen",  "fclose",   "fprintf",  "printf",  "fputs",   "fwrite",
      "fread",  "ofstream", "ifstream", "fstream", "cout",    "cerr",
      "clog",   "getline",  "system",   "fflush",  "puts",    "fgets",
  };
  return kIo.count(text) != 0;
}

}  // namespace

void RunHotPathPass(const SourceTree& tree, const CallGraph& graph,
                    const std::vector<FileStructure>& structures,
                    std::vector<Violation>* violations) {
  std::vector<std::size_t> roots;
  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    if (graph.nodes[n].hot_path) roots.push_back(n);
  }
  if (roots.empty()) return;

  // Reach everything from the roots; CA_COLD_OK and non-src definitions
  // form the frontier (reached, not expanded, not scanned).
  const auto barrier = [&](std::size_t n) {
    return graph.nodes[n].cold_ok || !InSrc(graph.FileOf(tree, n));
  };
  std::vector<std::size_t> parent;
  graph.Reach(roots, /*use_reverse=*/false, barrier, &parent);

  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    if (parent[n] == CallGraph::kNoNode) continue;  // unreached
    if (barrier(n) && parent[n] != n) continue;     // frontier
    const CallGraphNode& node = graph.nodes[n];
    const ScannedFile& file = tree.files[node.file_index];
    const FunctionDef& def =
        structures[node.file_index].functions[node.function_index];
    const std::vector<Token>& tokens = file.lexed.tokens;
    const std::string provenance =
        parent[n] == n ? " (a CA_HOT_PATH root)"
                       : " (reachable from hot path: " +
                             graph.PathFrom(parent, n) + ")";

    const std::size_t end =
        def.body_end < tokens.size() ? def.body_end : tokens.size();
    for (std::size_t i = def.body_begin + 1; i < end; ++i) {
      const Token& t = tokens[i];
      if (t.in_directive || t.kind != TokenKind::kIdentifier) continue;
      const std::string& prev = i > 0 ? tokens[i - 1].text : "";

      if (IsAllocToken(t.text)) {
        if (t.text == "new" && prev == "operator") continue;  // a name,
        // not an allocation (operator-new declarations inside classes).
        AddViolation(file, t.line, "hot-path-alloc",
                     "`" + t.text + "` in " + graph.Display(n) + provenance +
                         "; hot-path code must not allocate — hoist the "
                         "allocation, reuse a member, or mark the function "
                         "CA_COLD_OK(reason)",
                     violations);
        continue;
      }
      if (IsLockTypeToken(t.text) ||
          (t.text == "lock" && (prev == "." || prev == "->") &&
           i + 1 < end && tokens[i + 1].text == "(")) {
        AddViolation(file, t.line, "hot-path-lock",
                     "blocking lock (`" + t.text + "`) in " +
                         graph.Display(n) + provenance +
                         "; hot-path code must stay lock-free",
                     violations);
        continue;
      }
      if (t.text == "throw") {
        AddViolation(file, t.line, "hot-path-throw",
                     "`throw` in " + graph.Display(n) + provenance +
                         "; hot-path code must not unwind — return a "
                         "status or CA_CHECK",
                     violations);
        continue;
      }
      if (IsIoToken(t.text)) {
        AddViolation(file, t.line, "hot-path-io",
                     "IO (`" + t.text + "`) in " + graph.Display(n) +
                         provenance +
                         "; hot-path code must not touch streams or files",
                     violations);
        continue;
      }
    }
  }
}

}  // namespace copyattack::analyze
