#include "analyze/layers.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace copyattack::analyze {

namespace {

std::string Trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

/// Strips a trailing `# comment` (the manifest has no `#` inside strings —
/// paths and module names never contain one).
std::string StripComment(const std::string& line) {
  const std::size_t hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

/// Parses `["a", "b"]` (possibly empty) into `*out`.
bool ParseStringArray(const std::string& text, std::vector<std::string>* out,
                      std::string* error) {
  const std::string body = Trim(text);
  if (body.size() < 2 || body.front() != '[' || body.back() != ']') {
    *error = "expected a single-line string array, got: " + body;
    return false;
  }
  std::size_t i = 1;
  const std::size_t end = body.size() - 1;
  while (true) {
    while (i < end && (body[i] == ' ' || body[i] == '\t' || body[i] == ','))
      ++i;
    if (i >= end) break;
    if (body[i] != '"') {
      *error = "expected a quoted string in array: " + body;
      return false;
    }
    const std::size_t close = body.find('"', i + 1);
    if (close == std::string::npos || close > end) {
      *error = "unterminated string in array: " + body;
      return false;
    }
    out->push_back(body.substr(i + 1, close - i - 1));
    i = close + 1;
  }
  return true;
}

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

}  // namespace

bool OracleContract::IsOracleClass(const std::string& name) const {
  return Contains(classes, name);
}

bool OracleContract::IsEntryPoint(const std::string& name) const {
  return Contains(entry_points, name);
}

bool OracleContract::IsSeamMethod(const std::string& name) const {
  return Contains(seam_methods, name);
}

bool LayerContract::IsTopModule(const std::string& module) const {
  return Contains(top_modules, module);
}

bool LayerContract::IsPureHeader(const std::string& rel_path) const {
  return Contains(pure_headers, rel_path);
}

bool LayerContract::AllowsEdge(const std::string& from,
                               const std::string& to) const {
  if (from == to) return true;
  if (IsTopModule(from)) return true;
  const auto it = modules.find(from);
  return it != modules.end() && Contains(it->second, to);
}

bool ParseLayerContract(const std::string& text, LayerContract* contract,
                        std::string* error) {
  std::istringstream in(text);
  std::string raw_line;
  std::string section;
  std::size_t line_number = 0;
  while (std::getline(in, raw_line)) {
    ++line_number;
    const std::string line = Trim(StripComment(raw_line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        *error = "line " + std::to_string(line_number) +
                 ": malformed section header: " + line;
        return false;
      }
      section = Trim(line.substr(1, line.size() - 2));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = "line " + std::to_string(line_number) +
               ": expected `key = [...]`: " + line;
      return false;
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = line.substr(eq + 1);
    std::vector<std::string> items;
    if (!ParseStringArray(value, &items, error)) {
      *error = "line " + std::to_string(line_number) + ": " + *error;
      return false;
    }

    if (section == "modules") {
      if (contract->modules.count(key) != 0) {
        *error = "line " + std::to_string(line_number) +
                 ": duplicate module: " + key;
        return false;
      }
      contract->modules[key] = std::move(items);
    } else if (section == "top" && key == "modules") {
      contract->top_modules = std::move(items);
    } else if (section == "pure" && key == "headers") {
      contract->pure_headers = std::move(items);
    } else if (section == "oracle" && key == "classes") {
      contract->oracle.classes = std::move(items);
      contract->oracle.configured = true;
    } else if (section == "oracle" && key == "entry_points") {
      contract->oracle.entry_points = std::move(items);
      contract->oracle.configured = true;
    } else if (section == "oracle" && key == "seam_methods") {
      contract->oracle.seam_methods = std::move(items);
      contract->oracle.configured = true;
    } else if (section == "oracle" && key == "allow_modules") {
      contract->oracle.allow_modules = std::move(items);
      contract->oracle.configured = true;
    } else if (section == "oracle" && key == "allow_files") {
      contract->oracle.allow_files = std::move(items);
      contract->oracle.configured = true;
    } else if (section == "rng" && key == "stream_scoped") {
      contract->rng_stream_scoped = std::move(items);
    } else {
      *error = "line " + std::to_string(line_number) + ": unknown entry `" +
               key + "` in section [" + section + "]";
      return false;
    }
  }

  // Every declared dependency must itself be a declared module — a typo in
  // an edge list would otherwise silently permit nothing.
  for (const auto& [module, deps] : contract->modules) {
    for (const std::string& dep : deps) {
      if (contract->modules.count(dep) == 0) {
        *error = "module `" + module + "` depends on undeclared module `" +
                 dep + "`";
        return false;
      }
    }
  }
  return true;
}

bool LoadLayerContract(const std::string& path, LayerContract* contract,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open layer manifest: " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!ParseLayerContract(buffer.str(), contract, error)) {
    *error = path + ": " + *error;
    return false;
  }
  contract->source_path = path;
  return true;
}

}  // namespace copyattack::analyze
