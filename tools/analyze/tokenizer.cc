#include "analyze/tokenizer.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

namespace copyattack::analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Normalizes line endings: CRLF and lone CR both become `\n`, so line
/// counting and per-line blanking behave identically for files edited on
/// any platform (satisfying the CRLF cases in the tokenizer test suite).
/// A leading UTF-8 BOM is dropped too — editors on some platforms prepend
/// one, and without the strip a line-1 `#include`/`#pragma` is no longer
/// at line start and the whole directive lexes as punctuation soup.
std::string NormalizeNewlines(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  std::size_t begin = 0;
  if (raw.size() >= 3 && raw[0] == '\xEF' && raw[1] == '\xBB' &&
      raw[2] == '\xBF') {
    begin = 3;
  }
  for (std::size_t i = begin; i < raw.size(); ++i) {
    if (raw[i] == '\r') {
      out.push_back('\n');
      if (i + 1 < raw.size() && raw[i + 1] == '\n') ++i;
      continue;
    }
    out.push_back(raw[i]);
  }
  return out;
}

/// The lexer proper. Walks `src` once, emitting tokens and comments and
/// blanking non-code bytes in `blanked` (same length as `src`; newlines are
/// never blanked so the per-line split stays aligned).
class Lexer {
 public:
  explicit Lexer(LexedFile* out) : out_(*out), src_(out->content) {
    blanked_ = src_;
  }

  void Run() {
    while (!Eof()) {
      SkipSplices();
      if (Eof()) break;
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        in_directive_ = false;  // an unspliced newline ends the directive
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\v' || c == '\f') {
        ++i_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        at_line_start_ = false;
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentifierOrPrefixedLiteral();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        const std::size_t begin_line = line_;
        LexStringBody(/*raw=*/false);
        Emit(TokenKind::kString, "", begin_line);
        continue;
      }
      if (c == '\'') {
        const std::size_t begin_line = line_;
        LexCharBody();
        Emit(TokenKind::kCharLiteral, "", begin_line);
        continue;
      }
      LexPunct();
    }
    FinalizeCodeLines();
  }

 private:
  bool Eof() const { return i_ >= src_.size(); }

  char Peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  /// Consumes backslash-newline pairs (translation phase 2). Never called
  /// inside raw strings, which revert splicing per the standard.
  void SkipSplices() {
    while (i_ + 1 < src_.size() && src_[i_] == '\\' && src_[i_ + 1] == '\n') {
      i_ += 2;
      ++line_;
    }
  }

  void Emit(TokenKind kind, std::string text, std::size_t line) {
    out_.tokens.push_back(
        Token{kind, std::move(text), line, false, in_directive_});
  }

  void BlankHere() {
    if (src_[i_] != '\n') blanked_[i_] = ' ';
  }

  void LexLineComment() {
    const std::size_t begin_line = line_;
    std::string text;
    while (!Eof()) {
      if (src_[i_] == '\\' && Peek(1) == '\n') {
        // Spliced line comment: continues on the next physical line.
        BlankHere();
        text.push_back(src_[i_]);
        ++i_;
        ++line_;
        text.push_back('\n');
        ++i_;
        continue;
      }
      if (src_[i_] == '\n') break;
      BlankHere();
      text.push_back(src_[i_]);
      ++i_;
    }
    out_.comments.push_back(Comment{begin_line, line_, std::move(text)});
  }

  void LexBlockComment() {
    const std::size_t begin_line = line_;
    std::string text;
    BlankHere();
    text.push_back(src_[i_]);
    ++i_;  // '/'
    BlankHere();
    text.push_back(src_[i_]);
    ++i_;  // '*'
    bool terminated = false;
    while (!Eof()) {
      if (src_[i_] == '*' && Peek(1) == '/') {
        BlankHere();
        ++i_;
        BlankHere();
        ++i_;
        text.append("*/");
        terminated = true;
        break;
      }
      if (src_[i_] == '\n') {
        ++line_;
      } else {
        BlankHere();
      }
      text.push_back(src_[i_]);
      ++i_;
    }
    if (!terminated) {
      out_.errors.push_back("unterminated block comment starting on line " +
                            std::to_string(begin_line));
    }
    out_.comments.push_back(Comment{begin_line, line_, std::move(text)});
  }

  void LexDirective() {
    in_directive_ = true;
    ++i_;  // '#'
    SkipSplices();
    while (!Eof() && (src_[i_] == ' ' || src_[i_] == '\t')) ++i_;
    SkipSplices();
    if (Eof() || !IsIdentStart(src_[i_])) return;  // null directive
    std::string name;
    const std::size_t name_line = line_;
    while (!Eof() && IsIdentChar(src_[i_])) {
      name.push_back(src_[i_]);
      ++i_;
      SkipSplices();
    }
    const bool is_include = name == "include";
    Emit(TokenKind::kDirective, std::move(name), name_line);
    if (!is_include) return;  // body lexed as ordinary tokens

    while (!Eof() && (src_[i_] == ' ' || src_[i_] == '\t')) ++i_;
    if (Eof()) return;
    if (src_[i_] == '<') {
      // Angled path: kept as code in the blanked view (the legacy linter
      // never treated it as a string either).
      ++i_;
      std::string path;
      while (!Eof() && src_[i_] != '>' && src_[i_] != '\n') {
        path.push_back(src_[i_]);
        ++i_;
      }
      if (!Eof() && src_[i_] == '>') ++i_;
      Token token{TokenKind::kIncludePath, std::move(path), line_, true,
                  true};
      out_.tokens.push_back(std::move(token));
      return;
    }
    if (src_[i_] == '"') {
      ++i_;  // keep the opening quote in the blanked view
      std::string path;
      while (!Eof() && src_[i_] != '"' && src_[i_] != '\n') {
        BlankHere();
        path.push_back(src_[i_]);
        ++i_;
      }
      if (!Eof() && src_[i_] == '"') ++i_;
      Token token{TokenKind::kIncludePath, std::move(path), line_, false,
                  true};
      out_.tokens.push_back(std::move(token));
    }
  }

  void LexIdentifierOrPrefixedLiteral() {
    const std::size_t begin_line = line_;
    std::string ident;
    while (!Eof() && IsIdentChar(src_[i_])) {
      ident.push_back(src_[i_]);
      ++i_;
      SkipSplices();
    }
    // Literal prefixes: R"..., u8R"..., uR"..., UR"..., LR"..., and the
    // non-raw u8"/u"/U"/L" string and u8'/u'/U'/L' char forms.
    if (!Eof() && src_[i_] == '"') {
      const bool raw = !ident.empty() && ident.back() == 'R' &&
                       (ident == "R" || ident == "u8R" || ident == "uR" ||
                        ident == "UR" || ident == "LR");
      const bool prefix = ident == "u8" || ident == "u" || ident == "U" ||
                          ident == "L";
      if (raw || prefix) {
        LexStringBody(raw);
        Emit(TokenKind::kString, "", begin_line);
        return;
      }
    }
    if (!Eof() && src_[i_] == '\'' &&
        (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
      LexCharBody();
      Emit(TokenKind::kCharLiteral, "", begin_line);
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(ident), begin_line);
  }

  /// Consumes a string literal starting at the opening `"` (any encoding
  /// prefix has already been consumed). Bodies are blanked; the delimiting
  /// quotes stay so column-sensitive line rules keep their anchors.
  void LexStringBody(bool raw) {
    const std::size_t begin_line = line_;
    ++i_;  // opening '"', kept as code
    if (raw) {
      // d-char-seq up to the opening '('.
      std::string delim;
      while (!Eof() && src_[i_] != '(' && src_[i_] != '\n' &&
             delim.size() <= 16) {
        BlankHere();
        delim.push_back(src_[i_]);
        ++i_;
      }
      if (Eof() || src_[i_] != '(') {
        out_.errors.push_back("malformed raw string on line " +
                              std::to_string(begin_line));
        return;
      }
      BlankHere();
      ++i_;  // '('
      const std::string closer = ")" + delim + "\"";
      while (!Eof()) {
        if (src_[i_] == ')' &&
            src_.compare(i_, closer.size(), closer) == 0) {
          // Blank `)delim`, keep the closing quote.
          for (std::size_t k = 0; k + 1 < closer.size(); ++k) {
            BlankHere();
            ++i_;
          }
          ++i_;  // closing '"'
          return;
        }
        if (src_[i_] == '\n') {
          ++line_;
        } else {
          BlankHere();
        }
        ++i_;
      }
      out_.errors.push_back("unterminated raw string starting on line " +
                            std::to_string(begin_line));
      return;
    }
    while (!Eof()) {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
        BlankHere();
        ++i_;
        if (src_[i_] == '\n') {
          ++line_;  // escaped newline inside a literal
        } else {
          BlankHere();
        }
        ++i_;
        continue;
      }
      if (src_[i_] == '"') {
        ++i_;  // closing quote kept
        return;
      }
      if (src_[i_] == '\n') return;  // unterminated: be tolerant
      BlankHere();
      ++i_;
    }
  }

  void LexCharBody() {
    ++i_;  // opening '\''
    while (!Eof()) {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
        BlankHere();
        ++i_;
        if (src_[i_] == '\n') {
          ++line_;
        } else {
          BlankHere();
        }
        ++i_;
        continue;
      }
      if (src_[i_] == '\'') {
        ++i_;
        return;
      }
      if (src_[i_] == '\n') return;
      BlankHere();
      ++i_;
    }
  }

  /// pp-number: digits, identifier chars, dots, digit separators, and
  /// sign characters directly after an exponent letter.
  void LexNumber() {
    const std::size_t begin_line = line_;
    std::string text;
    while (!Eof()) {
      const char c = src_[i_];
      if (IsIdentChar(c) || c == '.') {
        text.push_back(c);
        ++i_;
        SkipSplices();
        continue;
      }
      if (c == '\'' && IsIdentChar(Peek(1))) {  // digit separator
        text.push_back(c);
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty() &&
          (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
           text.back() == 'P')) {
        text.push_back(c);
        ++i_;
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(text), begin_line);
  }

  void LexPunct() {
    if (src_[i_] == ':' && Peek(1) == ':') {
      Emit(TokenKind::kPunct, "::", line_);
      i_ += 2;
      return;
    }
    if (src_[i_] == '-' && Peek(1) == '>') {
      Emit(TokenKind::kPunct, "->", line_);
      i_ += 2;
      return;
    }
    Emit(TokenKind::kPunct, std::string(1, src_[i_]), line_);
    ++i_;
  }

  void FinalizeCodeLines() {
    out_.code_lines.clear();
    std::string current;
    for (const char c : blanked_) {
      if (c == '\n') {
        out_.code_lines.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    out_.code_lines.push_back(std::move(current));
  }

  LexedFile& out_;
  const std::string& src_;
  std::string blanked_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
  bool at_line_start_ = true;
  bool in_directive_ = false;
};

}  // namespace

bool LexedFile::Allows(std::size_t line, std::string_view marker,
                       std::string_view rule) const {
  std::string needle;
  needle.reserve(marker.size() + rule.size() + 2);
  needle.append(marker).push_back('(');
  needle.append(rule).push_back(')');
  for (const Comment& comment : comments) {
    // The marker suppresses on every line the comment spans and on the line
    // directly below it (the NOLINTNEXTLINE-style placement, for code lines
    // with no room for a trailing comment).
    if (line < comment.line_begin || line > comment.line_end + 1) continue;
    if (comment.text.find(needle) != std::string::npos) return true;
  }
  return false;
}

void LexedFile::BuildLineSpans() const {
  if (!line_spans_.empty()) return;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      line_spans_.emplace_back(begin, i - begin);
      begin = i + 1;
    }
  }
}

std::string_view LexedFile::Line(std::size_t line) const {
  BuildLineSpans();
  if (line == 0 || line > line_spans_.size()) return {};
  const auto [offset, length] = line_spans_[line - 1];
  return std::string_view(content).substr(offset, length);
}

LexedFile LexString(std::string path, std::string content) {
  LexedFile out;
  out.path = std::move(path);
  out.content = NormalizeNewlines(content);
  Lexer lexer(&out);
  lexer.Run();
  return out;
}

bool LexFileFromDisk(const std::string& path, LexedFile* out,
                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = LexString(path, buffer.str());
  return true;
}

}  // namespace copyattack::analyze
