#ifndef COPYATTACK_TOOLS_ANALYZE_PASSES_H_
#define COPYATTACK_TOOLS_ANALYZE_PASSES_H_

#include <vector>

#include "analyze/analysis.h"
#include "analyze/callgraph.h"
#include "analyze/layers.h"
#include "analyze/structure.h"

/// The copyattack-analyze passes. Each receives the whole scanned tree
/// plus the per-file structures (computed once, index-aligned with
/// `tree.files`) and appends suppression-filtered violations. The three
/// graph-based passes additionally take the CallGraph built once over the
/// same structures.

namespace copyattack::analyze {

/// Include-graph pass: resolves project includes, enforces the layers.toml
/// module contract (undeclared edges, unknown modules, impure pure-headers),
/// rejects include cycles, and runs the IWYU-lite unused-include check over
/// files under src/.
/// Rules: layer-undeclared-edge, layer-unknown-module, layer-cycle,
/// layer-impure-header, iwyu-unused-include.
void RunIncludeGraphPass(const SourceTree& tree,
                         const LayerContract& contract,
                         const std::vector<FileStructure>& structures,
                         std::vector<Violation>* violations);

/// Thread-safety pass: checks CA_GUARDED_BY fields are only touched by
/// functions that lock (or CA_REQUIRES) the named mutex, and that
/// CA_ATOMIC_ONLY fields are declared std::atomic. Constructors are exempt
/// (no concurrent access before the object is published).
/// Rules: ts-unlocked-field, ts-atomic-type.
void RunThreadSafetyPass(const SourceTree& tree,
                         const std::vector<FileStructure>& structures,
                         std::vector<Violation>* violations);

/// Determinism pass: flags raw entropy (std::random_device, wall-clock
/// seeding), direct std <random> engines/distributions outside util/rng
/// (their outputs differ across standard libraries), util::Rng constructed
/// without an explicit seed, and Rng parameters taken by value.
/// Rules: det-raw-entropy, det-std-engine, det-unseeded-rng,
/// det-rng-by-value.
void RunDeterminismPass(const SourceTree& tree,
                        const std::vector<FileStructure>& structures,
                        std::vector<Violation>* violations);

/// Checkpoint-coverage pass: every non-static data member of a
/// CA_CHECKPOINTED type must be referenced by both its save and load
/// serializer bodies, in the same order, unless waived with
/// CA_NOT_CHECKPOINTED(reason). Protects the bit-identical kill-and-resume
/// guarantee from silently unserialized new fields.
/// Rules: ckpt-missing-member, ckpt-order-mismatch, ckpt-no-serializer.
void RunCheckpointPass(const SourceTree& tree,
                       const std::vector<FileStructure>& structures,
                       std::vector<Violation>* violations);

/// Lock-order pass: builds a repo-wide mutex acquisition graph from
/// CA_ACQUIRED_BEFORE annotations plus RAII-holder nesting observed inside
/// function bodies, then rejects cycles, observed nestings that contradict
/// a declared edge, and blocking acquisitions of annotated mutexes inside
/// ParallelFor bodies.
/// Rules: lock-order-cycle, lock-order-contradiction, lock-in-parallel-for.
void RunLockOrderPass(const SourceTree& tree,
                      const std::vector<FileStructure>& structures,
                      std::vector<Violation>* violations);

/// Oracle-access pass: every path from src/ code to the metered black-box
/// oracle must traverse the decorator stack declared in layers.toml's
/// [oracle] section. Direct calls to an entry point (QueryTopK*, InjectUser)
/// or to a seam method (Query/Inject/QueryBatch) on an oracle-typed
/// receiver, from outside the allowlisted modules/files, are findings —
/// as are their transitive src/ callers. Inert when [oracle] is absent.
/// Rules: oracle-direct-call, oracle-unmetered-path.
void RunOracleAccessPass(const SourceTree& tree,
                         const LayerContract& contract,
                         const CallGraph& graph,
                         std::vector<Violation>* violations);

/// Hot-path purity pass: walks the call graph from every CA_HOT_PATH
/// definition; each src/ function reached (CA_COLD_OK ones excepted) may
/// not allocate explicitly, acquire a blocking lock, throw, or perform
/// stream/file IO. Machine-checks the PR-1 episode-loop latency contract.
/// Rules: hot-path-alloc, hot-path-lock, hot-path-throw, hot-path-io.
void RunHotPathPass(const SourceTree& tree, const CallGraph& graph,
                    const std::vector<FileStructure>& structures,
                    std::vector<Violation>* violations);

/// RNG-provenance pass: inside the [rng] stream_scoped path prefixes
/// (sharded/checkpointed campaign code), every util::Rng construction must
/// derive its seed via util::DeriveStreamSeed (directly, or through a
/// function whose body calls it) or take a plain base seed unchanged;
/// arithmetic seed mixing and Rng::Fork are findings because they break
/// the bit-identical shard/resume guarantees. Inert when stream_scoped is
/// empty.
/// Rules: rng-adhoc-seed, rng-fork-in-stream.
void RunRngProvenancePass(const SourceTree& tree,
                          const LayerContract& contract,
                          const CallGraph& graph,
                          const std::vector<FileStructure>& structures,
                          std::vector<Violation>* violations);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_PASSES_H_
