#ifndef COPYATTACK_TOOLS_ANALYZE_PASSES_H_
#define COPYATTACK_TOOLS_ANALYZE_PASSES_H_

#include <vector>

#include "analyze/analysis.h"
#include "analyze/layers.h"
#include "analyze/structure.h"

/// The three copyattack-analyze passes. Each receives the whole scanned
/// tree plus the per-file structures (computed once, index-aligned with
/// `tree.files`) and appends suppression-filtered violations.

namespace copyattack::analyze {

/// Include-graph pass: resolves project includes, enforces the layers.toml
/// module contract (undeclared edges, unknown modules, impure pure-headers),
/// rejects include cycles, and runs the IWYU-lite unused-include check over
/// files under src/.
/// Rules: layer-undeclared-edge, layer-unknown-module, layer-cycle,
/// layer-impure-header, iwyu-unused-include.
void RunIncludeGraphPass(const SourceTree& tree,
                         const LayerContract& contract,
                         const std::vector<FileStructure>& structures,
                         std::vector<Violation>* violations);

/// Thread-safety pass: checks CA_GUARDED_BY fields are only touched by
/// functions that lock (or CA_REQUIRES) the named mutex, and that
/// CA_ATOMIC_ONLY fields are declared std::atomic. Constructors are exempt
/// (no concurrent access before the object is published).
/// Rules: ts-unlocked-field, ts-atomic-type.
void RunThreadSafetyPass(const SourceTree& tree,
                         const std::vector<FileStructure>& structures,
                         std::vector<Violation>* violations);

/// Determinism pass: flags raw entropy (std::random_device, wall-clock
/// seeding), direct std <random> engines/distributions outside util/rng
/// (their outputs differ across standard libraries), util::Rng constructed
/// without an explicit seed, and Rng parameters taken by value.
/// Rules: det-raw-entropy, det-std-engine, det-unseeded-rng,
/// det-rng-by-value.
void RunDeterminismPass(const SourceTree& tree,
                        const std::vector<FileStructure>& structures,
                        std::vector<Violation>* violations);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_PASSES_H_
