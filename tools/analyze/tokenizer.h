#ifndef COPYATTACK_TOOLS_ANALYZE_TOKENIZER_H_
#define COPYATTACK_TOOLS_ANALYZE_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// A real C++ tokenizer for the static-analysis subsystem (and the
/// repo-invariant linter, which shares it so its regex-era rules stop
/// matching inside comments, string literals, and raw strings).
///
/// Scope: lexical analysis only — no preprocessing, no semantics. Both
/// branches of every `#if` are lexed (the passes must see code that is
/// compiled out on this toolchain), macros are not expanded, and digraphs /
/// trigraphs are assumed absent (the repo lints itself, and the style guide
/// bans them). Handled faithfully:
///   * CRLF and lone-CR line endings (normalized to `\n`);
///   * line splices (backslash-newline) in code, comments, and non-raw
///     literals — raw strings keep them verbatim, per the standard;
///   * `//` and `/* ... */` comments, including multi-line ones;
///   * string/char literals with encoding prefixes (u8, u, U, L) and
///     escapes, and raw strings `R"delim( ... )delim"`;
///   * pp-numbers with digit separators (`1'000'000`) and exponent signs;
///   * preprocessor directives, with `#include` paths lexed as dedicated
///     tokens.

namespace copyattack::analyze {

enum class TokenKind {
  kIdentifier,   ///< identifiers and keywords (no keyword table needed)
  kNumber,       ///< pp-number
  kString,       ///< any string literal (text is empty — bodies are opaque)
  kCharLiteral,  ///< any character literal
  kPunct,        ///< punctuation; `::` and `->` are single tokens
  kDirective,    ///< preprocessor directive; text is the name ("include")
  kIncludePath,  ///< the path operand of #include, without delimiters
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;        ///< spelling (see per-kind notes above)
  std::size_t line = 0;    ///< 1-based physical line of the first character
  bool angled = false;     ///< kIncludePath: `<...>` (true) vs `"..."`
  /// True for every token of a preprocessor directive's logical line
  /// (splices included) — lets the scope scanner keep macro bodies out of
  /// declaration heads.
  bool in_directive = false;
};

struct Comment {
  std::size_t line_begin = 0;  ///< 1-based, inclusive
  std::size_t line_end = 0;    ///< 1-based, inclusive
  std::string text;            ///< comment body including the `//` / `/*`
};

/// Fully lexed view of one source file.
struct LexedFile {
  std::string path;
  std::string content;  ///< newline-normalized source text

  std::vector<Token> tokens;
  std::vector<Comment> comments;

  /// One entry per physical line of `content`: comments and the interiors
  /// of string/char literals blanked to spaces (delimiters kept), code
  /// verbatim. Quoted `#include` paths are blanked like strings; angled
  /// paths stay, matching the legacy linter's stripping so its line rules
  /// migrate without behavioural drift.
  std::vector<std::string> code_lines;

  /// Lexer complaints (unterminated block comment / raw string). The passes
  /// treat any of these as a violation so silently-mislexed files cannot
  /// pass the tree check.
  std::vector<std::string> errors;

  /// True if a comment on `line` — or ending on the line directly above it
  /// — contains `<marker>(<rule>)`, e.g. Allows(42, "analyze:allow",
  /// "layer-cycle"). A multi-line block comment grants its allowances to
  /// every line it spans (plus the next); in a run of `//` lines the marker
  /// must sit on the last one or on the code line itself.
  bool Allows(std::size_t line, std::string_view marker,
              std::string_view rule) const;

  /// The raw text of physical line `line` (1-based), empty if out of range.
  std::string_view Line(std::size_t line) const;

 private:
  friend LexedFile LexString(std::string path, std::string content);
  mutable std::vector<std::pair<std::size_t, std::size_t>> line_spans_;
  void BuildLineSpans() const;
};

/// Lexes an in-memory buffer.
LexedFile LexString(std::string path, std::string content);

/// Reads and lexes a file; returns false (with `*error` set) on I/O failure.
bool LexFileFromDisk(const std::string& path, LexedFile* out,
                     std::string* error);

}  // namespace copyattack::analyze

#endif  // COPYATTACK_TOOLS_ANALYZE_TOKENIZER_H_
