#include "analyze/callgraph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace copyattack::analyze {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool IsKeywordLike(const std::string& text) {
  // Words that lex as identifiers but can never be an in-tree callee.
  static const std::set<std::string> kWords = {
      "if",          "for",      "while",    "switch",   "do",
      "else",        "try",      "catch",    "return",   "sizeof",
      "alignof",     "alignas",  "decltype", "noexcept", "throw",
      "static_assert", "new",    "delete",   "this",     "operator",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "void",        "bool",     "char",     "int",      "short",
      "long",        "signed",   "unsigned", "float",    "double",
      "auto",        "defined",  "assert",   "co_await", "co_return",
      "co_yield",    "typeid",   "requires", "template", "typename",
  };
  return kWords.count(text) != 0;
}

/// ALL_CAPS identifiers are macro invocations (CA_CHECK, OBS_SPAN, ...):
/// their expansions are invisible to a token-level graph, so they are
/// skipped entirely rather than inflating the unresolved count.
bool LooksLikeMacro(const std::string& text) {
  if (text.size() < 2) return false;
  bool has_upper = false;
  for (const char c : text) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_upper = true;
  }
  return has_upper;
}

/// Index over every definition in the tree.
struct DefIndex {
  /// (class, name) -> node ids (overloads share an entry).
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>
      by_class_and_name;
  /// name -> node ids across all classes and free functions.
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// Classes that own at least one definition in the tree.
  std::set<std::string> known_classes;
  /// Member name (trailing `_` convention) -> owning class. Only kept when
  /// the mapping is unambiguous tree-wide; ambiguous names resolve to "".
  std::map<std::string, std::string> member_types;
};

/// Extracts `type member_;`-shaped declarations: an identifier ending in
/// `_` followed by a declarator terminator, with a known class name among
/// the few preceding tokens of the same declaration. Smart-pointer
/// declarations (`std::unique_ptr<Foo> bar_;`) resolve to the pointee.
void HarvestMemberTypes(const std::vector<Token>& tokens,
                        const std::set<std::string>& known_classes,
                        std::map<std::string, std::string>* member_types) {
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.in_directive || t.kind != TokenKind::kIdentifier) continue;
    if (t.text.size() < 2 || t.text.back() != '_') continue;
    const std::string& next = tokens[i + 1].text;
    if (next != ";" && next != "=" && next != "{" &&
        tokens[i + 1].text.rfind("CA_", 0) != 0) {
      continue;
    }
    // Walk back through the declaration for the nearest known class name.
    std::string type;
    for (std::size_t back = 0, j = i; back < 10 && j > 0; ++back) {
      --j;
      const Token& p = tokens[j];
      if (p.in_directive) continue;
      if (p.kind == TokenKind::kPunct &&
          (p.text == ";" || p.text == "{" || p.text == "}" ||
           p.text == "(" || p.text == ",")) {
        break;
      }
      if (p.kind == TokenKind::kIdentifier &&
          known_classes.count(p.text) != 0) {
        type = p.text;
        break;
      }
    }
    if (type.empty()) continue;
    const auto it = member_types->find(t.text);
    if (it == member_types->end()) {
      (*member_types)[t.text] = type;
    } else if (it->second != type) {
      it->second = "";  // ambiguous across classes: unusable
    }
  }
}

/// Local/parameter types of one function: scans [head_begin, body_end) for
/// `Class [*&const]* name` and `unique_ptr/shared_ptr<Class> name` shapes.
std::map<std::string, std::string> LocalTypes(
    const std::vector<Token>& tokens, const FunctionDef& def,
    const std::set<std::string>& known_classes) {
  std::map<std::string, std::string> locals;
  const std::size_t end = std::min(def.body_end, tokens.size());
  for (std::size_t i = def.head_begin; i + 1 < end; ++i) {
    const Token& t = tokens[i];
    if (t.in_directive || t.kind != TokenKind::kIdentifier) continue;

    std::string type;
    std::size_t j = i + 1;
    if (known_classes.count(t.text) != 0) {
      type = t.text;
    } else if ((t.text == "unique_ptr" || t.text == "shared_ptr") &&
               j < end && tokens[j].text == "<") {
      // unique_ptr<ns::Class> — take the last identifier before `>`.
      std::string pointee;
      for (++j; j < end && tokens[j].text != ">" && tokens[j].text != ";";
           ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier) pointee = tokens[j].text;
      }
      if (j >= end || tokens[j].text != ">" ||
          known_classes.count(pointee) == 0) {
        continue;
      }
      type = pointee;
      ++j;
    } else {
      continue;
    }

    while (j < end && tokens[j].kind == TokenKind::kPunct &&
           (tokens[j].text == "*" || tokens[j].text == "&" ||
            tokens[j].text == "&&")) {
      ++j;
    }
    while (j < end && tokens[j].kind == TokenKind::kIdentifier &&
           tokens[j].text == "const") {
      ++j;
    }
    if (j >= end || tokens[j].kind != TokenKind::kIdentifier) continue;
    const std::string& var = tokens[j].text;
    if (IsKeywordLike(var) || known_classes.count(var) != 0) continue;
    // Must be a declaration, not an expression: the variable is followed by
    // an initializer/terminator, and the type is not preceded by `.`/`->`
    // (a member access). A leading `::` is fine — that is how namespace
    // qualification spells the type (`std::unique_ptr`, `core::Env`).
    if (j + 1 < end) {
      const std::string& after = tokens[j + 1].text;
      if (after != ";" && after != "=" && after != "(" && after != "{" &&
          after != "," && after != ")") {
        continue;
      }
    }
    if (i > 0) {
      const std::string& before = tokens[i - 1].text;
      if (before == "." || before == "->") continue;
    }
    locals.emplace(var, type);
  }
  return locals;
}

/// If tokens[i] is `<`, returns the index one past its balanced `>` when
/// the run looks like template arguments (bounded, no `;`, depth-closed);
/// otherwise kNone. The tokenizer emits single-char angle tokens (`a >>
/// b` is `>` `>`), so nested closers and shift expressions both walk one
/// bracket at a time — an unbalanced shift simply never closes and falls
/// out as kNone.
std::size_t SkipTemplateArgs(const std::vector<Token>& tokens,
                             std::size_t i) {
  if (i >= tokens.size() || tokens[i].text != "<") return kNone;
  int depth = 0;
  const std::size_t limit = std::min(tokens.size(), i + 64);
  for (std::size_t j = i; j < limit; ++j) {
    const std::string& text = tokens[j].text;
    if (text == ";" || text == "{" || text == "}") return kNone;
    if (text == "<") ++depth;
    if (text == ">" && --depth == 0) return j + 1;
  }
  return kNone;
}

class Builder {
 public:
  Builder(const SourceTree& tree,
          const std::vector<FileStructure>& structures)
      : tree_(tree), structures_(structures) {}

  CallGraph Build() {
    CollectNodes();
    BuildIndex();
    for (std::size_t n = 0; n < graph_.nodes.size(); ++n) ExtractCalls(n);
    BuildEdges();
    Finalize();
    return std::move(graph_);
  }

 private:
  void CollectNodes() {
    for (std::size_t f = 0; f < tree_.files.size(); ++f) {
      const std::vector<FunctionDef>& defs = structures_[f].functions;
      for (std::size_t d = 0; d < defs.size(); ++d) {
        CallGraphNode node;
        node.file_index = f;
        node.function_index = d;
        node.name = defs[d].name;
        node.class_name = defs[d].class_name;
        node.line = defs[d].line;
        node.hot_path = defs[d].hot_path;
        node.cold_ok = defs[d].cold_ok;
        graph_.nodes.push_back(std::move(node));
      }
    }
  }

  void BuildIndex() {
    for (std::size_t n = 0; n < graph_.nodes.size(); ++n) {
      const CallGraphNode& node = graph_.nodes[n];
      index_.by_name[node.name].push_back(n);
      index_.by_class_and_name[{node.class_name, node.name}].push_back(n);
      if (!node.class_name.empty()) {
        index_.known_classes.insert(node.class_name);
      }
    }
    // Classes with no in-tree method definition (pure interfaces) still
    // type receivers — their calls fan out to every same-name method.
    for (const FileStructure& structure : structures_) {
      index_.known_classes.insert(structure.classes.begin(),
                                  structure.classes.end());
    }
    for (const ScannedFile& file : tree_.files) {
      HarvestMemberTypes(file.lexed.tokens, index_.known_classes,
                         &index_.member_types);
    }
  }

  const FunctionDef& DefOf(std::size_t n) const {
    const CallGraphNode& node = graph_.nodes[n];
    return structures_[node.file_index].functions[node.function_index];
  }

  /// Methods of `cls` named `name`; when the class has no such definition
  /// (pure virtual / interface), fans out to every same-name method of any
  /// class — the token-level over-approximation of virtual dispatch.
  std::vector<std::size_t> MethodTargets(const std::string& cls,
                                         const std::string& name) const {
    const auto exact = index_.by_class_and_name.find({cls, name});
    if (exact != index_.by_class_and_name.end()) return exact->second;
    const auto any = index_.by_name.find(name);
    if (any == index_.by_name.end()) return {};
    std::vector<std::size_t> methods;
    for (const std::size_t n : any->second) {
      if (!graph_.nodes[n].class_name.empty()) methods.push_back(n);
    }
    return methods;
  }

  void ExtractCalls(std::size_t n) {
    CallGraphNode& node = graph_.nodes[n];
    const FunctionDef& def = DefOf(n);
    const std::vector<Token>& tokens =
        tree_.files[node.file_index].lexed.tokens;
    const std::map<std::string, std::string> locals =
        LocalTypes(tokens, def, index_.known_classes);
    const std::size_t end = std::min(def.body_end, tokens.size());

    for (std::size_t i = def.body_begin + 1; i < end; ++i) {
      const Token& t = tokens[i];
      if (t.in_directive || t.kind != TokenKind::kIdentifier) continue;
      if (IsKeywordLike(t.text) || LooksLikeMacro(t.text)) continue;

      // The callee name must be followed by `(`, optionally via `<...>`.
      std::size_t open = i + 1;
      if (open < end && tokens[open].text == "<") {
        const std::size_t past = SkipTemplateArgs(tokens, open);
        if (past == kNone) continue;
        open = past;
      }
      if (open >= end || tokens[open].text != "(") continue;

      // Declaration, not call: `Class name(args)` handled at the *type*
      // token (constructor shape below); skip the name token itself when
      // directly preceded by a known class (possibly through */&).
      CallSite site;
      site.line = t.line;
      site.token = i;
      site.name = t.text;

      const std::string prev = i > 0 ? tokens[i - 1].text : "";
      if (prev == "::") {
        if (i >= 2 && tokens[i - 2].kind == TokenKind::kIdentifier) {
          site.qualifier = tokens[i - 2].text;
        }
      } else if (prev == "." || prev == "->") {
        site.member_call = true;
        if (i >= 2 && tokens[i - 2].kind == TokenKind::kIdentifier) {
          site.receiver = tokens[i - 2].text;
        }
      } else if (i > 0 && tokens[i - 1].kind == TokenKind::kIdentifier &&
                 index_.known_classes.count(tokens[i - 1].text) != 0) {
        continue;  // `Class name(` — a declaration; ctor handled on `Class`
      }

      // Constructor shapes: `KnownClass(args)` temporary or
      // `KnownClass var(args)` declaration (tokens[open] is `(` only in
      // the temporary form; the declaration form is caught here instead).
      if (!site.member_call && site.qualifier.empty() &&
          index_.known_classes.count(t.text) != 0) {
        ResolveCtor(&site);
        if (!site.targets.empty()) node.calls.push_back(std::move(site));
        continue;
      }
      // `KnownClass var(args)` — tokens[i+1] is an identifier, not `(`;
      // handled separately because `open` above required `(`.
      Resolve(node, locals, &site);
      node.calls.push_back(std::move(site));
    }

    // Second sweep for `KnownClass var(args...)` constructor declarations
    // and make_unique/make_shared<T>(...) — both create a T.
    for (std::size_t i = def.body_begin + 1; i + 2 < end; ++i) {
      const Token& t = tokens[i];
      if (t.in_directive || t.kind != TokenKind::kIdentifier) continue;
      const bool is_make =
          t.text == "make_unique" || t.text == "make_shared";
      if (is_make) {
        std::string pointee;
        if (tokens[i + 1].text == "<") {
          const std::size_t past = SkipTemplateArgs(tokens, i + 1);
          for (std::size_t j = i + 2; past != kNone && j + 1 < past; ++j) {
            if (tokens[j].kind == TokenKind::kIdentifier) {
              pointee = tokens[j].text;
            }
          }
        }
        if (index_.known_classes.count(pointee) != 0) {
          CallSite site;
          site.line = t.line;
          site.token = i;
          site.name = pointee;
          ResolveCtor(&site);
          if (!site.targets.empty()) node.calls.push_back(std::move(site));
        }
        continue;
      }
      if (index_.known_classes.count(t.text) == 0) continue;
      if (tokens[i + 1].kind != TokenKind::kIdentifier) continue;
      if (IsKeywordLike(tokens[i + 1].text)) continue;
      const std::string& after = tokens[i + 2].text;
      if (after != "(" && after != "{") continue;
      if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->" ||
                    tokens[i - 1].text == "::")) {
        continue;
      }
      CallSite site;
      site.line = t.line;
      site.token = i;
      site.name = t.text;
      ResolveCtor(&site);
      if (!site.targets.empty()) node.calls.push_back(std::move(site));
    }
  }

  void ResolveCtor(CallSite* site) {
    const auto it = index_.by_class_and_name.find({site->name, site->name});
    if (it != index_.by_class_and_name.end()) site->targets = it->second;
    // No in-tree ctor definition (implicit/defaulted): silently external.
    site->external = site->targets.empty();
  }

  void Resolve(const CallGraphNode& caller,
               const std::map<std::string, std::string>& locals,
               CallSite* site) {
    const auto candidates = index_.by_name.find(site->name);
    if (candidates == index_.by_name.end()) {
      site->external = true;  // std::, libc, lambdas, member functors
      return;
    }

    if (!site->qualifier.empty()) {
      // `Q::name(` — Q is a class (static/explicitly-qualified method) or
      // a namespace (free function).
      if (index_.known_classes.count(site->qualifier) != 0) {
        site->targets = MethodTargets(site->qualifier, site->name);
        if (site->targets.empty()) {
          site->why_unresolved =
              "no definition of " + site->qualifier + "::" + site->name;
        }
        return;
      }
      const auto free_fns =
          index_.by_class_and_name.find({"", site->name});
      if (free_fns != index_.by_class_and_name.end()) {
        site->targets = free_fns->second;
        return;
      }
      UniqueNameFallback(candidates->second, site);
      return;
    }

    if (site->member_call) {
      std::string cls;
      if (site->receiver == "this") {
        cls = caller.class_name;
      } else if (!site->receiver.empty()) {
        const auto local = locals.find(site->receiver);
        if (local != locals.end()) {
          cls = local->second;
        } else {
          const auto member = index_.member_types.find(site->receiver);
          if (member != index_.member_types.end() &&
              !member->second.empty()) {
            cls = member->second;
          }
        }
      }
      if (!cls.empty()) {
        site->targets = MethodTargets(cls, site->name);
        if (site->targets.empty()) {
          site->why_unresolved =
              "no method " + site->name + " on receiver type " + cls;
        }
        return;
      }
      UniqueNameFallback(candidates->second, site);
      if (site->targets.empty() && site->why_unresolved.empty()) {
        site->why_unresolved = "untyped receiver `" + site->receiver + "`";
      }
      return;
    }

    // Unqualified: a sibling method of the caller's class, then a free
    // function, then the unique-name fallback.
    if (!caller.class_name.empty()) {
      const auto sibling =
          index_.by_class_and_name.find({caller.class_name, site->name});
      if (sibling != index_.by_class_and_name.end()) {
        site->targets = sibling->second;
        return;
      }
    }
    const auto free_fns = index_.by_class_and_name.find({"", site->name});
    if (free_fns != index_.by_class_and_name.end()) {
      site->targets = free_fns->second;
      return;
    }
    UniqueNameFallback(candidates->second, site);
  }

  /// Last tier: when every in-tree definition of the name lives in one
  /// class, the call can only mean that (modulo shadowing by external
  /// code, which the stats keep honest about).
  void UniqueNameFallback(const std::vector<std::size_t>& candidates,
                          CallSite* site) {
    std::set<std::string> owners;
    for (const std::size_t n : candidates) {
      owners.insert(graph_.nodes[n].class_name);
    }
    if (owners.size() == 1) {
      site->targets = candidates;
      return;
    }
    site->why_unresolved = "ambiguous: " +
                           std::to_string(candidates.size()) +
                           " definitions of " + site->name + " in " +
                           std::to_string(owners.size()) + " classes";
  }

  void BuildEdges() {
    graph_.edges.assign(graph_.nodes.size(), {});
    graph_.reverse.assign(graph_.nodes.size(), {});
    for (std::size_t n = 0; n < graph_.nodes.size(); ++n) {
      std::set<std::size_t> callees;
      for (const CallSite& site : graph_.nodes[n].calls) {
        for (const std::size_t target : site.targets) {
          if (target != n) callees.insert(target);
        }
      }
      for (const std::size_t callee : callees) {
        graph_.edges[n].push_back(callee);
        graph_.reverse[callee].push_back(n);
      }
    }
  }

  void Finalize() {
    CallGraphStats& stats = graph_.stats;
    stats.functions = graph_.nodes.size();
    for (const CallGraphNode& node : graph_.nodes) {
      for (const CallSite& site : node.calls) {
        ++stats.call_sites;
        if (site.external) {
          ++stats.external_calls;
        } else if (site.targets.empty()) {
          ++stats.unresolved_calls;
        }
      }
    }
    for (const std::vector<std::size_t>& out : graph_.edges) {
      stats.resolved_edges += out.size();
    }
    const std::size_t resolvable =
        stats.call_sites > stats.external_calls
            ? stats.call_sites - stats.external_calls
            : 1;
    stats.unresolved_rate =
        static_cast<double>(stats.unresolved_calls) /
        static_cast<double>(resolvable == 0 ? 1 : resolvable);
  }

  const SourceTree& tree_;
  const std::vector<FileStructure>& structures_;
  DefIndex index_;
  CallGraph graph_;
};

}  // namespace

std::string CallGraph::Display(std::size_t node) const {
  const CallGraphNode& n = nodes[node];
  if (n.class_name.empty() || n.class_name == n.name) return n.name;
  std::string out = n.class_name;
  out += "::";
  out += n.name;
  return out;
}

const std::string& CallGraph::FileOf(const SourceTree& tree,
                                     std::size_t node) const {
  return tree.files[nodes[node].file_index].rel_path;
}

void CallGraph::Reach(const std::vector<std::size_t>& roots,
                      bool use_reverse,
                      const std::function<bool(std::size_t)>& barrier,
                      std::vector<std::size_t>* parent) const {
  parent->assign(nodes.size(), kNoNode);
  std::deque<std::size_t> queue;
  for (const std::size_t root : roots) {
    if ((*parent)[root] != kNoNode) continue;
    (*parent)[root] = root;
    queue.push_back(root);
  }
  const std::vector<std::vector<std::size_t>>& adj =
      use_reverse ? reverse : edges;
  while (!queue.empty()) {
    const std::size_t n = queue.front();
    queue.pop_front();
    if (barrier && barrier(n) && (*parent)[n] != n) continue;
    for (const std::size_t next : adj[n]) {
      if ((*parent)[next] != kNoNode) continue;
      (*parent)[next] = n;
      queue.push_back(next);
    }
  }
}

std::string CallGraph::PathFrom(const std::vector<std::size_t>& parent,
                                std::size_t node, std::size_t limit) const {
  std::vector<std::size_t> chain = {node};
  std::size_t cur = node;
  while (parent[cur] != cur && parent[cur] != kNoNode &&
         chain.size() < limit) {
    cur = parent[cur];
    chain.push_back(cur);
  }
  std::string out;
  const bool truncated = parent[cur] != cur;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    if (it == chain.rbegin() && truncated) out += "... -> ";
    out += Display(*it);
  }
  return out;
}

CallGraph BuildCallGraph(const SourceTree& tree,
                         const std::vector<FileStructure>& structures) {
  return Builder(tree, structures).Build();
}

}  // namespace copyattack::analyze
