#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "math/sampling.h"
#include "math/vector_ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace copyattack::data {
namespace {

/// Draws a log-uniform profile length in [min_len, max_len].
std::size_t DrawProfileLength(std::size_t min_len, std::size_t max_len,
                              util::Rng& rng) {
  CA_CHECK_GE(max_len, min_len);
  if (min_len == max_len) return min_len;
  const double ratio =
      static_cast<double>(max_len) / static_cast<double>(min_len);
  const double len =
      static_cast<double>(min_len) * std::pow(ratio, rng.UniformDouble());
  return std::min<std::size_t>(
      max_len, std::max<std::size_t>(min_len,
                                     static_cast<std::size_t>(len + 0.5)));
}

/// Samples a user profile of `length` distinct items with probability
/// proportional to `weights` (only indices with weight > 0 are eligible).
Profile SampleProfile(const math::AliasTable& table,
                      const std::vector<double>& weights, std::size_t length,
                      util::Rng& rng) {
  std::size_t eligible = 0;
  for (const double w : weights) {
    if (w > 0.0) ++eligible;
  }
  length = std::min(length, eligible);
  Profile profile;
  profile.reserve(length);
  std::unordered_set<ItemId> seen;
  // Rejection sampling; profiles are much shorter than the item universe,
  // so the expected number of rejections is small. A deterministic fallback
  // guards against pathological weight concentration.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 60 * length + 200;
  while (profile.size() < length && attempts < max_attempts) {
    ++attempts;
    const ItemId item = static_cast<ItemId>(table.Sample(rng));
    if (seen.insert(item).second) {
      profile.push_back(item);
    }
  }
  if (profile.size() < length) {
    // Fallback: take the highest-weight unseen items.
    std::vector<ItemId> by_weight(weights.size());
    for (ItemId i = 0; i < weights.size(); ++i) by_weight[i] = i;
    std::stable_sort(by_weight.begin(), by_weight.end(),
                     [&](ItemId a, ItemId b) {
                       return weights[a] > weights[b];
                     });
    for (const ItemId item : by_weight) {
      if (profile.size() >= length) break;
      if (weights[item] > 0.0 && seen.insert(item).second) {
        profile.push_back(item);
      }
    }
  }
  return profile;
}

/// Orders a sampled profile so that items of the same cluster are adjacent
/// (sessions of related items), with a random order of the sessions. This
/// gives the temporal structure the crafting window exploits: the items
/// near the target item in the sequence are its cluster-mates.
void OrderProfileByCluster(Profile& profile,
                           const std::vector<std::size_t>& item_cluster,
                           std::size_t num_clusters, util::Rng& rng) {
  std::vector<std::size_t> cluster_rank(num_clusters);
  for (std::size_t c = 0; c < num_clusters; ++c) cluster_rank[c] = c;
  rng.Shuffle(cluster_rank);
  std::stable_sort(profile.begin(), profile.end(),
                   [&](ItemId a, ItemId b) {
                     return cluster_rank[item_cluster[a]] <
                            cluster_rank[item_cluster[b]];
                   });
}

/// A user's ground-truth taste: a weighted mixture of 1-3 preference
/// clusters. Real users span several interest groups; a mixture makes raw
/// profiles multi-session (so the crafting window genuinely isolates the
/// target item's session) while keeping cross-domain correlation through
/// the shared cluster centers.
struct UserTaste {
  std::vector<std::size_t> clusters;
  std::vector<double> mixture;  // same length, sums to 1
};

/// Draws a 1-3 cluster mixture with random (bounded) weights.
UserTaste DrawUserTaste(std::size_t num_clusters, util::Rng& rng) {
  UserTaste taste;
  const double roll = rng.UniformDouble();
  std::size_t k = roll < 0.30 ? 1 : (roll < 0.75 ? 2 : 3);
  k = std::min(k, num_clusters);
  for (const std::size_t c : rng.SampleWithoutReplacement(num_clusters, k)) {
    taste.clusters.push_back(c);
  }
  double total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    taste.mixture.push_back(rng.UniformDouble(0.5, 1.5));
    total += taste.mixture.back();
  }
  for (auto& w : taste.mixture) w /= total;
  return taste;
}

/// Writes the taste's latent factor (normalized mixture of centers plus
/// noise) into `out`.
void TasteFactor(const UserTaste& taste, const math::Matrix& centers,
                 double cluster_noise, util::Rng& rng, float* out) {
  const std::size_t dim = centers.cols();
  for (std::size_t d = 0; d < dim; ++d) out[d] = 0.0f;
  for (std::size_t j = 0; j < taste.clusters.size(); ++j) {
    copyattack::math::Axpy(static_cast<float>(taste.mixture[j]),
                           centers.Row(taste.clusters[j]), out, dim);
  }
  for (std::size_t d = 0; d < dim; ++d) {
    out[d] += static_cast<float>(rng.Normal(0.0, cluster_noise));
  }
  copyattack::math::NormalizeL2(out, dim);
}

/// Builds the per-item sampling weights for one user as a *mixture of
/// exponentials* over the user's taste clusters:
/// weight_i = popularity_i * sum_j mixture_j * exp(affinity * <c_j, q_i>),
/// restricted to `allowed` items. (A mixture of exponentials keeps every
/// member cluster represented; an exponential of the mixed factor would
/// collapse onto the dominant cluster.)
std::vector<double> UserItemWeights(const UserTaste& taste,
                                    const math::Matrix& centers,
                                    const math::Matrix& item_factors,
                                    const std::vector<double>& popularity,
                                    const std::vector<bool>& allowed,
                                    double affinity_weight) {
  const std::size_t num_items = item_factors.rows();
  const std::size_t dim = item_factors.cols();
  std::vector<double> weights(num_items, 0.0);
  for (std::size_t i = 0; i < num_items; ++i) {
    if (!allowed[i]) continue;
    double taste_term = 0.0;
    for (std::size_t j = 0; j < taste.clusters.size(); ++j) {
      const float dot = copyattack::math::Dot(
          centers.Row(taste.clusters[j]), item_factors.Row(i), dim);
      taste_term += taste.mixture[j] * std::exp(affinity_weight * dot);
    }
    weights[i] = popularity[i] * taste_term;
  }
  return weights;
}

}  // namespace

SyntheticConfig SyntheticConfig::SmallCross() {
  SyntheticConfig config;
  config.name = "SmallCross (ML10M-FX analog)";
  config.num_items = 800;
  config.overlap_items = 600;
  config.num_target_users = 1600;
  config.num_source_users = 8000;
  config.seed = 7;
  return config;
}

SyntheticConfig SyntheticConfig::LargeCross() {
  SyntheticConfig config;
  config.name = "LargeCross (ML20M-NF analog)";
  config.num_items = 1100;
  config.overlap_items = 700;
  config.num_target_users = 2600;
  config.num_source_users = 20000;
  config.source_profile_min = 14;
  config.source_profile_max = 130;
  config.seed = 13;
  return config;
}

SyntheticConfig SyntheticConfig::Tiny() {
  SyntheticConfig config;
  config.name = "Tiny (unit tests)";
  config.num_items = 60;
  config.overlap_items = 40;
  config.num_target_users = 80;
  config.num_source_users = 120;
  config.num_clusters = 4;
  config.target_profile_min = 4;
  config.target_profile_max = 12;
  config.source_profile_min = 5;
  config.source_profile_max = 16;
  config.seed = 3;
  return config;
}

SyntheticWorld GenerateSyntheticWorld(const SyntheticConfig& config) {
  CA_CHECK_GT(config.num_items, 0U);
  CA_CHECK_LE(config.overlap_items, config.num_items);
  CA_CHECK_GT(config.overlap_items, 0U);
  CA_CHECK_GT(config.num_clusters, 0U);
  CA_CHECK_GT(config.latent_dim, 0U);

  util::Rng rng(config.seed);
  SyntheticWorld world(config);

  // --- Latent structure ------------------------------------------------
  math::Matrix centers(config.num_clusters, config.latent_dim);
  centers.FillNormal(rng, 0.0f, 1.0f);
  for (std::size_t c = 0; c < config.num_clusters; ++c) {
    math::NormalizeL2(centers.Row(c), config.latent_dim);
  }

  world.item_factors.Resize(config.num_items, config.latent_dim);
  world.item_cluster.resize(config.num_items);
  for (std::size_t i = 0; i < config.num_items; ++i) {
    const std::size_t c =
        static_cast<std::size_t>(rng.UniformUint64(config.num_clusters));
    world.item_cluster[i] = c;
    float* row = world.item_factors.Row(i);
    for (std::size_t d = 0; d < config.latent_dim; ++d) {
      row[d] = centers(c, d) +
               static_cast<float>(rng.Normal(0.0, config.cluster_noise));
    }
    math::NormalizeL2(row, config.latent_dim);
  }

  // --- Popularity: Zipf over a random permutation of items --------------
  const std::vector<double> zipf =
      math::ZipfWeights(config.num_items, config.zipf_exponent);
  std::vector<std::size_t> popularity_rank(config.num_items);
  for (std::size_t i = 0; i < config.num_items; ++i) popularity_rank[i] = i;
  rng.Shuffle(popularity_rank);
  std::vector<double> popularity(config.num_items);
  for (std::size_t i = 0; i < config.num_items; ++i) {
    popularity[i] = zipf[popularity_rank[i]];
  }

  // --- Overlap set -------------------------------------------------------
  const auto overlap_picks = rng.SampleWithoutReplacement(
      config.num_items, config.overlap_items);
  for (const std::size_t item : overlap_picks) {
    world.dataset.overlap[item] = true;
  }
  const std::vector<bool> all_items(config.num_items, true);

  // --- Target-domain users ------------------------------------------------
  world.target_user_factors.Resize(config.num_target_users,
                                   config.latent_dim);
  for (std::size_t u = 0; u < config.num_target_users; ++u) {
    const UserTaste taste = DrawUserTaste(config.num_clusters, rng);
    float* row = world.target_user_factors.Row(u);
    TasteFactor(taste, centers, config.cluster_noise, rng, row);

    const auto weights =
        UserItemWeights(taste, centers, world.item_factors, popularity,
                        all_items, config.affinity_weight);
    const math::AliasTable table(weights);
    const std::size_t length = DrawProfileLength(
        config.target_profile_min, config.target_profile_max, rng);
    Profile profile = SampleProfile(table, weights, length, rng);
    OrderProfileByCluster(profile, world.item_cluster, config.num_clusters,
                          rng);
    world.dataset.target.AddUser(std::move(profile));
  }

  // --- Source-domain users (overlap items only) ---------------------------
  world.source_user_factors.Resize(config.num_source_users,
                                   config.latent_dim);
  for (std::size_t u = 0; u < config.num_source_users; ++u) {
    const UserTaste taste = DrawUserTaste(config.num_clusters, rng);
    float* row = world.source_user_factors.Row(u);
    TasteFactor(taste, centers, config.cluster_noise, rng, row);

    const auto weights =
        UserItemWeights(taste, centers, world.item_factors, popularity,
                        world.dataset.overlap, config.affinity_weight);
    const math::AliasTable table(weights);
    const std::size_t length = DrawProfileLength(
        config.source_profile_min, config.source_profile_max, rng);
    Profile profile = SampleProfile(table, weights, length, rng);
    OrderProfileByCluster(profile, world.item_cluster, config.num_clusters,
                          rng);
    world.dataset.source.AddUser(std::move(profile));
  }

  // --- Guarantee every overlapping item has at least one source holder ----
  // (the paper assumes the target item always exists in the source domain,
  // so masking can never eliminate the whole tree).
  for (ItemId item = 0; item < config.num_items; ++item) {
    if (!world.dataset.overlap[item]) continue;
    if (!world.dataset.source.ItemProfile(item).empty()) continue;
    for (std::size_t attempt = 0; attempt < 64; ++attempt) {
      const UserId u = static_cast<UserId>(
          rng.UniformUint64(world.dataset.source.num_users()));
      if (!world.dataset.source.HasInteraction(u, item)) {
        world.dataset.source.AppendInteraction(u, item);
        break;
      }
    }
  }

  return world;
}

}  // namespace copyattack::data
