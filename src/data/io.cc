#include "data/io.h"

#include <map>
#include <utility>

#include "util/check.h"
#include "util/csv.h"
#include "util/string_utils.h"

namespace copyattack::data {
namespace {

/// Records a typed failure (when the caller asked for one) and returns
/// false so load paths can `return Fail(...)` in one expression.
bool Fail(IoError* error, const std::string& file, std::size_t line,
          std::string message) {
  if (error != nullptr) {
    error->file = file;
    error->line = line;
    error->message = std::move(message);
  }
  return false;
}

bool SaveDomain(const Dataset& domain, const std::string& path) {
  util::CsvWriter writer(path, {"user", "item", "position"});
  if (!writer.ok()) return false;
  for (const Interaction& interaction : domain.AllInteractions()) {
    writer.WriteRow({std::to_string(interaction.user),
                     std::to_string(interaction.item),
                     std::to_string(interaction.position)});
  }
  writer.Flush();
  return true;
}

/// Reads `<path>` and appends its users to `domain`. Interactions must be
/// grouped by user with ascending positions (the format SaveDomain emits).
/// Data row i lives on file line i + 2 (line 1 is the header).
bool LoadDomain(const std::string& path, Dataset* domain, IoError* error) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  if (!util::ReadCsv(path, &header, &rows)) {
    return Fail(error, path, 0, "cannot open file");
  }
  if (header != std::vector<std::string>{"user", "item", "position"}) {
    return Fail(error, path, 1, "expected header user,item,position");
  }
  std::map<std::size_t, std::map<std::size_t, std::size_t>> by_user;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const std::size_t line = i + 2;
    if (row.size() != 3) {
      return Fail(error, path, line,
                  "expected 3 fields, got " + std::to_string(row.size()));
    }
    std::size_t user = 0, item = 0, position = 0;
    if (!util::ParseSizeT(row[0], &user) ||
        !util::ParseSizeT(row[1], &item) ||
        !util::ParseSizeT(row[2], &position)) {
      return Fail(error, path, line, "non-numeric field");
    }
    if (item >= domain->num_items()) {
      return Fail(error, path, line,
                  "item id " + std::to_string(item) + " out of range (" +
                      std::to_string(domain->num_items()) + " items)");
    }
    by_user[user][position] = item;
  }
  std::size_t expected_user = 0;
  for (const auto& [user, positions] : by_user) {
    if (user != expected_user++) {
      return Fail(error, path, 0,
                  "user ids not dense: missing user " +
                      std::to_string(expected_user - 1));
    }
    Profile profile;
    profile.reserve(positions.size());
    std::size_t expected_pos = 0;
    for (const auto& [position, item] : positions) {
      if (position != expected_pos++) {
        return Fail(error, path, 0,
                    "user " + std::to_string(user) +
                        " positions not dense: missing position " +
                        std::to_string(expected_pos - 1));
      }
      profile.push_back(static_cast<ItemId>(item));
    }
    domain->AddUser(std::move(profile));
  }
  return true;
}

}  // namespace

std::string IoError::Format() const {
  std::string out = file;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
  }
  out += ": ";
  out += message;
  return out;
}

bool SaveCrossDomain(const CrossDomainDataset& dataset,
                     const std::string& path_prefix) {
  {
    util::CsvWriter meta(path_prefix + ".meta.csv",
                         {"name", "num_items", "overlap_bits"});
    if (!meta.ok()) return false;
    std::string bits(dataset.overlap.size(), '0');
    for (std::size_t i = 0; i < dataset.overlap.size(); ++i) {
      if (dataset.overlap[i]) bits[i] = '1';
    }
    meta.WriteRow({dataset.name,
                   std::to_string(dataset.target.num_items()), bits});
    meta.Flush();
  }
  return SaveDomain(dataset.target, path_prefix + ".target.csv") &&
         SaveDomain(dataset.source, path_prefix + ".source.csv");
}

bool LoadCrossDomain(const std::string& path_prefix, CrossDomainDataset* out,
                     IoError* error) {
  CA_CHECK(out != nullptr);
  const std::string meta_path = path_prefix + ".meta.csv";
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  if (!util::ReadCsv(meta_path, &header, &rows)) {
    return Fail(error, meta_path, 0, "cannot open file");
  }
  if (rows.size() != 1 || rows[0].size() != 3) {
    return Fail(error, meta_path, 2, "expected exactly one 3-field row");
  }
  std::size_t num_items = 0;
  if (!util::ParseSizeT(rows[0][1], &num_items) || num_items == 0) {
    return Fail(error, meta_path, 2, "bad num_items '" + rows[0][1] + "'");
  }
  const std::string& bits = rows[0][2];
  if (bits.size() != num_items) {
    return Fail(error, meta_path, 2,
                "overlap_bits length " + std::to_string(bits.size()) +
                    " != num_items " + std::to_string(num_items));
  }

  CrossDomainDataset loaded(rows[0][0], num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    loaded.overlap[i] = bits[i] == '1';
  }
  if (!LoadDomain(path_prefix + ".target.csv", &loaded.target, error)) {
    return false;
  }
  if (!LoadDomain(path_prefix + ".source.csv", &loaded.source, error)) {
    return false;
  }
  *out = std::move(loaded);
  return true;
}

}  // namespace copyattack::data
