#include "data/io.h"

#include <map>

#include "util/check.h"
#include "util/csv.h"
#include "util/string_utils.h"

namespace copyattack::data {
namespace {

bool SaveDomain(const Dataset& domain, const std::string& path) {
  util::CsvWriter writer(path, {"user", "item", "position"});
  if (!writer.ok()) return false;
  for (const Interaction& interaction : domain.AllInteractions()) {
    writer.WriteRow({std::to_string(interaction.user),
                     std::to_string(interaction.item),
                     std::to_string(interaction.position)});
  }
  writer.Flush();
  return true;
}

/// Reads `<path>` and appends its users to `domain`. Interactions must be
/// grouped by user with ascending positions (the format SaveDomain emits).
bool LoadDomain(const std::string& path, Dataset* domain) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  if (!util::ReadCsv(path, &header, &rows)) return false;
  if (header != std::vector<std::string>{"user", "item", "position"}) {
    return false;
  }
  std::map<std::size_t, std::map<std::size_t, std::size_t>> by_user;
  for (const auto& row : rows) {
    if (row.size() != 3) return false;
    std::size_t user = 0, item = 0, position = 0;
    if (!util::ParseSizeT(row[0], &user) ||
        !util::ParseSizeT(row[1], &item) ||
        !util::ParseSizeT(row[2], &position)) {
      return false;
    }
    by_user[user][position] = item;
  }
  std::size_t expected_user = 0;
  for (const auto& [user, positions] : by_user) {
    if (user != expected_user++) return false;  // ids must be dense
    Profile profile;
    profile.reserve(positions.size());
    std::size_t expected_pos = 0;
    for (const auto& [position, item] : positions) {
      if (position != expected_pos++) return false;
      if (item >= domain->num_items()) return false;
      profile.push_back(static_cast<ItemId>(item));
    }
    domain->AddUser(std::move(profile));
  }
  return true;
}

}  // namespace

bool SaveCrossDomain(const CrossDomainDataset& dataset,
                     const std::string& path_prefix) {
  {
    util::CsvWriter meta(path_prefix + ".meta.csv",
                         {"name", "num_items", "overlap_bits"});
    if (!meta.ok()) return false;
    std::string bits(dataset.overlap.size(), '0');
    for (std::size_t i = 0; i < dataset.overlap.size(); ++i) {
      if (dataset.overlap[i]) bits[i] = '1';
    }
    meta.WriteRow({dataset.name,
                   std::to_string(dataset.target.num_items()), bits});
    meta.Flush();
  }
  return SaveDomain(dataset.target, path_prefix + ".target.csv") &&
         SaveDomain(dataset.source, path_prefix + ".source.csv");
}

bool LoadCrossDomain(const std::string& path_prefix,
                     CrossDomainDataset* out) {
  CA_CHECK(out != nullptr);
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  if (!util::ReadCsv(path_prefix + ".meta.csv", &header, &rows)) {
    return false;
  }
  if (rows.size() != 1 || rows[0].size() != 3) return false;
  std::size_t num_items = 0;
  if (!util::ParseSizeT(rows[0][1], &num_items) || num_items == 0) {
    return false;
  }
  const std::string& bits = rows[0][2];
  if (bits.size() != num_items) return false;

  CrossDomainDataset loaded(rows[0][0], num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    loaded.overlap[i] = bits[i] == '1';
  }
  if (!LoadDomain(path_prefix + ".target.csv", &loaded.target)) return false;
  if (!LoadDomain(path_prefix + ".source.csv", &loaded.source)) return false;
  *out = std::move(loaded);
  return true;
}

}  // namespace copyattack::data
