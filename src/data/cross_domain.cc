#include "data/cross_domain.h"

namespace copyattack::data {

std::size_t CrossDomainDataset::OverlapCount() const {
  std::size_t count = 0;
  for (const bool flag : overlap) {
    if (flag) ++count;
  }
  return count;
}

std::vector<ItemId> CrossDomainDataset::OverlapItems() const {
  std::vector<ItemId> items;
  for (ItemId i = 0; i < overlap.size(); ++i) {
    if (overlap[i]) items.push_back(i);
  }
  return items;
}

bool CrossDomainDataset::SourceRespectsOverlap() const {
  for (UserId u = 0; u < source.num_users(); ++u) {
    for (const ItemId item : source.UserProfile(u)) {
      if (!overlap[item]) return false;
    }
  }
  return true;
}

}  // namespace copyattack::data
