#include "data/dataset.h"

#include <algorithm>

#include "util/check.h"

namespace copyattack::data {

namespace {

/// RAII claim on a dataset's mutation sentinel. The exchange/store pair is
/// sequentially consistent, so back-to-back mutations from different
/// threads synchronize through the flag and the fatal check fires before
/// any overlapping writer touches the underlying vectors.
class ScopedMutation {
 public:
  explicit ScopedMutation(internal_dataset::MutationSentinel& sentinel)
      : sentinel_(sentinel) {
    CA_CHECK(!sentinel_.busy.exchange(true))
        << "concurrent Dataset mutation — datasets are single-writer; give "
           "each thread its own environment/dataset";
  }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
  ~ScopedMutation() { sentinel_.busy.store(false); }

 private:
  internal_dataset::MutationSentinel& sentinel_;
};

}  // namespace

Dataset::Dataset(std::size_t num_items)
    : num_items_(num_items), item_profiles_(num_items) {
  CA_CHECK_GT(num_items, 0U);
}

UserId Dataset::AddUser(Profile profile) {
  ScopedMutation mutation(mutation_sentinel_);
  const UserId user = static_cast<UserId>(profiles_.size());
  std::vector<ItemId> sorted = profile;
  std::sort(sorted.begin(), sorted.end());
  CA_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "duplicate item in profile of user " << user;
  for (const ItemId item : profile) {
    CA_CHECK_LT(item, num_items_);
    item_profiles_[item].push_back(user);
  }
  num_interactions_ += profile.size();
  profiles_.push_back(std::move(profile));
  sorted_items_.push_back(std::move(sorted));
  return user;
}

void Dataset::AppendInteraction(UserId user, ItemId item) {
  ScopedMutation mutation(mutation_sentinel_);
  CA_CHECK_LT(user, profiles_.size());
  CA_CHECK_LT(item, num_items_);
  CA_CHECK(!HasInteraction(user, item))
      << "user " << user << " already interacted with item " << item;
  profiles_[user].push_back(item);
  auto& sorted = sorted_items_[user];
  sorted.insert(std::upper_bound(sorted.begin(), sorted.end(), item), item);
  item_profiles_[item].push_back(user);
  ++num_interactions_;
  if (journaling_) append_journal_.emplace_back(user, item);
}

DatasetCheckpoint Dataset::Checkpoint() {
  ScopedMutation mutation(mutation_sentinel_);
  journaling_ = true;
  DatasetCheckpoint checkpoint;
  checkpoint.num_users = profiles_.size();
  checkpoint.num_interactions = num_interactions_;
  checkpoint.journal_size = append_journal_.size();
  checkpoint.item_profile_sizes.reserve(num_items_);
  for (const auto& item_profile : item_profiles_) {
    checkpoint.item_profile_sizes.push_back(
        static_cast<std::uint32_t>(item_profile.size()));
  }
  return checkpoint;
}

void Dataset::RollbackTo(const DatasetCheckpoint& checkpoint) {
  ScopedMutation mutation(mutation_sentinel_);
  CA_CHECK(journaling_) << "RollbackTo without a prior Checkpoint";
  CA_CHECK_LE(checkpoint.num_users, profiles_.size());
  CA_CHECK_LE(checkpoint.journal_size, append_journal_.size());
  CA_CHECK_EQ(checkpoint.item_profile_sizes.size(), num_items_);

  // Truncates `item`'s inverted list back to its checkpointed length.
  // Idempotent, so items touched by several appended users cost one
  // resize each time but converge to the same state.
  const auto truncate_item = [&](ItemId item) {
    auto& item_profile = item_profiles_[item];
    const std::size_t base = checkpoint.item_profile_sizes[item];
    if (item_profile.size() > base) item_profile.resize(base);
  };

  // Undo interactions appended to users that survive the rollback, newest
  // first (each user's appends are popped in reverse insertion order).
  for (std::size_t j = append_journal_.size(); j > checkpoint.journal_size;
       --j) {
    const auto [user, item] = append_journal_[j - 1];
    truncate_item(item);
    if (user >= checkpoint.num_users) continue;  // removed wholesale below
    CA_CHECK(!profiles_[user].empty());
    CA_CHECK_EQ(profiles_[user].back(), item);
    profiles_[user].pop_back();
    auto& sorted = sorted_items_[user];
    sorted.erase(std::lower_bound(sorted.begin(), sorted.end(), item));
  }
  append_journal_.resize(checkpoint.journal_size);

  // Drop appended users and their inverted-list entries.
  for (std::size_t u = checkpoint.num_users; u < profiles_.size(); ++u) {
    for (const ItemId item : profiles_[u]) truncate_item(item);
  }
  profiles_.resize(checkpoint.num_users);
  sorted_items_.resize(checkpoint.num_users);
  num_interactions_ = checkpoint.num_interactions;
}

const Profile& Dataset::UserProfile(UserId user) const {
  CA_CHECK_LT(user, profiles_.size());
  return profiles_[user];
}

const std::vector<UserId>& Dataset::ItemProfile(ItemId item) const {
  CA_CHECK_LT(item, num_items_);
  return item_profiles_[item];
}

bool Dataset::HasInteraction(UserId user, ItemId item) const {
  CA_CHECK_LT(user, profiles_.size());
  const auto& sorted = sorted_items_[user];
  return std::binary_search(sorted.begin(), sorted.end(), item);
}

std::vector<Interaction> Dataset::AllInteractions() const {
  std::vector<Interaction> interactions;
  interactions.reserve(num_interactions_);
  for (UserId u = 0; u < profiles_.size(); ++u) {
    const Profile& profile = profiles_[u];
    for (std::uint32_t pos = 0; pos < profile.size(); ++pos) {
      interactions.push_back({u, profile[pos], pos});
    }
  }
  return interactions;
}

std::vector<ItemId> Dataset::ItemsByPopularity() const {
  std::vector<ItemId> items(num_items_);
  for (ItemId i = 0; i < num_items_; ++i) items[i] = i;
  std::stable_sort(items.begin(), items.end(), [this](ItemId a, ItemId b) {
    return item_profiles_[a].size() > item_profiles_[b].size();
  });
  return items;
}

double Dataset::MeanProfileLength() const {
  if (profiles_.empty()) return 0.0;
  return static_cast<double>(num_interactions_) /
         static_cast<double>(profiles_.size());
}

}  // namespace copyattack::data
