#include "data/dataset.h"

#include <algorithm>

#include "util/check.h"

namespace copyattack::data {

Dataset::Dataset(std::size_t num_items)
    : num_items_(num_items), item_profiles_(num_items) {
  CA_CHECK_GT(num_items, 0U);
}

UserId Dataset::AddUser(Profile profile) {
  const UserId user = static_cast<UserId>(profiles_.size());
  std::vector<ItemId> sorted = profile;
  std::sort(sorted.begin(), sorted.end());
  CA_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "duplicate item in profile of user " << user;
  for (const ItemId item : profile) {
    CA_CHECK_LT(item, num_items_);
    item_profiles_[item].push_back(user);
  }
  num_interactions_ += profile.size();
  profiles_.push_back(std::move(profile));
  sorted_items_.push_back(std::move(sorted));
  return user;
}

void Dataset::AppendInteraction(UserId user, ItemId item) {
  CA_CHECK_LT(user, profiles_.size());
  CA_CHECK_LT(item, num_items_);
  CA_CHECK(!HasInteraction(user, item))
      << "user " << user << " already interacted with item " << item;
  profiles_[user].push_back(item);
  auto& sorted = sorted_items_[user];
  sorted.insert(std::upper_bound(sorted.begin(), sorted.end(), item), item);
  item_profiles_[item].push_back(user);
  ++num_interactions_;
}

const Profile& Dataset::UserProfile(UserId user) const {
  CA_CHECK_LT(user, profiles_.size());
  return profiles_[user];
}

const std::vector<UserId>& Dataset::ItemProfile(ItemId item) const {
  CA_CHECK_LT(item, num_items_);
  return item_profiles_[item];
}

bool Dataset::HasInteraction(UserId user, ItemId item) const {
  CA_CHECK_LT(user, profiles_.size());
  const auto& sorted = sorted_items_[user];
  return std::binary_search(sorted.begin(), sorted.end(), item);
}

std::vector<Interaction> Dataset::AllInteractions() const {
  std::vector<Interaction> interactions;
  interactions.reserve(num_interactions_);
  for (UserId u = 0; u < profiles_.size(); ++u) {
    const Profile& profile = profiles_[u];
    for (std::uint32_t pos = 0; pos < profile.size(); ++pos) {
      interactions.push_back({u, profile[pos], pos});
    }
  }
  return interactions;
}

std::vector<ItemId> Dataset::ItemsByPopularity() const {
  std::vector<ItemId> items(num_items_);
  for (ItemId i = 0; i < num_items_; ++i) items[i] = i;
  std::stable_sort(items.begin(), items.end(), [this](ItemId a, ItemId b) {
    return item_profiles_[a].size() > item_profiles_[b].size();
  });
  return items;
}

double Dataset::MeanProfileLength() const {
  if (profiles_.empty()) return 0.0;
  return static_cast<double>(num_interactions_) /
         static_cast<double>(profiles_.size());
}

}  // namespace copyattack::data
