#include "data/split.h"

#include <algorithm>

#include "util/check.h"

namespace copyattack::data {

TrainValidTestSplit SplitDataset(const Dataset& full, util::Rng& rng,
                                 double valid_fraction,
                                 double test_fraction) {
  CA_CHECK_GE(valid_fraction, 0.0);
  CA_CHECK_GE(test_fraction, 0.0);
  CA_CHECK_LT(valid_fraction + test_fraction, 1.0);

  TrainValidTestSplit split(full.num_items());
  for (UserId u = 0; u < full.num_users(); ++u) {
    const Profile& profile = full.UserProfile(u);
    const std::size_t n = profile.size();

    std::size_t n_valid = 0;
    std::size_t n_test = 0;
    if (n >= 3) {
      n_valid = static_cast<std::size_t>(
          static_cast<double>(n) * valid_fraction + 0.5);
      n_test = static_cast<std::size_t>(
          static_cast<double>(n) * test_fraction + 0.5);
      // Keep at least one training interaction; hold out at least one each
      // of valid/test for users long enough to afford it.
      if (n_valid == 0) n_valid = 1;
      if (n_test == 0) n_test = 1;
      while (n_valid + n_test >= n) {
        if (n_valid > n_test && n_valid > 0) {
          --n_valid;
        } else if (n_test > 0) {
          --n_test;
        } else {
          break;
        }
      }
    }

    // Choose held-out positions uniformly at random.
    const auto held_positions =
        rng.SampleWithoutReplacement(n, n_valid + n_test);
    std::vector<bool> held(n, false);
    for (const std::size_t pos : held_positions) held[pos] = true;

    Profile train_profile;
    train_profile.reserve(n - n_valid - n_test);
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (!held[pos]) train_profile.push_back(profile[pos]);
    }
    const UserId train_user = split.train.AddUser(std::move(train_profile));
    CA_CHECK_EQ(train_user, u);

    for (std::size_t i = 0; i < held_positions.size(); ++i) {
      const ItemId item = profile[held_positions[i]];
      if (i < n_valid) {
        split.valid.push_back({u, item});
      } else {
        split.test.push_back({u, item});
      }
    }
  }
  return split;
}

}  // namespace copyattack::data
