#ifndef COPYATTACK_DATA_IO_H_
#define COPYATTACK_DATA_IO_H_

#include <cstddef>
#include <string>

#include "data/cross_domain.h"

namespace copyattack::data {

/// Typed load failure: which file was bad, where, and why. A mid-campaign
/// loader must degrade gracefully instead of CHECK-aborting, so every
/// reject path reports enough context to fix the input.
struct IoError {
  std::string file;      ///< path of the offending file
  std::size_t line = 0;  ///< 1-based line in that file; 0 = whole file
  std::string message;

  /// "path:line: message" (line omitted when 0).
  std::string Format() const;
};

/// Persists a dataset pair to three CSV files under `path_prefix`:
/// `<prefix>.meta.csv` (name, item count, overlap flags),
/// `<prefix>.target.csv` and `<prefix>.source.csv`
/// (columns `user,item,position`). Returns false on I/O failure.
bool SaveCrossDomain(const CrossDomainDataset& dataset,
                     const std::string& path_prefix);

/// Loads a dataset pair previously written by `SaveCrossDomain` into
/// `*out`. `*out` is replaced on success; untouched on failure. On
/// failure, `*error` (when non-null) describes the first defect with
/// file:line context — unreadable file, bad header, malformed row,
/// out-of-range ids, or non-dense user/position numbering.
bool LoadCrossDomain(const std::string& path_prefix, CrossDomainDataset* out,
                     IoError* error = nullptr);

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_IO_H_
