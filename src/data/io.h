#ifndef COPYATTACK_DATA_IO_H_
#define COPYATTACK_DATA_IO_H_

#include <string>

#include "data/cross_domain.h"

namespace copyattack::data {

/// Persists a dataset pair to three CSV files under `path_prefix`:
/// `<prefix>.meta.csv` (name, item count, overlap flags),
/// `<prefix>.target.csv` and `<prefix>.source.csv`
/// (columns `user,item,position`). Returns false on I/O failure.
bool SaveCrossDomain(const CrossDomainDataset& dataset,
                     const std::string& path_prefix);

/// Loads a dataset pair previously written by `SaveCrossDomain` into
/// `*out`. `*out` is replaced on success; untouched on failure.
bool LoadCrossDomain(const std::string& path_prefix, CrossDomainDataset* out);

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_IO_H_
