#ifndef COPYATTACK_DATA_SYNTHETIC_H_
#define COPYATTACK_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/cross_domain.h"
#include "math/matrix.h"

namespace copyattack::data {

/// Configuration of the synthetic cross-domain world generator.
///
/// The real paper datasets (MovieLens10M+Flixster, MovieLens20M+Netflix) are
/// not redistributable, so this generator produces laptop-scale worlds with
/// the four structural properties the attack depends on (DESIGN.md §2):
/// item overlap between domains, cross-domain preference correlation,
/// Zipf-skewed item popularity, and a cold tail of target items.
struct SyntheticConfig {
  /// Dataset pair name stamped onto the result.
  std::string name = "SmallCross";

  std::size_t num_items = 800;          ///< shared item universe size
  std::size_t overlap_items = 600;      ///< items present in both domains
  std::size_t num_target_users = 1600;  ///< users in domain A
  std::size_t num_source_users = 4000;  ///< users in domain B

  std::size_t latent_dim = 8;     ///< ground-truth latent dimensionality
  std::size_t num_clusters = 10;  ///< preference/item cluster count

  double zipf_exponent = 1.1;      ///< popularity skew
  double affinity_weight = 6.0;    ///< preference strength in item choice
  double cluster_noise = 0.3;      ///< member scatter around cluster centers

  std::size_t target_profile_min = 8;    ///< min items per target user
  std::size_t target_profile_max = 48;   ///< max items per target user
  std::size_t source_profile_min = 10;   ///< min items per source user
  std::size_t source_profile_max = 90;   ///< max items per source user

  std::uint64_t seed = 7;

  /// ML10M-Flixster-shaped configuration (default; runs in seconds).
  static SyntheticConfig SmallCross();

  /// ML20M-Netflix-shaped configuration: larger source domain with a much
  /// bigger user pool and longer profiles, smaller overlap fraction.
  static SyntheticConfig LargeCross();

  /// Tiny configuration for unit tests.
  static SyntheticConfig Tiny();
};

/// Output of the generator: the dataset pair plus the ground-truth latent
/// factors (useful for diagnostics and tests; the attack never sees them).
struct SyntheticWorld {
  CrossDomainDataset dataset;
  math::Matrix item_factors;          // num_items x latent_dim
  math::Matrix target_user_factors;   // num_target_users x latent_dim
  math::Matrix source_user_factors;   // num_source_users x latent_dim
  std::vector<std::size_t> item_cluster;  // item -> cluster id

  explicit SyntheticWorld(const SyntheticConfig& config)
      : dataset(config.name, config.num_items) {}
};

/// Generates a cross-domain world from `config`. Deterministic in
/// `config.seed`. Every source profile touches only overlapping items, and
/// profiles are ordered so that cluster-mates are adjacent (the sequential
/// structure the crafting window exploits).
SyntheticWorld GenerateSyntheticWorld(const SyntheticConfig& config);

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_SYNTHETIC_H_
