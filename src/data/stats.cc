#include "data/stats.h"

#include <sstream>

namespace copyattack::data {

CrossDomainStats ComputeStats(const CrossDomainDataset& dataset) {
  CrossDomainStats stats;
  stats.name = dataset.name;
  stats.target_users = dataset.target.num_users();
  stats.target_interactions = dataset.target.num_interactions();
  stats.source_users = dataset.source.num_users();
  stats.source_interactions = dataset.source.num_interactions();
  stats.overlapping_items = dataset.OverlapCount();
  for (ItemId i = 0; i < dataset.target.num_items(); ++i) {
    if (!dataset.target.ItemProfile(i).empty()) ++stats.target_items;
  }
  stats.target_mean_profile_len = dataset.target.MeanProfileLength();
  stats.source_mean_profile_len = dataset.source.MeanProfileLength();
  return stats;
}

std::string FormatStats(const CrossDomainStats& stats) {
  std::ostringstream out;
  out << "Dataset: " << stats.name << '\n';
  out << "  Target  # of Users:             " << stats.target_users << '\n';
  out << "  Target  # of Items:             " << stats.target_items << '\n';
  out << "  Target  # of Interactions:      " << stats.target_interactions
      << '\n';
  out << "  Source  # of Users:             " << stats.source_users << '\n';
  out << "  Source  # of Overlapping Items: " << stats.overlapping_items
      << '\n';
  out << "  Source  # of Interactions:      " << stats.source_interactions
      << '\n';
  return out.str();
}

}  // namespace copyattack::data
