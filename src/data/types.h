#ifndef COPYATTACK_DATA_TYPES_H_
#define COPYATTACK_DATA_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace copyattack::data {

/// Dense user index within one domain.
using UserId = std::uint32_t;

/// Dense item index. Within a `CrossDomainDataset` both domains share one
/// item id space (overlapping items are aligned by construction, mirroring
/// the paper's "aligned by movie names" preprocessing).
using ItemId = std::uint32_t;

/// Sentinel for "no user".
inline constexpr UserId kNoUser = std::numeric_limits<UserId>::max();

/// Sentinel for "no item".
inline constexpr ItemId kNoItem = std::numeric_limits<ItemId>::max();

/// A user profile is the temporally ordered sequence of items the user
/// interacted with (paper §3: P_u = { v_1 -> ... -> v_l }).
using Profile = std::vector<ItemId>;

/// One (user, item) interaction with its position in the user's sequence.
struct Interaction {
  UserId user;
  ItemId item;
  std::uint32_t position;  // 0-based index within the user's profile

  bool operator==(const Interaction& other) const {
    return user == other.user && item == other.item &&
           position == other.position;
  }
};

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_TYPES_H_
