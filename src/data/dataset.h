#ifndef COPYATTACK_DATA_DATASET_H_
#define COPYATTACK_DATA_DATASET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "data/types.h"
#include "util/annotations.h"

namespace copyattack::data {

namespace internal_dataset {

/// Cheap always-on detector for concurrent mutation of one `Dataset`.
/// Mutating entry points flip `busy` and abort if it was already set — the
/// structure is single-writer by contract (each campaign worker owns its
/// environment's dataset), so an overlap is a caller bug that would
/// otherwise corrupt state silently. Copies and moves reset the flag: the
/// new object starts with no mutation in flight.
struct MutationSentinel {
  MutationSentinel() = default;
  MutationSentinel(const MutationSentinel&) noexcept {}
  MutationSentinel& operator=(const MutationSentinel&) noexcept {
    return *this;
  }
  std::atomic<bool> busy CA_ATOMIC_ONLY{false};
};

}  // namespace internal_dataset

/// A point-in-time marker of a `Dataset` produced by `Dataset::Checkpoint`.
/// Rolling back to it removes every user and interaction appended after the
/// checkpoint was taken. Checkpoints nest: taking a later checkpoint and
/// rolling back to it keeps an earlier one valid, and rolling back to an
/// earlier checkpoint invalidates every later one.
struct DatasetCheckpoint {
  std::size_t num_users = 0;
  std::size_t num_interactions = 0;
  /// Position in the dataset's append journal (interactions appended to
  /// users that already existed) at checkpoint time.
  std::size_t journal_size = 0;
  /// `ItemProfile(i).size()` for every item at checkpoint time; rollback
  /// truncates only the item profiles actually touched afterwards.
  std::vector<std::uint32_t> item_profile_sizes;
};

/// An implicit-feedback interaction dataset for one domain: every user has a
/// temporally ordered profile of item interactions, and every item has a
/// profile of interacting users (paper §3). The structure supports the
/// injection attack directly: `AddUser` appends a new (copied) user and
/// updates the item profiles, polluting the interaction matrix Y.
class Dataset {
 public:
  /// Creates an empty dataset over a fixed item universe of `num_items`.
  explicit Dataset(std::size_t num_items);

  /// Appends a new user with the given ordered profile and returns its id.
  /// Duplicate items within a profile are allowed by the representation but
  /// rejected here (a user interacts with a movie once in the filtered
  /// rating-5 data the paper uses).
  UserId AddUser(Profile profile);

  /// Appends one interaction to an existing user's profile.
  void AppendInteraction(UserId user, ItemId item);

  std::size_t num_users() const { return profiles_.size(); }
  std::size_t num_items() const { return num_items_; }
  std::size_t num_interactions() const { return num_interactions_; }

  /// The ordered item sequence of `user`.
  const Profile& UserProfile(UserId user) const;

  /// The users who interacted with `item`, in insertion order.
  const std::vector<UserId>& ItemProfile(ItemId item) const;

  /// Number of users who interacted with `item` (the item's popularity).
  std::size_t ItemPopularity(ItemId item) const {
    return ItemProfile(item).size();
  }

  /// True if `user` interacted with `item` (O(log profile) lookup).
  bool HasInteraction(UserId user, ItemId item) const;

  /// Flattens all interactions (user order, then sequence order).
  std::vector<Interaction> AllInteractions() const;

  /// Returns items sorted by descending popularity (ties by id).
  std::vector<ItemId> ItemsByPopularity() const;

  /// Average profile length over users; 0 when empty.
  double MeanProfileLength() const;

  /// Records the current extent of the dataset so a later `RollbackTo`
  /// can truncate everything appended afterwards. The first call enables
  /// append journaling (needed to undo `AppendInteraction` on users that
  /// predate the checkpoint). Cost: O(num_items) to snapshot the item
  /// profile sizes — taken once per attack target, amortized over the
  /// episode loop.
  DatasetCheckpoint Checkpoint();

  /// Reverts the dataset to the state captured by `checkpoint`: users
  /// appended since are removed, interactions appended to surviving users
  /// are popped, and the touched item profiles are truncated. Cost is
  /// O(appended interactions), not O(dataset) — this replaces the
  /// per-episode deep copy in the attack environment. `checkpoint` must
  /// originate from this dataset (or a copy sharing its history) and still
  /// describe a prefix of it.
  void RollbackTo(const DatasetCheckpoint& checkpoint);

 private:
  std::size_t num_items_;
  std::size_t num_interactions_ = 0;
  std::vector<Profile> profiles_;                 // ordered, per user
  std::vector<std::vector<ItemId>> sorted_items_; // sorted copy, per user
  std::vector<std::vector<UserId>> item_profiles_;
  /// `AppendInteraction` calls recorded since journaling was enabled by the
  /// first `Checkpoint()`; rollback undoes the suffix past a checkpoint.
  bool journaling_ = false;
  std::vector<std::pair<UserId, ItemId>> append_journal_;
  /// Trips a fatal check when two threads mutate this dataset at once.
  mutable internal_dataset::MutationSentinel mutation_sentinel_;
};

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_DATASET_H_
