#include "data/target_items.h"

#include <algorithm>

#include "util/check.h"

namespace copyattack::data {

std::vector<ItemId> SampleColdTargetItems(const CrossDomainDataset& dataset,
                                          std::size_t count,
                                          std::size_t max_popularity,
                                          util::Rng& rng) {
  std::vector<ItemId> eligible;
  std::vector<ItemId> fallback;
  for (ItemId item = 0; item < dataset.target.num_items(); ++item) {
    if (!dataset.overlap[item]) continue;
    if (dataset.SourceHolders(item).empty()) continue;
    if (dataset.target.ItemPopularity(item) < max_popularity) {
      eligible.push_back(item);
    } else {
      fallback.push_back(item);
    }
  }

  rng.Shuffle(eligible);
  if (eligible.size() > count) {
    eligible.resize(count);
    return eligible;
  }

  // Not enough cold items: fill from the least-popular remaining items.
  std::stable_sort(fallback.begin(), fallback.end(),
                   [&](ItemId a, ItemId b) {
                     return dataset.target.ItemPopularity(a) <
                            dataset.target.ItemPopularity(b);
                   });
  for (const ItemId item : fallback) {
    if (eligible.size() >= count) break;
    eligible.push_back(item);
  }
  return eligible;
}

std::vector<std::vector<ItemId>> SampleTargetsByPopularityGroup(
    const CrossDomainDataset& dataset, std::size_t groups,
    std::size_t count_per_group, util::Rng& rng) {
  CA_CHECK_GT(groups, 0U);
  // Rank overlapping, attackable items by descending popularity.
  std::vector<ItemId> ranked;
  for (ItemId item = 0; item < dataset.target.num_items(); ++item) {
    if (dataset.overlap[item] && !dataset.SourceHolders(item).empty()) {
      ranked.push_back(item);
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&](ItemId a, ItemId b) {
    return dataset.target.ItemPopularity(a) >
           dataset.target.ItemPopularity(b);
  });

  std::vector<std::vector<ItemId>> result(groups);
  if (ranked.empty()) return result;
  const std::size_t per_group =
      (ranked.size() + groups - 1) / groups;  // ceiling
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t begin = g * per_group;
    if (begin >= ranked.size()) break;
    const std::size_t end = std::min(begin + per_group, ranked.size());
    std::vector<ItemId> group(ranked.begin() + begin, ranked.begin() + end);
    rng.Shuffle(group);
    if (group.size() > count_per_group) group.resize(count_per_group);
    result[g] = std::move(group);
  }
  return result;
}

}  // namespace copyattack::data
