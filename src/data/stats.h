#ifndef COPYATTACK_DATA_STATS_H_
#define COPYATTACK_DATA_STATS_H_

#include <string>

#include "data/cross_domain.h"

namespace copyattack::data {

/// Statistics in the shape of the paper's Table 1.
struct CrossDomainStats {
  std::string name;
  std::size_t target_users = 0;
  std::size_t target_items = 0;       // items with >=1 target interaction
  std::size_t target_interactions = 0;
  std::size_t source_users = 0;
  std::size_t overlapping_items = 0;
  std::size_t source_interactions = 0;
  double target_mean_profile_len = 0.0;
  double source_mean_profile_len = 0.0;
};

/// Computes Table-1 statistics for a dataset pair.
CrossDomainStats ComputeStats(const CrossDomainDataset& dataset);

/// Renders the statistics as aligned text rows (used by the Table 1 bench).
std::string FormatStats(const CrossDomainStats& stats);

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_STATS_H_
