#ifndef COPYATTACK_DATA_SPLIT_H_
#define COPYATTACK_DATA_SPLIT_H_

#include <utility>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace copyattack::data {

/// One held-out evaluation pair.
struct HeldOut {
  UserId user;
  ItemId item;
};

/// Result of the 80/10/10 interaction split the paper uses to train the
/// target recommender (§5.1.3). `train` preserves the sequential order of
/// each user's remaining interactions.
struct TrainValidTestSplit {
  Dataset train;
  std::vector<HeldOut> valid;
  std::vector<HeldOut> test;

  explicit TrainValidTestSplit(std::size_t num_items) : train(num_items) {}
};

/// Randomly splits interactions 80/10/10 per user (each user keeps at least
/// one training interaction; users with fewer than 3 interactions
/// contribute to training only). User ids are preserved — user `u` in
/// `full` is user `u` in `train`.
TrainValidTestSplit SplitDataset(const Dataset& full, util::Rng& rng,
                                 double valid_fraction = 0.1,
                                 double test_fraction = 0.1);

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_SPLIT_H_
