#ifndef COPYATTACK_DATA_TARGET_ITEMS_H_
#define COPYATTACK_DATA_TARGET_ITEMS_H_

#include <vector>

#include "data/cross_domain.h"
#include "util/rng.h"

namespace copyattack::data {

/// Samples up to `count` target items for the promotion attack following
/// the paper's protocol (§5.1.3): overlapping items with fewer than
/// `max_popularity` target-domain interactions and at least one source
/// holder (so the masked tree is never empty). If fewer than `count`
/// eligible items exist, the least-popular eligible overlapping items are
/// used to fill the quota.
std::vector<ItemId> SampleColdTargetItems(const CrossDomainDataset& dataset,
                                          std::size_t count,
                                          std::size_t max_popularity,
                                          util::Rng& rng);

/// Splits overlapping items into `groups` popularity groups of (nearly)
/// equal size — group 0 holds the most popular items (Figure 4's x-axis) —
/// and samples up to `count_per_group` attackable items from each group.
/// Items without any source holder are skipped.
std::vector<std::vector<ItemId>> SampleTargetsByPopularityGroup(
    const CrossDomainDataset& dataset, std::size_t groups,
    std::size_t count_per_group, util::Rng& rng);

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_TARGET_ITEMS_H_
