#ifndef COPYATTACK_DATA_CROSS_DOMAIN_H_
#define COPYATTACK_DATA_CROSS_DOMAIN_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/types.h"

namespace copyattack::data {

/// A (target domain A, source domain B) dataset pair with aligned item ids.
///
/// Both domains index items in one shared id space of size
/// `target.num_items()`. Source-domain profiles only contain items flagged
/// in `overlap` (the paper keeps only the overlapping items in the source
/// domain after aligning by movie name, §5.1.1), so a source profile can be
/// copied verbatim into the target domain — which is exactly the attack.
struct CrossDomainDataset {
  /// Human-readable dataset pair name (e.g. "SmallCross (ML10M-FX analog)").
  std::string name;

  /// Target domain A (the recommender under attack).
  Dataset target;

  /// Source domain B (profiles to copy). Shares the item id space of A but
  /// its profiles touch only overlapping items.
  Dataset source;

  /// overlap[i] is true iff item i exists in both domains.
  std::vector<bool> overlap;

  CrossDomainDataset(std::string dataset_name, std::size_t num_items)
      : name(std::move(dataset_name)),
        target(num_items),
        source(num_items),
        overlap(num_items, false) {}

  /// Number of overlapping items |V| = |V_A ∩ V_B|.
  std::size_t OverlapCount() const;

  /// Ids of all overlapping items, ascending.
  std::vector<ItemId> OverlapItems() const;

  /// True if every source interaction touches only overlapping items (the
  /// structural invariant of this container); exposed for property tests.
  bool SourceRespectsOverlap() const;

  /// Source-domain users whose profile contains `item` (the candidates the
  /// masking mechanism keeps for target item `item`).
  const std::vector<UserId>& SourceHolders(ItemId item) const {
    return source.ItemProfile(item);
  }
};

}  // namespace copyattack::data

#endif  // COPYATTACK_DATA_CROSS_DOMAIN_H_
