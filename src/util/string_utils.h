#ifndef COPYATTACK_UTIL_STRING_UTILS_H_
#define COPYATTACK_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace copyattack::util {

/// Splits `text` on `delimiter`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Returns true if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Parses a non-negative integer. Returns false on malformed input.
bool ParseSizeT(std::string_view text, std::size_t* out);

/// Parses a double. Returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_STRING_UTILS_H_
