#ifndef COPYATTACK_UTIL_STOPWATCH_H_
#define COPYATTACK_UTIL_STOPWATCH_H_

#include <chrono>

namespace copyattack::util {

/// Simple monotonic-clock stopwatch used for experiment wall-clock reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Returns the elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns the elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_STOPWATCH_H_
