#ifndef COPYATTACK_UTIL_STOPWATCH_H_
#define COPYATTACK_UTIL_STOPWATCH_H_

#include "obs/time.h"

namespace copyattack::util {

/// Compatibility shim: the stopwatch implementation moved into the
/// observability subsystem (obs/time.h) so the repository has exactly one
/// timing facility. New code should include obs/time.h (or use OBS_SPAN /
/// OBS_SCOPED_TIMER_US from obs/obs.h) directly.
using Stopwatch = obs::Stopwatch;

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_STOPWATCH_H_
