#ifndef COPYATTACK_UTIL_ANNOTATIONS_H_
#define COPYATTACK_UTIL_ANNOTATIONS_H_

/// Thread-safety annotation macros for the concurrency contracts that PR 1's
/// parallelism introduced (shared ThreadPool, sharded MetricsRegistry,
/// per-thread TraceRecorder rings, single-writer Dataset).
///
/// The annotations are checked twice:
///
///  1. Always, by `copyattack-analyze --pass=thread` (tools/analyze/): a
///     tokenizer-level pass that flags reads/writes of a `CA_GUARDED_BY(m)`
///     field from any method body that neither locks `m` (std::lock_guard /
///     unique_lock / scoped_lock / shared_lock / m.lock()) nor carries
///     `CA_REQUIRES(m)`, and verifies `CA_ATOMIC_ONLY` fields are declared
///     with a std::atomic type. Runs under `ctest -L lint` on every preset.
///  2. Under Clang with COPYATTACK_THREAD_SAFETY=ON (the default when the
///     compiler supports it), where the macros expand to the real Clang
///     thread-safety attributes and `-Wthread-safety` re-derives the same
///     contracts from the compiler's own semantic analysis. Full-precision
///     checking needs a standard library whose mutex types carry capability
///     annotations (libc++ with _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS);
///     with libstdc++ the attributes are accepted but only partially
///     enforced. GCC ignores the attributes entirely — pass 1 is the
///     compiler-independent backstop.
///
/// This header is deliberately include-free so every module (including the
/// leaf `obs` layer, which otherwise depends only on the standard library)
/// can use it without creating a dependency edge; it is declared as a
/// `pure_header` in tools/analyze/layers.toml for exactly that reason.
///
/// Usage:
///
///   std::queue<Task> tasks_ CA_GUARDED_BY(mutex_);   // lock mutex_ first
///   void DrainLocked() CA_REQUIRES(mutex_);          // caller holds mutex_
///   std::atomic<bool> busy CA_ATOMIC_ONLY{false};    // lock-free by design

#if defined(__clang__) && defined(COPYATTACK_THREAD_SAFETY_ANALYSIS) && \
    defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CA_THREAD_ANNOTATION
#define CA_THREAD_ANNOTATION(x)  // no-op: contracts checked by copyattack-analyze
#endif

/// Field may only be read or written while holding mutex `m`.
#define CA_GUARDED_BY(m) CA_THREAD_ANNOTATION(guarded_by(m))

/// Function may only be called while holding mutex `m` (the caller locks).
#define CA_REQUIRES(m) CA_THREAD_ANNOTATION(requires_capability(m))

/// Field is accessed lock-free and must therefore be a std::atomic type.
/// Carries no Clang equivalent; enforced by copyattack-analyze alone.
#define CA_ATOMIC_ONLY

/// ---- State-integrity annotations (checked by copyattack-analyze only) ----
///
/// CA_CHECKPOINTED marks a type whose instances participate in the repo's
/// crash-safe checkpoint/resume contract: every non-static data member must
/// be referenced by both the save and the load serializer, in the same
/// order, or carry an explicit CA_NOT_CHECKPOINTED(reason) waiver. The
/// analyzer's `checkpoint` pass (rules ckpt-missing-member,
/// ckpt-order-mismatch, ckpt-no-serializer) enforces this, so adding a
/// field without serializing it fails `ctest -L lint` instead of silently
/// breaking bit-identical resume.
///
/// Placement: after the class name, before any base clause or `final`:
///
///   struct RngState CA_CHECKPOINTED(WriteRngState, ReadRngState) { ... };
///   class CopyAttack CA_CHECKPOINTED(SaveState, LoadState) final { ... };
///
/// The two arguments name the save and load functions. With no arguments
/// they default to SaveState/LoadState; a name may be qualified
/// (`Owner::Fn`) when the serializer is a method of another class. The
/// macro expands to nothing — the names are read back out of the source by
/// the analyzer.
#define CA_CHECKPOINTED(...)

/// Waives the checkpoint-coverage requirement for one member, with a
/// mandatory human-readable reason (borrowed pointer, pure configuration,
/// per-episode transient, ...). Trails the member declaration:
///
///   const data::CrossDomainDataset* dataset_
///       CA_NOT_CHECKPOINTED("borrowed; rebound on load") = nullptr;
#define CA_NOT_CHECKPOINTED(reason)

/// Declares a lock-ordering edge: while holding this mutex it is legal to
/// acquire each mutex named in the argument list (`Class::member` spelling
/// for other classes' mutexes). The analyzer's `lockorder` pass combines
/// these declared edges with RAII-holder nesting observed in function
/// bodies; a cycle (lock-order-cycle) or an observed nesting that
/// contradicts a declared edge (lock-order-contradiction) fails lint, as
/// does a blocking acquisition of any annotated mutex inside a ParallelFor
/// body (lock-in-parallel-for). The zero-argument form registers the mutex
/// with the pass without declaring outgoing edges:
///
///   std::mutex mutex_ CA_ACQUIRED_BEFORE(ThreadBuffer::mutex);
///   std::mutex mutex_ CA_ACQUIRED_BEFORE();  // tracked, leaf order
///
/// Deliberately NOT mapped to Clang's acquired_before attribute: qualified
/// arguments and the zero-argument form are not valid attribute
/// expressions, and the analyzer needs the exact source spelling anyway.
#define CA_ACQUIRED_BEFORE(...)

/// ---- Hot-path purity annotations (checked by copyattack-analyze only) ----
///
/// CA_HOT_PATH marks a function definition as a hot-path root: the
/// analyzer's `hotpath` pass walks the call graph from every root and
/// requires each function it reaches to be *pure* in the latency sense —
/// no explicit allocation (`new`, make_unique/make_shared, malloc), no
/// blocking lock acquisition, no `throw`, no stream/file IO. This is the
/// machine-checked form of the PR-1 performance contract (0.1 µs episode
/// resets, ~2 µs injections): a future edit that sneaks an allocation into
/// the episode loop fails `ctest -L lint` instead of a perf bisect.
///
/// Placement: after the parameter list of the *definition* (the analyzer
/// only sees bodies), before the opening brace:
///
///   void AttackEnvironment::Reset(data::ItemId target_item) CA_HOT_PATH {
#define CA_HOT_PATH

/// Exempts one function from hot-path purity with a mandatory reason. The
/// walk still *reaches* a CA_COLD_OK function but neither scans its body
/// nor continues through its callees — use it for work that is genuinely
/// off the steady-state path (config-gated slow paths, per-target setup,
/// fault-handling machinery) and say why:
///
///   void AttackEnvironment::RebuildOracleStack(std::uint64_t episode)
///       CA_COLD_OK("decorators are config-gated; steady state reuses them") {
#define CA_COLD_OK(reason)

#endif  // COPYATTACK_UTIL_ANNOTATIONS_H_
