#ifndef COPYATTACK_UTIL_THREAD_POOL_H_
#define COPYATTACK_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"

namespace copyattack::util {

/// Fixed-size worker pool used to parallelize independent attack campaigns
/// (e.g. the 50 target items of Table 2) across cores. Tasks may not spawn
/// nested tasks into the same pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. Instantaneous and
  /// advisory (another thread may drain the queue between the read and any
  /// decision based on it); feeds the `pool.queue_depth` gauge and the
  /// concurrency stress suite's introspection assertions.
  std::size_t queue_depth() const;

  /// Tasks that have finished executing since construction.
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Tasks accepted by `Submit` since construction.
  std::uint64_t tasks_submitted() const {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }

  /// The process-wide shared pool (one worker per hardware thread),
  /// created lazily on first use and reused by every `ParallelFor` — so
  /// repeated fan-outs don't pay thread creation/join per call.
  static ThreadPool& Shared();

  /// Runs `fn(i)` for every `i` in `[0, n)` with up to `num_threads`
  /// concurrent executors and waits. Indices are claimed dynamically from
  /// an atomic counter, so uneven per-index work (e.g. target items whose
  /// episodes end early) load-balances instead of being pinned to a
  /// static stripe. The calling thread participates, which both caps the
  /// helper count at `num_threads - 1` and guarantees progress even when
  /// the shared pool is busy.
  ///
  /// Re-entrant: a nested call from inside `fn` runs its range inline on
  /// the calling executor instead of submitting helpers. Submitting from
  /// within a pool task and then blocking would deadlock once every
  /// worker is parked in an outer wait — the outermost call already owns
  /// the available parallelism, so the inner level has nothing to gain.
  static void ParallelFor(std::size_t n, std::size_t num_threads,
                          const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_ CA_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> tasks_executed_ CA_ATOMIC_ONLY{0};
  std::atomic<std::uint64_t> tasks_submitted_ CA_ATOMIC_ONLY{0};
  /// Leaf lock: worker and submitter paths never take another lock while
  /// holding it (zero-arg annotation = tracked in the lock-order graph).
  mutable std::mutex mutex_ CA_ACQUIRED_BEFORE();
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ CA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ CA_GUARDED_BY(mutex_) = false;
};

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_THREAD_POOL_H_
