#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace copyattack::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  const double elapsed = SecondsSinceStart();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %9.3fs] %s\n", LogLevelName(level), elapsed,
               message.c_str());
}

}  // namespace copyattack::util
