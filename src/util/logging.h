#ifndef COPYATTACK_UTIL_LOGGING_H_
#define COPYATTACK_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace copyattack::util {

/// Severity levels for the project logger, ordered by verbosity.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the short human-readable tag for a level ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

/// Sets the global minimum severity that will be emitted. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

/// Emits one formatted log line to stderr if `level` passes the filter.
/// Lines look like: `[INFO  12.345s] message`.
void LogMessage(LogLevel level, const std::string& message);

namespace internal_logging {

/// Stream adaptor that buffers a message and emits it on destruction.
class LogLineBuilder {
 public:
  explicit LogLineBuilder(LogLevel level) : level_(level) {}
  LogLineBuilder(const LogLineBuilder&) = delete;
  LogLineBuilder& operator=(const LogLineBuilder&) = delete;
  ~LogLineBuilder() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace copyattack::util

#define CA_LOG(level)                                      \
  ::copyattack::util::internal_logging::LogLineBuilder(    \
      ::copyattack::util::LogLevel::k##level)

#endif  // COPYATTACK_UTIL_LOGGING_H_
