#include "util/rng.h"

#include <cmath>

namespace copyattack::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t DeriveStreamSeed(std::uint64_t base, std::uint64_t stream) {
  // Golden-ratio mix: stream indices land on well-separated points of the
  // splitmix sequence, then one splitmix round decorrelates the bits so
  // that stream 1 of base b and stream 0 of base b+1 share nothing.
  std::uint64_t x = base ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  return SplitMix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformUint64(std::uint64_t bound) {
  CA_CHECK_GT(bound, 0ULL);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int Rng::UniformInt(int lo, int hi) {
  CA_CHECK_LT(lo, hi);
  return lo + static_cast<int>(
                  UniformUint64(static_cast<std::uint64_t>(hi - lo)));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);  // lint:allow(float-eq): polar-method rejection guard
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  CA_CHECK_LE(k, n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(UniformUint64(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

RngState Rng::SaveState() const {
  RngState state;
  for (std::size_t i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace copyattack::util
