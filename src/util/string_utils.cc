#include "util/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace copyattack::util {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

bool ParseSizeT(std::string_view text, std::size_t* out) {
  const std::string owned(Trim(text));
  if (owned.empty()) return false;
  // strtoull silently negates "-N" instead of failing; an unsigned parse
  // must reject a sign outright.
  if (owned[0] == '-' || owned[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string owned(Trim(text));
  if (owned.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  *out = value;
  return true;
}

}  // namespace copyattack::util
