#ifndef COPYATTACK_UTIL_CHECK_H_
#define COPYATTACK_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace copyattack::util {

/// Prints a fatal diagnostic to stderr and aborts the process.
///
/// The project follows the Google style guide and does not use exceptions;
/// contract violations are programming errors and terminate the process so
/// they surface immediately in tests and benchmarks.
[[noreturn]] inline void FatalCheckFailure(const char* file, int line,
                                           const char* expr,
                                           const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace internal_check {

/// Stream sink used by the CA_CHECK macros to build failure messages lazily.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    FatalCheckFailure(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace copyattack::util

/// Aborts with a diagnostic if `condition` is false. Additional context may be
/// streamed: `CA_CHECK(n > 0) << "n=" << n;`
#define CA_CHECK(condition)                                           \
  if (condition) {                                                    \
  } else /* NOLINT */                                                 \
    ::copyattack::util::internal_check::CheckMessageBuilder(__FILE__, \
                                                            __LINE__, \
                                                            #condition)

#define CA_CHECK_EQ(a, b) CA_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b)
#define CA_CHECK_NE(a, b) CA_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b)
#define CA_CHECK_LT(a, b) CA_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b)
#define CA_CHECK_LE(a, b) CA_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define CA_CHECK_GT(a, b) CA_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b)
#define CA_CHECK_GE(a, b) CA_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b)

#endif  // COPYATTACK_UTIL_CHECK_H_
