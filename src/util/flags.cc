#include "util/flags.h"

#include <sstream>

#include "util/check.h"
#include "util/string_utils.h"

namespace copyattack::util {

FlagParser& FlagParser::Define(const std::string& name,
                               const std::string& default_value,
                               const std::string& help) {
  CA_CHECK(flags_.find(name) == flags_.end())
      << "flag --" << name << " declared twice";
  flags_[name] = Flag{default_value, help, default_value, false};
  declaration_order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::DefinePositiveInt(const std::string& name,
                                          const std::string& default_value,
                                          const std::string& help) {
  Define(name, default_value, help);
  flags_[name].type = Flag::Type::kPositiveInt;
  CA_CHECK(ValidateTyped(name, flags_[name]))
      << "flag --" << name << " declared with an invalid default: "
      << default_value;
  return *this;
}

bool FlagParser::ValidateTyped(const std::string& name, const Flag& flag) {
  if (flag.type != Flag::Type::kPositiveInt) return true;
  // A leading '-' never parses as std::size_t, so one unsigned parse plus
  // a zero check covers negative, zero and non-numeric values alike.
  std::size_t parsed = 0;
  if (!ParseSizeT(flag.value, &parsed) || parsed == 0) {
    error_ = "flag --" + name + " expects a positive integer, got '" +
             flag.value + "'";
    return false;
  }
  return true;
}

bool FlagParser::Parse(int argc, const char* const* argv) {
  error_.clear();
  command_.clear();
  positional_.clear();
  for (auto& [name, flag] : flags_) {
    (void)name;
    flag.value = flag.default_value;
    flag.supplied = false;
  }

  for (int i = 0; i < argc; ++i) {
    const std::string token = argv[i];
    if (!StartsWith(token, "--")) {
      if (command_.empty()) {
        command_ = token;
      } else {
        positional_.push_back(token);
      }
      continue;
    }

    std::string name = token.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t equals = name.find('=');
    if (equals != std::string::npos) {
      value = name.substr(equals + 1);
      name = name.substr(0, equals);
      has_value = true;
    }

    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    if (!has_value) {
      // `--flag value` form, unless the next token is another flag or
      // missing — then treat as a boolean switch ("true").
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.supplied = true;
    if (!ValidateTyped(name, it->second)) return false;
  }
  return true;
}

std::string FlagParser::GetString(const std::string& name) const {
  const auto it = flags_.find(name);
  CA_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.value;
}

std::size_t FlagParser::GetSizeT(const std::string& name) const {
  std::size_t value = 0;
  CA_CHECK(ParseSizeT(GetString(name), &value))
      << "flag --" << name << " is not an unsigned integer: "
      << GetString(name);
  return value;
}

double FlagParser::GetDouble(const std::string& name) const {
  double value = 0.0;
  CA_CHECK(ParseDouble(GetString(name), &value))
      << "flag --" << name << " is not a number: " << GetString(name);
  return value;
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string value = GetString(name);
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  CA_CHECK(false) << "flag --" << name << " is not a boolean: " << value;
  return false;
}

bool FlagParser::WasSupplied(const std::string& name) const {
  const auto it = flags_.find(name);
  CA_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.supplied;
}

std::string FlagParser::HelpText() const {
  std::ostringstream out;
  for (const std::string& name : declaration_order_) {
    const Flag& flag = flags_.at(name);
    out << "  --" << name << " (default: " << flag.default_value << ")\n"
        << "      " << flag.help << '\n';
  }
  return out.str();
}

}  // namespace copyattack::util
