#include "util/checksum.h"

#include <array>

namespace copyattack::util {
namespace {

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* bytes, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  const unsigned char* data = static_cast<const unsigned char*>(bytes);
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFU];
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t Crc32(const std::string& payload) {
  return Crc32(payload.data(), payload.size());
}

}  // namespace copyattack::util
