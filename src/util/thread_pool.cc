#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::util {

namespace {

/// True while the current thread is executing a `ParallelFor` range. Nested
/// calls check it to fall back to inline execution — submitting helper tasks
/// from inside a pool task and blocking on them deadlocks when every worker
/// is parked in an outer call's completion wait.
thread_local bool t_inside_parallel_for = false;

/// Scoped setter so early returns and nested scopes restore the flag.
class ParallelForScope {
 public:
  ParallelForScope() { t_inside_parallel_for = true; }
  ParallelForScope(const ParallelForScope&) = delete;
  ParallelForScope& operator=(const ParallelForScope&) = delete;
  ~ParallelForScope() { t_inside_parallel_for = false; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  CA_CHECK(task != nullptr);
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CA_CHECK(!shutting_down_) << "Submit after shutdown";
    tasks_.push(std::move(task));
    ++in_flight_;
    depth = tasks_.size();
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNTER_INC("pool.tasks_submitted");
  OBS_GAUGE_SET("pool.queue_depth", depth);
  task_available_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // shutting_down_ must be true here.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER_INC("pool.tasks_executed");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* const pool = new ThreadPool(  // lint:allow(raw-new): process-lifetime singleton
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::ParallelFor(std::size_t n, std::size_t num_threads,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  OBS_COUNTER_INC("pool.parallel_for_calls");
  if (num_threads <= 1 || n == 1 || t_inside_parallel_for) {
    // Serial path. The re-entrant case lands here too: the outermost call
    // already fanned out across the pool, so a nested call runs its range
    // inline on this executor instead of deadlocking on busy workers.
    if (t_inside_parallel_for) OBS_COUNTER_INC("pool.parallel_for_inline_nested");
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Dynamic work queue: every executor (the helpers below plus the calling
  // thread) claims the next unclaimed index until the range is drained.
  std::atomic<std::size_t> next{0};
  const auto drain = [&next, &fn, n] {
    ParallelForScope scope;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < n; i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };

  ThreadPool& pool = Shared();
  const std::size_t helpers =
      std::min({num_threads - 1, n - 1, pool.size()});
  // Per-call completion latch (pool.Wait() would also wait on unrelated
  // tasks submitted by concurrent callers).
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.Submit([&drain, &done_mutex, &done_cv, &pending] {
      drain();
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--pending == 0) done_cv.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&pending] { return pending == 0; });
}

}  // namespace copyattack::util
