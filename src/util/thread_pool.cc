#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace copyattack::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  CA_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CA_CHECK(!shutting_down_) << "Submit after shutdown";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // shutting_down_ must be true here.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n, std::size_t num_threads,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  for (std::size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace copyattack::util
