#ifndef COPYATTACK_UTIL_CHECKSUM_H_
#define COPYATTACK_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace copyattack::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// Used to detect torn or corrupted campaign checkpoints; standard
/// parameters so external tools (`crc32`, python `zlib.crc32`) can verify
/// files independently. `Crc32("123456789") == 0xCBF43926`.
std::uint32_t Crc32(const void* bytes, std::size_t size);

/// Convenience overload over a string payload.
std::uint32_t Crc32(const std::string& payload);

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_CHECKSUM_H_
