#ifndef COPYATTACK_UTIL_FLAGS_H_
#define COPYATTACK_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace copyattack::util {

/// Minimal command-line parser for the repository's tools.
///
/// Grammar: `tool <command> [--flag=value | --flag value | --switch] ...`
/// Positional arguments after the command are collected in order.
/// Unknown flags are an error surfaced through `ok()` so tools can print
/// usage instead of silently ignoring typos.
class FlagParser {
 public:
  /// Declares a flag with a default value (all values are strings at the
  /// parsing level; typed getters convert). Returns *this for chaining.
  FlagParser& Define(const std::string& name,
                     const std::string& default_value,
                     const std::string& help);

  /// Declares a flag that must parse as a strictly positive integer
  /// (thread counts, shard counts, budgets). Violations — zero, negative,
  /// or non-numeric values — are typed parse errors surfaced through
  /// `ok()`/`error()` at `Parse` time, so a bad `--jobs=0` never reaches
  /// the code that would size a thread pool with it.
  FlagParser& DefinePositiveInt(const std::string& name,
                                const std::string& default_value,
                                const std::string& help);

  /// Parses argv (excluding argv[0]); the first non-flag token becomes the
  /// command. Returns false on malformed input or unknown flags.
  bool Parse(int argc, const char* const* argv);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// The first positional token ("" if none).
  const std::string& command() const { return command_; }

  /// Positional arguments after the command.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Typed accessors; abort on undeclared names (programming error),
  /// return the default when the flag was not supplied.
  std::string GetString(const std::string& name) const;
  std::size_t GetSizeT(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True if the flag was explicitly supplied on the command line.
  bool WasSupplied(const std::string& name) const;

  /// Renders the declared flags as a usage/help block.
  std::string HelpText() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
    bool supplied = false;
    /// Typed validation applied at Parse time (kPositiveInt rejects 0,
    /// negative and non-numeric values).
    enum class Type { kString, kPositiveInt };
    Type type = Type::kString;
  };

  /// Validates a supplied value against the flag's declared type; on
  /// violation sets `error_` and returns false.
  bool ValidateTyped(const std::string& name, const Flag& flag);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> declaration_order_;
  std::string command_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_FLAGS_H_
