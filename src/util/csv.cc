#include "util/csv.h"

#include "util/check.h"
#include "util/string_utils.h"

namespace copyattack::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  CA_CHECK_GT(arity_, 0U);
  if (out_) {
    out_ << Join(header, ",") << '\n';
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  CA_CHECK_EQ(fields.size(), arity_);
  out_ << Join(fields, ",") << '\n';
}

void CsvWriter::Flush() { out_.flush(); }

bool ReadCsv(const std::string& path, std::vector<std::string>* header,
             std::vector<std::vector<std::string>>* rows) {
  std::ifstream in(path);
  if (!in) return false;
  header->clear();
  rows->clear();
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = Split(line, ',');
    if (first) {
      *header = std::move(fields);
      first = false;
    } else {
      rows->push_back(std::move(fields));
    }
  }
  return true;
}

}  // namespace copyattack::util
