#include "util/csv.h"

#include "util/check.h"
#include "util/string_utils.h"

namespace copyattack::util {

namespace {

bool NeedsQuoting(const std::string& field) {
  for (const char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string JoinEscaped(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += EscapeCsvField(fields[i]);
  }
  return out;
}

}  // namespace

std::string EscapeCsvField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;  // doubled quote -> literal quote
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"' && current.empty()) {
      in_quotes = true;  // opening quote only at field start
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  // An unterminated quote falls through here with `in_quotes` still set;
  // the partial field is kept verbatim (lenient-reader contract).
  fields.push_back(std::move(current));
  return fields;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  CA_CHECK_GT(arity_, 0U);
  if (out_) {
    out_ << JoinEscaped(header) << '\n';
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  CA_CHECK_EQ(fields.size(), arity_);
  out_ << JoinEscaped(fields) << '\n';
}

void CsvWriter::Flush() { out_.flush(); }

bool ReadCsv(const std::string& path, std::vector<std::string>* header,
             std::vector<std::vector<std::string>>* rows) {
  std::ifstream in(path);
  if (!in) return false;
  header->clear();
  rows->clear();
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = ParseCsvLine(line);
    if (first) {
      *header = std::move(fields);
      first = false;
    } else {
      rows->push_back(std::move(fields));
    }
  }
  return true;
}

}  // namespace copyattack::util
