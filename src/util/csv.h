#ifndef COPYATTACK_UTIL_CSV_H_
#define COPYATTACK_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace copyattack::util {

/// Minimal CSV writer: one header row followed by data rows. Fields are
/// written verbatim (the project only stores numeric fields and plain
/// identifiers, so no quoting is required).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Check `ok()` before use.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Returns true if the file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  /// Writes one data row; must have the same arity as the header.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes buffered rows to disk.
  void Flush();

 private:
  std::ofstream out_;
  std::size_t arity_;
};

/// Reads a whole CSV file into memory. Returns false if the file cannot be
/// opened. The first row is returned separately as the header.
bool ReadCsv(const std::string& path, std::vector<std::string>* header,
             std::vector<std::vector<std::string>>* rows);

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_CSV_H_
