#ifndef COPYATTACK_UTIL_CSV_H_
#define COPYATTACK_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace copyattack::util {

/// Minimal CSV writer: one header row followed by data rows. Fields that
/// contain a comma, a double quote, or a CR/LF are quoted RFC-4180 style
/// (embedded quotes doubled); everything else is written verbatim, so the
/// project's numeric tables stay byte-stable.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Check `ok()` before use.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Returns true if the file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  /// Writes one data row; must have the same arity as the header.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes buffered rows to disk.
  void Flush();

 private:
  std::ofstream out_;
  std::size_t arity_;
};

/// Reads a whole CSV file into memory. Returns false if the file cannot be
/// opened. The first row is returned separately as the header. Quoted
/// fields are unescaped (doubled quotes collapse); a field must be quoted
/// to contain a comma. Embedded newlines inside quotes are not supported —
/// rows are line-delimited. Malformed quoting (stray or unterminated
/// quotes) is tolerated: the remainder of the field is taken verbatim,
/// matching the lenient readers used by the bench tooling.
bool ReadCsv(const std::string& path, std::vector<std::string>* header,
             std::vector<std::vector<std::string>>* rows);

/// Splits one CSV line into fields with the quoting rules above. Exposed
/// for tests and for tools that stream rows without loading whole files.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Quotes `field` if needed per the writer's rules (comma, quote, CR/LF).
std::string EscapeCsvField(const std::string& field);

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_CSV_H_
