#ifndef COPYATTACK_UTIL_RNG_H_
#define COPYATTACK_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/annotations.h"
#include "util/check.h"

namespace copyattack::util {

/// Derives the seed of an independent child stream from a base seed and a
/// stream index (golden-ratio multiplicative mix, the same constant the
/// xoshiro seeding uses). Deterministic: equal `(base, stream)` pairs give
/// equal seeds, and distinct stream indices give well-separated seeds even
/// for adjacent bases. This is the one sanctioned way to give each shard,
/// thread, or experiment arm of a campaign its own reproducible stream —
/// the derived seed depends only on the logical stream index, never on how
/// many draws any other stream consumed.
std::uint64_t DeriveStreamSeed(std::uint64_t base, std::uint64_t stream);

/// The complete serializable state of an `Rng` stream. Capturing and
/// restoring it mid-stream resumes the exact draw sequence — the basis of
/// crash-safe campaign checkpointing (core/checkpoint.h).
struct RngState CA_CHECKPOINTED(WriteRngState, ReadRngState) {
  std::uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded through splitmix64 so that any 64-bit seed gives a well-mixed
/// state. Every stochastic component of the project draws from an `Rng`
/// instance that it receives explicitly, which makes experiments exactly
/// reproducible from a single seed.
class Rng CA_CHECKPOINTED(Rng::SaveState, Rng::RestoreState) {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Returns an unbiased uniform integer in `[0, bound)`. `bound` must be > 0.
  std::uint64_t UniformUint64(std::uint64_t bound);

  /// Returns a uniform integer in `[lo, hi)` (half-open). Requires `lo < hi`.
  int UniformInt(int lo, int hi);

  /// Returns a uniform double in `[0, 1)`.
  double UniformDouble();

  /// Returns a uniform double in `[lo, hi)`.
  double UniformDouble(double lo, double hi);

  /// Returns a standard normal deviate (Marsaglia polar method).
  double Normal();

  /// Returns a normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformUint64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `k` distinct indices from `[0, n)` uniformly (partial
  /// Fisher–Yates). Requires `k <= n`. Order of the result is random.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Creates an independent child generator; useful for giving each thread
  /// or each experiment arm its own deterministic stream.
  Rng Fork();

  /// Snapshots the full generator state (see `RngState`).
  RngState SaveState() const;

  /// Restores a previously saved state; the stream continues bit-exactly
  /// from where `SaveState` captured it.
  void RestoreState(const RngState& state);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace copyattack::util

#endif  // COPYATTACK_UTIL_RNG_H_
