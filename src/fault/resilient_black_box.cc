#include "fault/resilient_black_box.h"

#include "util/check.h"

namespace copyattack::fault {

const char* ToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

ResilientBlackBox::ResilientBlackBox(rec::BlackBoxInterface* inner,
                                     const ResilienceConfig& config)
    : inner_(inner), config_(config), rng_(config.seed) {
  CA_CHECK(inner != nullptr);
  CA_CHECK_GT(config.retry.max_attempts, 0U);
  CA_CHECK_GT(config.breaker.failure_threshold, 0U);
  CA_CHECK_GT(config.breaker.half_open_successes, 0U);
}

void ResilientBlackBox::SetState(BreakerState state) {
  state_ = state;
  OBS_GAUGE_SET("fault.breaker_state", static_cast<int>(state));
}

bool ResilientBlackBox::BreakerAdmits() {
  if (state_ == BreakerState::kClosed) return true;
  if (state_ == BreakerState::kOpen) {
    if (NowUs() - opened_at_us_ < config_.breaker.open_duration_us) {
      return false;
    }
    // Cool-down elapsed: admit probes.
    SetState(BreakerState::kHalfOpen);
    half_open_successes_ = 0;
  }
  return true;  // half-open admits probes
}

void ResilientBlackBox::OnOperationSuccess() {
  failure_streak_ = 0;
  if (state_ != BreakerState::kHalfOpen) return;
  if (++half_open_successes_ >= config_.breaker.half_open_successes) {
    SetState(BreakerState::kClosed);
    ++stats_.breaker_closes;
    OBS_COUNTER_INC("fault.breaker_closes");
  }
}

void ResilientBlackBox::OnOperationFailure() {
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe means the oracle has not recovered: reopen and
    // restart the cool-down.
    SetState(BreakerState::kOpen);
    opened_at_us_ = NowUs();
    ++stats_.breaker_reopens;
    OBS_COUNTER_INC("fault.breaker_reopens");
    return;
  }
  ++failure_streak_;
  if (state_ == BreakerState::kClosed &&
      failure_streak_ >= config_.breaker.failure_threshold) {
    SetState(BreakerState::kOpen);
    opened_at_us_ = NowUs();
    failure_streak_ = 0;
    ++stats_.breaker_trips;
    OBS_COUNTER_INC("fault.breaker_trips");
  }
}

}  // namespace copyattack::fault
