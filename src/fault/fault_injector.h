#ifndef COPYATTACK_FAULT_FAULT_INJECTOR_H_
#define COPYATTACK_FAULT_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "rec/black_box.h"
#include "util/rng.h"

namespace copyattack::fault {

/// Per-operation fault probabilities of a simulated remote oracle. All
/// rates are independent per call and drawn from one dedicated
/// `util::Rng` stream, so a given (seed, schedule) pair produces a
/// bit-identical fault sequence regardless of what the attacker does with
/// the results.
struct FaultScheduleConfig {
  /// Master switch; when false the decorator is a transparent pass-through
  /// (and draws nothing, so disabled == absent).
  bool enabled = false;
  /// Seed of the fault schedule stream (independent of attack seeds).
  std::uint64_t seed = 0xFA17ULL;

  // Query-side faults (checked in this order; first hit wins).
  double query_transient_rate = 0.0;   ///< spurious 5xx-style failure
  double query_timeout_rate = 0.0;     ///< client-visible deadline blown
  double query_rate_limit_rate = 0.0;  ///< throttled (429-style)
  /// The platform answers from a stale index snapshot: the previous
  /// successful Top-k list for this user is returned instead of a fresh
  /// one (no-op on the user's first query).
  double stale_topk_rate = 0.0;
  /// The returned list is truncated to `truncate_keep_fraction` of k.
  double truncate_rate = 0.0;
  double truncate_keep_fraction = 0.5;

  // Inject-side faults.
  double inject_transient_rate = 0.0;  ///< visible failure; retryable
  /// The platform acks the injection but silently discards the profile —
  /// the attacker sees kOk and a plausible user id, but nothing landed.
  double inject_drop_rate = 0.0;

  /// Mean of the simulated per-call latency (exponentially distributed,
  /// recorded into the `fault.sim_latency_us` histogram; no real sleeping).
  double latency_mean_us = 0.0;

  /// A mild schedule: rare transients, occasional staleness.
  static FaultScheduleConfig Light(std::uint64_t seed);
  /// A hostile schedule exercising every fault class at high rates; used
  /// by the check_all.sh fault soak and the unit tests.
  static FaultScheduleConfig Aggressive(std::uint64_t seed);
};

/// Tally of faults actually fired, by class.
struct FaultCounts {
  std::size_t query_transient = 0;
  std::size_t query_timeout = 0;
  std::size_t query_rate_limited = 0;
  std::size_t query_stale = 0;
  std::size_t query_truncated = 0;
  std::size_t inject_transient = 0;
  std::size_t inject_dropped = 0;

  std::size_t TotalFired() const {
    return query_transient + query_timeout + query_rate_limited +
           query_stale + query_truncated + inject_transient +
           inject_dropped;
  }
};

/// Decorator simulating an unreliable remote black-box oracle on top of
/// any `BlackBoxInterface`. Deterministic: the decision stream consumes a
/// fixed number of uniform draws per operation (one per configured fault
/// class plus one latency draw), whether or not a fault fires, so fault
/// sequences depend only on (seed, schedule, call index) — never on the
/// schedule's rates relative ordering or on the payloads.
///
/// Not thread-safe: the fault stream and the stale-snapshot cache are
/// unsynchronized by design (a deterministic shared stream under
/// concurrency is a contradiction); use one injector per thread.
class FaultInjector final : public rec::BlackBoxInterface {
 public:
  /// `inner` is borrowed and must outlive the decorator.
  FaultInjector(rec::BlackBoxInterface* inner,
                const FaultScheduleConfig& config);

  rec::InjectResult Inject(data::Profile profile) override;
  rec::QueryResult Query(data::UserId user,
                         const std::vector<data::ItemId>& candidates,
                         std::size_t k) override;

  // Attack meters always reflect the *innermost* oracle: operations that
  // faulted before reaching it are not counted (they never landed).
  std::size_t query_count() const override { return inner_->query_count(); }
  std::size_t injected_profiles() const override {
    return inner_->injected_profiles();
  }
  std::size_t injected_interactions() const override {
    return inner_->injected_interactions();
  }
  void ResetCounters() override;
  const data::Dataset& polluted() const override {
    return inner_->polluted();
  }

  const FaultCounts& counts() const { return counts_; }
  const FaultScheduleConfig& config() const { return config_; }

 private:
  rec::BlackBoxInterface* inner_;
  FaultScheduleConfig config_;
  util::Rng rng_;
  FaultCounts counts_;
  /// Last successful Top-k list per user, served on stale-snapshot faults.
  std::unordered_map<data::UserId, std::vector<data::ItemId>> snapshots_;
  /// Profiles silently dropped so far; used to fabricate plausible user
  /// ids for acked-but-discarded injections.
  std::size_t phantom_users_ = 0;
};

}  // namespace copyattack::fault

#endif  // COPYATTACK_FAULT_FAULT_INJECTOR_H_
