#include "fault/crash_point.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <mutex>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace copyattack::fault {
namespace {

/// The armed schedule plus its counters, all behind one mutex. The hit
/// path takes the lock only while armed (chaos/soak runs), so the
/// disarmed product path never contends; while armed, serializing hits
/// is the point — the global hit index must be a total order for the
/// schedule to be deterministic under `jobs = 1` soak runs.
struct ScheduleState {
  std::mutex mutex;
  CrashScheduleConfig config;
  std::uint64_t hits = 0;
  /// Hits that matched the schedule's site filter — what `at_hit` indexes
  /// into (equal to `hits` for an unfiltered schedule). Without this, a
  /// filtered schedule could only fire when the N-th GLOBAL hit happened
  /// to land on the named site.
  std::uint64_t matched_hits = 0;
  int trace_fd = -1;
};

ScheduleState& State() {
  static ScheduleState state;
  return state;
}

void CloseTraceLocked(ScheduleState& state) {
  if (state.trace_fd >= 0) {
    ::close(state.trace_fd);
    state.trace_fd = -1;
  }
}

/// write(2) the whole buffer; EINTR-safe. Used for both the trace file
/// and the pre-_Exit stderr marker, so nothing depends on stdio buffers
/// that a simulated hard kill would lose.
void WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ::ssize_t n = ::write(fd, data, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // trace/marker writes are best-effort
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

namespace internal {

std::atomic<bool> g_crash_schedule_armed{false};

void CrashPointHitSlow(const char* site) {
  ScheduleState& state = State();
  std::unique_lock<std::mutex> lock(state.mutex);
  if (!state.config.enabled) return;  // disarmed between load and lock
  ++state.hits;
  if (state.trace_fd >= 0) {
    std::string line(site);
    line += '\n';
    WriteAll(state.trace_fd, line.data(), line.size());
  }
  const bool site_matches =
      state.config.site.empty() || state.config.site == site;
  if (site_matches) ++state.matched_hits;
  if (state.config.at_hit == 0 || !site_matches ||
      state.matched_hits != state.config.at_hit) {
    return;
  }
  const CrashMode mode = state.config.mode;
  const std::uint64_t hit = state.hits;
  if (mode == CrashMode::kThrow) {
    // One-shot: disarm before throwing so recovery code re-entering the
    // same site (e.g. the post-crash checkpoint save) runs to completion.
    state.config.enabled = false;
    CloseTraceLocked(state);
    g_crash_schedule_armed.store(false, std::memory_order_release);
    lock.unlock();
    throw CrashForTest{site, hit};
  }
  // kExit: drop dead. No unlock, no flush, no destructors — the marker
  // goes straight to fd 2 so the soak parent can log where we died.
  std::string marker("crash-point: ");
  marker += site;
  marker += " fired at hit ";
  marker += std::to_string(hit);
  marker += '\n';
  WriteAll(2, marker.data(), marker.size());
  std::_Exit(kCrashExitCode);
}

}  // namespace internal

CrashScheduleConfig CrashScheduleConfig::Seeded(std::uint64_t seed,
                                                std::uint64_t cycle,
                                                std::uint64_t universe) {
  CrashScheduleConfig config;
  config.enabled = true;
  if (universe > 0) {
    config.at_hit = 1 + util::DeriveStreamSeed(seed, cycle) % universe;
  }
  return config;
}

void ArmCrashSchedule(const CrashScheduleConfig& config) {
  ScheduleState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  CloseTraceLocked(state);
  state.config = config;
  state.hits = 0;
  state.matched_hits = 0;
  if (state.config.enabled && !state.config.trace_path.empty()) {
    state.trace_fd = ::open(state.config.trace_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (state.trace_fd < 0) {
      CA_LOG(Warning) << "crash-point: cannot open trace "
                      << state.config.trace_path;
    }
  }
  internal::g_crash_schedule_armed.store(state.config.enabled,
                                         std::memory_order_release);
}

void DisarmCrashSchedule() {
  ScheduleState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.config = CrashScheduleConfig{};
  CloseTraceLocked(state);
  internal::g_crash_schedule_armed.store(false, std::memory_order_release);
}

bool CrashScheduleArmed() {
  return internal::g_crash_schedule_armed.load(std::memory_order_acquire);
}

std::uint64_t CrashPointHits() {
  ScheduleState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.hits;
}

bool ArmCrashScheduleFromEnv() {
  const char* spec = std::getenv("COPYATTACK_CRASH_POINT");
  if (spec == nullptr || *spec == '\0') return false;
  CrashScheduleConfig config;
  config.enabled = true;
  const std::string text(spec);
  const std::size_t colon = text.rfind(':');
  std::string count = text;
  if (colon != std::string::npos) {
    config.site = text.substr(0, colon);
    count = text.substr(colon + 1);
  }
  std::size_t at_hit = 0;
  if (!util::ParseSizeT(util::Trim(count), &at_hit)) {
    CA_LOG(Warning) << "crash-point: unparsable COPYATTACK_CRASH_POINT '"
                    << text << "' (want '<site>:<N>', ':<N>' or '<N>')";
    return false;
  }
  config.at_hit = static_cast<std::uint64_t>(at_hit);
  if (const char* mode = std::getenv("COPYATTACK_CRASH_MODE")) {
    if (std::string(mode) == "throw") config.mode = CrashMode::kThrow;
  }
  if (const char* trace = std::getenv("COPYATTACK_CRASH_TRACE")) {
    config.trace_path = trace;
  }
  ArmCrashSchedule(config);
  return true;
}

}  // namespace copyattack::fault
