#ifndef COPYATTACK_FAULT_RESILIENT_BLACK_BOX_H_
#define COPYATTACK_FAULT_RESILIENT_BLACK_BOX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.h"
#include "obs/obs.h"
#include "obs/time.h"
#include "rec/black_box.h"
#include "util/rng.h"

namespace copyattack::fault {

/// Bounded-retry policy with exponential backoff and multiplicative
/// jitter. `max_attempts` counts the first try: 4 means 1 try + up to 3
/// retries.
struct RetryPolicy {
  std::size_t max_attempts = 4;
  std::uint64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 100000;
  /// Backoff is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.2;
};

/// Circuit-breaker policy (closed → open → half-open; DESIGN.md §11).
struct BreakerPolicy {
  /// Consecutive failed *operations* (not attempts) that trip the breaker.
  std::size_t failure_threshold = 5;
  /// Cool-down before an open breaker lets a probe through.
  std::uint64_t open_duration_us = 250000;
  /// Successful half-open probes required to close the breaker again.
  std::size_t half_open_successes = 2;
};

/// What clock drives backoff accounting and the breaker cool-down.
enum class ClockMode {
  /// A logical clock owned by the client, advanced by `virtual_op_cost_us`
  /// per operation and by each backoff wait. Fully deterministic: same
  /// seed + schedule ⇒ same breaker transitions ⇒ same campaign outcome.
  kVirtual,
  /// Real time via obs::MonotonicNanos() (test-overridable through
  /// obs::SetMonotonicSourceForTest).
  kMonotonic,
};

struct ResilienceConfig {
  bool enabled = false;
  /// Seed of the jitter stream.
  std::uint64_t seed = 0x5EEDULL;
  RetryPolicy retry;
  BreakerPolicy breaker;
  ClockMode clock = ClockMode::kVirtual;
  /// Logical cost charged per black-box operation in kVirtual mode; this
  /// is what eventually moves an open breaker past its cool-down.
  std::uint64_t virtual_op_cost_us = 10000;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Human-readable breaker state name ("closed", "open", "half_open").
const char* ToString(BreakerState state);

/// Client-side fault tolerance for a black-box oracle: bounded retries
/// with exponential backoff + jitter around retryable statuses
/// (transient / timeout / rate-limited), and a circuit breaker that stops
/// hammering a failing oracle, letting the attack environment degrade to
/// proxy-model reward estimates until the oracle recovers.
///
/// Single-threaded like the rest of the per-episode attack stack; the
/// meters it exposes forward to the innermost oracle.
class ResilientBlackBox final : public rec::BlackBoxInterface {
 public:
  struct Stats {
    std::size_t retries = 0;          ///< backoff waits taken
    std::size_t retry_exhausted = 0;  ///< operations that gave up
    std::size_t short_circuited = 0;  ///< rejected while breaker open
    std::size_t breaker_trips = 0;    ///< closed → open
    std::size_t breaker_reopens = 0;  ///< half-open probe failed → open
    std::size_t breaker_closes = 0;   ///< half-open → closed
    std::uint64_t total_backoff_us = 0;
  };

  /// `inner` is borrowed and must outlive the client.
  ResilientBlackBox(rec::BlackBoxInterface* inner,
                    const ResilienceConfig& config);

  rec::InjectResult Inject(data::Profile profile) override {
    // Copied per attempt: a retry must resend the same payload, so the
    // lambda cannot move `profile` into the first (possibly failing) try.
    return Execute<rec::InjectResult>(
        [&] { return inner_->Inject(profile); });
  }

  rec::QueryResult Query(data::UserId user,
                         const std::vector<data::ItemId>& candidates,
                         std::size_t k) override {
    return Execute<rec::QueryResult>(
        [&] { return inner_->Query(user, candidates, k); });
  }

  std::size_t query_count() const override { return inner_->query_count(); }
  std::size_t injected_profiles() const override {
    return inner_->injected_profiles();
  }
  std::size_t injected_interactions() const override {
    return inner_->injected_interactions();
  }
  void ResetCounters() override { inner_->ResetCounters(); }
  const data::Dataset& polluted() const override {
    return inner_->polluted();
  }

  BreakerState breaker_state() const { return state_; }
  const Stats& stats() const { return stats_; }
  std::uint64_t virtual_now_us() const { return virtual_now_us_; }

  /// Hook invoked for each backoff wait in kMonotonic mode (kVirtual mode
  /// advances the logical clock instead). Default: no-op — the in-process
  /// oracle has no reason to really sleep. A remote deployment would plug
  /// a real sleep in here.
  void set_sleep_fn(std::function<void(std::uint64_t)> fn) {
    sleep_fn_ = std::move(fn);
  }

 private:
  static bool Retryable(rec::BlackBoxStatus status) {
    return status == rec::BlackBoxStatus::kTransientError ||
           status == rec::BlackBoxStatus::kTimeout ||
           status == rec::BlackBoxStatus::kRateLimited;
  }

  std::uint64_t NowUs() const {
    if (config_.clock == ClockMode::kVirtual) return virtual_now_us_;
    return static_cast<std::uint64_t>(obs::MonotonicNanos() / 1000);
  }

  void Wait(std::uint64_t micros) {
    stats_.total_backoff_us += micros;
    OBS_HIST_OBSERVE("fault.backoff_us", micros);
    if (config_.clock == ClockMode::kVirtual) {
      virtual_now_us_ += micros;
    } else if (sleep_fn_) {
      sleep_fn_(micros);
    }
  }

  /// True if the breaker admits a call right now (possibly transitioning
  /// open → half-open when the cool-down has elapsed).
  bool BreakerAdmits();
  void OnOperationSuccess();
  void OnOperationFailure();
  void SetState(BreakerState state);

  template <typename ResultT, typename OpFn>
  ResultT Execute(OpFn&& op) {
    if (!config_.enabled) return op();
    // The logical clock ticks on every call — including short-circuited
    // ones — so an open breaker always ages toward half-open even when
    // nothing reaches the oracle.
    if (config_.clock == ClockMode::kVirtual) {
      virtual_now_us_ += config_.virtual_op_cost_us;
    }
    if (!BreakerAdmits()) {
      ++stats_.short_circuited;
      OBS_COUNTER_INC("fault.short_circuited");
      ResultT rejected;
      rejected.status = rec::BlackBoxStatus::kUnavailable;
      return rejected;
    }
    std::uint64_t backoff_us = config_.retry.initial_backoff_us;
    for (std::size_t attempt = 1;; ++attempt) {
      ResultT result = op();
      if (result.ok()) {
        OnOperationSuccess();
        return result;
      }
      if (!Retryable(result.status) || state_ == BreakerState::kHalfOpen ||
          attempt >= config_.retry.max_attempts) {
        // Non-retryable, a failed half-open probe (reopen immediately,
        // no point burning retries on a recovering oracle), or exhausted.
        if (attempt >= config_.retry.max_attempts &&
            Retryable(result.status)) {
          ++stats_.retry_exhausted;
          OBS_COUNTER_INC("fault.retry_exhausted");
          result.status = rec::BlackBoxStatus::kUnavailable;
        }
        OnOperationFailure();
        return result;
      }
      ++stats_.retries;
      OBS_COUNTER_INC("fault.retries");
      const double scale =
          rng_.UniformDouble(1.0 - config_.retry.jitter,
                             1.0 + config_.retry.jitter);
      Wait(static_cast<std::uint64_t>(
          static_cast<double>(backoff_us) * std::max(0.0, scale)));
      backoff_us = std::min<std::uint64_t>(
          config_.retry.max_backoff_us,
          static_cast<std::uint64_t>(static_cast<double>(backoff_us) *
                                     config_.retry.backoff_multiplier));
    }
  }

  rec::BlackBoxInterface* inner_;
  ResilienceConfig config_;
  util::Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t failure_streak_ = 0;
  std::size_t half_open_successes_ = 0;
  std::uint64_t opened_at_us_ = 0;
  std::uint64_t virtual_now_us_ = 0;
  Stats stats_;
  std::function<void(std::uint64_t)> sleep_fn_;
};

}  // namespace copyattack::fault

#endif  // COPYATTACK_FAULT_RESILIENT_BLACK_BOX_H_
