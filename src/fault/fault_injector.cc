#include "fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::fault {

FaultScheduleConfig FaultScheduleConfig::Light(std::uint64_t seed) {
  FaultScheduleConfig config;
  config.enabled = true;
  config.seed = seed;
  config.query_transient_rate = 0.02;
  config.query_timeout_rate = 0.01;
  config.query_rate_limit_rate = 0.01;
  config.stale_topk_rate = 0.02;
  config.truncate_rate = 0.01;
  config.inject_transient_rate = 0.02;
  config.inject_drop_rate = 0.01;
  config.latency_mean_us = 2000.0;
  return config;
}

FaultScheduleConfig FaultScheduleConfig::Aggressive(std::uint64_t seed) {
  FaultScheduleConfig config;
  config.enabled = true;
  config.seed = seed;
  config.query_transient_rate = 0.15;
  config.query_timeout_rate = 0.10;
  config.query_rate_limit_rate = 0.10;
  config.stale_topk_rate = 0.15;
  config.truncate_rate = 0.10;
  config.truncate_keep_fraction = 0.5;
  config.inject_transient_rate = 0.15;
  config.inject_drop_rate = 0.10;
  config.latency_mean_us = 20000.0;
  return config;
}

FaultInjector::FaultInjector(rec::BlackBoxInterface* inner,
                             const FaultScheduleConfig& config)
    : inner_(inner), config_(config), rng_(config.seed) {
  CA_CHECK(inner != nullptr);
}

rec::InjectResult FaultInjector::Inject(data::Profile profile) {
  if (!config_.enabled) return inner_->Inject(std::move(profile));
  // Fixed draw count per operation: 3 uniforms, always consumed, so the
  // decision stream is position-deterministic.
  const double u_transient = rng_.UniformDouble();
  const double u_drop = rng_.UniformDouble();
  const double u_latency = rng_.UniformDouble();
  if (config_.latency_mean_us > 0.0) {
    OBS_HIST_OBSERVE("fault.sim_latency_us",
                     -config_.latency_mean_us * std::log1p(-u_latency));
  }
  if (u_transient < config_.inject_transient_rate) {
    ++counts_.inject_transient;
    OBS_COUNTER_INC("fault.inject_transient");
    return {rec::BlackBoxStatus::kTransientError, data::kNoUser};
  }
  if (u_drop < config_.inject_drop_rate) {
    // Silent drop: ack with the user id the platform *would* have
    // allocated. Nothing reaches the inner oracle or its meters.
    ++counts_.inject_dropped;
    OBS_COUNTER_INC("fault.inject_dropped");
    const data::UserId phantom = static_cast<data::UserId>(
        inner_->polluted().num_users() + phantom_users_);
    ++phantom_users_;
    return {rec::BlackBoxStatus::kOk, phantom};
  }
  return inner_->Inject(std::move(profile));
}

rec::QueryResult FaultInjector::Query(
    data::UserId user, const std::vector<data::ItemId>& candidates,
    std::size_t k) {
  if (!config_.enabled) return inner_->Query(user, candidates, k);
  // 6 uniforms per query, always consumed (see Inject).
  const double u_transient = rng_.UniformDouble();
  const double u_timeout = rng_.UniformDouble();
  const double u_rate_limit = rng_.UniformDouble();
  const double u_stale = rng_.UniformDouble();
  const double u_truncate = rng_.UniformDouble();
  const double u_latency = rng_.UniformDouble();
  if (config_.latency_mean_us > 0.0) {
    OBS_HIST_OBSERVE("fault.sim_latency_us",
                     -config_.latency_mean_us * std::log1p(-u_latency));
  }
  if (u_transient < config_.query_transient_rate) {
    ++counts_.query_transient;
    OBS_COUNTER_INC("fault.query_transient");
    return {rec::BlackBoxStatus::kTransientError, {}};
  }
  if (u_timeout < config_.query_timeout_rate) {
    ++counts_.query_timeout;
    OBS_COUNTER_INC("fault.query_timeout");
    return {rec::BlackBoxStatus::kTimeout, {}};
  }
  if (u_rate_limit < config_.query_rate_limit_rate) {
    ++counts_.query_rate_limited;
    OBS_COUNTER_INC("fault.query_rate_limited");
    return {rec::BlackBoxStatus::kRateLimited, {}};
  }

  rec::QueryResult result = inner_->Query(user, candidates, k);
  if (!result.ok()) return result;

  // Stale snapshot: the platform answers from the previous index build —
  // i.e. this user's previous successful list. The fresh list still
  // becomes the next snapshot (the index build itself completed).
  std::vector<data::ItemId>& snapshot = snapshots_[user];
  if (u_stale < config_.stale_topk_rate && !snapshot.empty()) {
    ++counts_.query_stale;
    OBS_COUNTER_INC("fault.query_stale");
    std::swap(result.items, snapshot);
  } else {
    snapshot = result.items;
  }

  if (u_truncate < config_.truncate_rate && result.items.size() > 1) {
    ++counts_.query_truncated;
    OBS_COUNTER_INC("fault.query_truncated");
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(result.items.size()) *
               config_.truncate_keep_fraction));
    result.items.resize(std::min(result.items.size(), keep));
  }
  return result;
}

void FaultInjector::ResetCounters() {
  inner_->ResetCounters();
  counts_ = FaultCounts{};
}

}  // namespace copyattack::fault
