#ifndef COPYATTACK_FAULT_CRASH_POINT_H_
#define COPYATTACK_FAULT_CRASH_POINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace copyattack::fault {

/// Thrown instead of aborting when an armed crash point fires in
/// `CrashMode::kThrow` — the in-process stand-in for a hard kill that
/// unit tests catch to iterate the crash schedule over every site
/// without forking.
struct CrashForTest {
  std::string site;     ///< the `CA_CRASH_POINT` name that fired
  std::uint64_t hit = 0;  ///< 1-based global hit index at which it fired
};

/// What an armed crash point does when its scheduled hit arrives.
enum class CrashMode {
  /// Abort the process with `std::_Exit(kCrashExitCode)` — no flushing,
  /// no destructors, the closest in-process approximation of SIGKILL.
  /// Soak mode: the parent (tools/soak_runner) waits for this code.
  kExit,
  /// Throw `CrashForTest` on the hitting thread. Unit-test mode.
  kThrow,
};

/// Exit status of a `kExit` crash — distinct from every normal failure
/// path so the soak driver can tell "died at the scheduled crash point"
/// from "died of an actual bug".
inline constexpr int kCrashExitCode = 134;

/// A deterministic process-crash schedule: fire at the `at_hit`-th
/// dynamic execution of a named crash point (or of any crash point when
/// `site` is empty). Same discipline as `fault::FaultScheduleConfig` —
/// the schedule depends only on its own parameters, never on payloads,
/// so a given (seed, cycle) pair kills the process at a bit-identical
/// point on every run.
struct CrashScheduleConfig {
  bool enabled = false;
  CrashMode mode = CrashMode::kExit;
  /// Fire only at this `CA_CRASH_POINT` name; empty matches every site.
  std::string site;
  /// 1-based hit index at which to fire, counted among the hits that
  /// match `site` (global when `site` is empty); 0 = never fire
  /// (count/trace only — how the soak driver's reference run measures
  /// the universe).
  std::uint64_t at_hit = 0;
  /// When non-empty, append one `<site>\n` line per hit (O_APPEND +
  /// direct write(2), so a `kExit` crash loses nothing buffered).
  std::string trace_path;

  /// Derives a count-only → kill-at-random-hit schedule for soak cycle
  /// `cycle`: `at_hit = 1 + DeriveStreamSeed(seed, cycle) % universe`,
  /// where `universe` is the total hit count of an uninterrupted run.
  static CrashScheduleConfig Seeded(std::uint64_t seed, std::uint64_t cycle,
                                    std::uint64_t universe);
};

/// Installs `config` as the process-wide crash schedule and resets the
/// hit counter. Thread-safe, but arm/disarm from a quiescent point — the
/// schedule is consulted by every thread passing a crash point.
void ArmCrashSchedule(const CrashScheduleConfig& config);

/// Removes the schedule; crash points return to one-atomic-load no-ops.
void DisarmCrashSchedule();

/// True when a schedule is armed (even a count-only one).
bool CrashScheduleArmed();

/// Crash-point executions observed since the last `ArmCrashSchedule`.
std::uint64_t CrashPointHits();

/// Arms a schedule from the environment, for processes (the soak
/// driver's forked children, CI one-liners) that cannot call
/// `ArmCrashSchedule` before `main`:
///   COPYATTACK_CRASH_POINT  "<site>:<N>" | ":<N>" | "<N>"
///   COPYATTACK_CRASH_MODE   "exit" (default) | "throw"
///   COPYATTACK_CRASH_TRACE  trace file path (optional)
/// Returns true when a schedule was armed, false when the variable is
/// unset or unparsable (unparsable also logs a warning).
bool ArmCrashScheduleFromEnv();

namespace internal {
/// Armed flag on the hot side of the macro: disarmed crash points cost
/// one relaxed atomic load and a predictable branch.
extern std::atomic<bool> g_crash_schedule_armed;

/// Slow path: counts the hit, traces it, and fires (exit or throw) when
/// the schedule says so. Only called while armed.
void CrashPointHitSlow(const char* site);
}  // namespace internal

/// Body of `CA_CRASH_POINT(site)`: a named, schedulable process-death
/// site. Free to pass when disarmed.
inline void CrashPointHit(const char* site) {
  if (internal::g_crash_schedule_armed.load(std::memory_order_acquire)) {
    internal::CrashPointHitSlow(site);
  }
}

}  // namespace copyattack::fault

/// Marks a named crash site. Threaded through the checkpoint write path,
/// shard boundaries and job transitions (DESIGN.md §16); the analyzer's
/// checkpoint pass enforces that save bodies enumerate all three
/// checkpoint rotation phases.
#define CA_CRASH_POINT(site) ::copyattack::fault::CrashPointHit(site)

#endif  // COPYATTACK_FAULT_CRASH_POINT_H_
