#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "math/vector_ops.h"
#include "util/check.h"

namespace copyattack::cluster {
namespace {

/// k-means++ seeding: the first centroid is uniform, each next centroid is
/// drawn proportional to the squared distance to the nearest chosen one.
math::Matrix SeedCentroids(const math::Matrix& points,
                           const std::vector<std::size_t>& subset,
                           std::size_t k, util::Rng& rng) {
  const std::size_t dim = points.cols();
  math::Matrix centroids(k, dim);
  const std::size_t first = static_cast<std::size_t>(
      rng.UniformUint64(subset.size()));
  centroids.CopyRowFrom(points, subset[first], 0);

  std::vector<double> d2(subset.size(),
                         std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < subset.size(); ++i) {
      const float dist = math::SquaredDistance(
          points.Row(subset[i]), centroids.Row(c - 1), dim);
      d2[i] = std::min(d2[i], static_cast<double>(dist));
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double threshold = rng.UniformDouble() * total;
      for (std::size_t i = 0; i < subset.size(); ++i) {
        threshold -= d2[i];
        if (threshold < 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points coincide with chosen centroids; any point works.
      chosen = static_cast<std::size_t>(rng.UniformUint64(subset.size()));
    }
    centroids.CopyRowFrom(points, subset[chosen], c);
  }
  return centroids;
}

}  // namespace

KMeansResult KMeans(const math::Matrix& points,
                    const std::vector<std::size_t>& subset, std::size_t k,
                    util::Rng& rng, std::size_t max_iterations) {
  CA_CHECK_GE(k, 1U);
  CA_CHECK_LE(k, subset.size());
  const std::size_t dim = points.cols();

  KMeansResult result;
  result.centroids = SeedCentroids(points, subset, k, rng);
  result.assignment.assign(subset.size(), 0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    result.inertia = 0.0;
    for (std::size_t i = 0; i < subset.size(); ++i) {
      const float* point = points.Row(subset[i]);
      std::size_t best = 0;
      float best_d2 = std::numeric_limits<float>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const float d2 =
            math::SquaredDistance(point, result.centroids.Row(c), dim);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
      result.inertia += best_d2;
    }
    if (!changed && iter > 0) break;

    // Update step.
    math::Matrix sums(k, dim);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < subset.size(); ++i) {
      const std::size_t c = result.assignment[i];
      math::Axpy(1.0f, points.Row(subset[i]), sums.Row(c), dim);
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        const std::size_t i = static_cast<std::size_t>(
            rng.UniformUint64(subset.size()));
        result.centroids.CopyRowFrom(points, subset[i], c);
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      float* centroid = result.centroids.Row(c);
      const float* sum = sums.Row(c);
      for (std::size_t d = 0; d < dim; ++d) centroid[d] = sum[d] * inv;
    }
  }
  return result;
}

std::vector<std::size_t> BalancedAssign(
    const math::Matrix& points, const std::vector<std::size_t>& subset,
    const math::Matrix& centroids) {
  const std::size_t n = subset.size();
  const std::size_t k = centroids.rows();
  CA_CHECK_GE(n, k);
  const std::size_t dim = points.cols();

  // Capacities: the first (n % k) clusters take ceil(n/k), the rest floor.
  std::vector<std::size_t> capacity(k, n / k);
  for (std::size_t c = 0; c < n % k; ++c) ++capacity[c];

  // All (point, centroid) pairs sorted by ascending distance.
  struct Pair {
    float d2;
    std::uint32_t point;
    std::uint32_t cluster;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    const float* point = points.Row(subset[i]);
    for (std::size_t c = 0; c < k; ++c) {
      pairs.push_back({math::SquaredDistance(point, centroids.Row(c), dim),
                       static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(c)});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Pair& a, const Pair& b) { return a.d2 < b.d2; });

  std::vector<std::size_t> assignment(n, k);  // k == unassigned sentinel
  std::size_t assigned = 0;
  for (const Pair& pair : pairs) {
    if (assigned == n) break;
    if (assignment[pair.point] != k) continue;
    if (capacity[pair.cluster] == 0) continue;
    assignment[pair.point] = pair.cluster;
    --capacity[pair.cluster];
    ++assigned;
  }
  CA_CHECK_EQ(assigned, n);
  return assignment;
}

std::vector<std::size_t> BalancedKMeans(
    const math::Matrix& points, const std::vector<std::size_t>& subset,
    std::size_t k, util::Rng& rng, std::size_t max_iterations) {
  const KMeansResult km = KMeans(points, subset, k, rng, max_iterations);
  return BalancedAssign(points, subset, km.centroids);
}

}  // namespace copyattack::cluster
