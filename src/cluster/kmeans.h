#ifndef COPYATTACK_CLUSTER_KMEANS_H_
#define COPYATTACK_CLUSTER_KMEANS_H_

#include <cstddef>
#include <vector>

#include "math/matrix.h"
#include "util/rng.h"

namespace copyattack::cluster {

/// Result of one k-means run over a subset of points.
struct KMeansResult {
  /// k x dim centroid matrix.
  math::Matrix centroids;
  /// assignment[i] is the cluster of subset[i] (index into `subset`, not
  /// into the full point matrix).
  std::vector<std::size_t> assignment;
  /// Sum of squared distances of points to their assigned centroid.
  double inertia = 0.0;
  /// Lloyd iterations actually performed.
  std::size_t iterations = 0;
};

/// Lloyd's k-means with k-means++ seeding over the rows of `points`
/// selected by `subset`. `k` must satisfy `1 <= k <= subset.size()`.
/// Deterministic in `rng`.
KMeansResult KMeans(const math::Matrix& points,
                    const std::vector<std::size_t>& subset, std::size_t k,
                    util::Rng& rng, std::size_t max_iterations = 25);

/// Reassigns the subset's points to the given centroids under an equal-size
/// constraint: every cluster receives either floor(n/k) or ceil(n/k) points
/// (sizes differ by at most one, as required for the balanced clustering
/// tree, paper §4.3.1). Assignment is greedy by ascending point-to-centroid
/// distance, honoring remaining capacity. Returns assignments indexed like
/// `subset`.
std::vector<std::size_t> BalancedAssign(
    const math::Matrix& points, const std::vector<std::size_t>& subset,
    const math::Matrix& centroids);

/// Convenience: k-means followed by balanced reassignment — the exact
/// construction step of the paper's hierarchical clustering tree. Returns
/// per-point cluster ids (indexed like `subset`); all k clusters are
/// non-empty when `subset.size() >= k`.
std::vector<std::size_t> BalancedKMeans(
    const math::Matrix& points, const std::vector<std::size_t>& subset,
    std::size_t k, util::Rng& rng, std::size_t max_iterations = 25);

}  // namespace copyattack::cluster

#endif  // COPYATTACK_CLUSTER_KMEANS_H_
