#ifndef COPYATTACK_CLUSTER_HIERARCHICAL_TREE_H_
#define COPYATTACK_CLUSTER_HIERARCHICAL_TREE_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "math/matrix.h"
#include "util/rng.h"

namespace copyattack::cluster {

/// Sentinel node id.
inline constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();

/// Balanced hierarchical clustering tree over user embeddings
/// (paper §4.3.1).
///
/// Built top-down by repeatedly splitting the current user set into
/// `branching` equal-size clusters with balanced k-means. Leaves hold one
/// user each; every internal node later hosts one policy network in the
/// hierarchical-structure policy gradient. Because the splits are balanced,
/// every root-to-leaf path has length `depth()` or `depth() - 1`, which is
/// what bounds the per-decision cost to O(branching · depth) instead of
/// O(#users) for a flat policy.
class HierarchicalTree {
 public:
  struct Node {
    std::size_t parent = kNoNode;
    /// Child node ids; empty for a leaf.
    std::vector<std::size_t> children;
    /// Index of the user embedding row this leaf represents; only valid
    /// when `children` is empty.
    std::size_t leaf_user = kNoNode;
    /// Distance (in edges) from the root.
    std::size_t level = 0;
  };

  /// Builds the tree over the rows of `user_embeddings` (one row per
  /// source-domain user, e.g. the pre-trained MF embeddings).
  /// `branching` >= 2. Deterministic in `rng`.
  static HierarchicalTree Build(const math::Matrix& user_embeddings,
                                std::size_t branching, util::Rng& rng,
                                std::size_t kmeans_iterations = 20);

  /// Builds a tree of (at most) the given depth by deriving the branching
  /// factor as the smallest `c` with `c^depth >= #users` — the knob swept
  /// by the paper's Figure 3. `depth` >= 1.
  static HierarchicalTree BuildWithDepth(const math::Matrix& user_embeddings,
                                         std::size_t depth, util::Rng& rng,
                                         std::size_t kmeans_iterations = 20);

  /// Smallest branching factor `c >= 2` with `c^depth >= num_users`.
  static std::size_t BranchingForDepth(std::size_t num_users,
                                       std::size_t depth);

  std::size_t branching() const { return branching_; }

  /// Maximum root-to-leaf path length in edges (= number of policy
  /// decisions on the longest path). Satisfies
  /// `branching^(depth-1) < #users <= branching^depth` as in the paper.
  std::size_t depth() const { return depth_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const { return num_leaves_; }
  std::size_t num_internal_nodes() const {
    return nodes_.size() - num_leaves_;
  }

  std::size_t root() const { return 0; }
  const Node& node(std::size_t id) const;
  bool IsLeaf(std::size_t id) const { return node(id).children.empty(); }

  /// Leaf ids in construction order.
  const std::vector<std::size_t>& leaves() const { return leaf_ids_; }

  /// Computes the masking bitmap (paper §4.3.2): a leaf is allowed iff
  /// `leaf_allowed(leaf_user)`, an internal node iff any child is allowed.
  /// The returned vector is indexed by node id.
  std::vector<bool> ComputeMask(
      const std::function<bool(std::size_t user)>& leaf_allowed) const;

  /// Returns the leaf id that represents `user` (kNoNode if out of range).
  std::size_t LeafOfUser(std::size_t user) const;

 private:
  HierarchicalTree() = default;

  /// Recursively splits `subset` (indices into the embedding rows) under
  /// `parent`; returns the new node's id.
  std::size_t BuildSubtree(const math::Matrix& embeddings,
                           std::vector<std::size_t> subset,
                           std::size_t parent, std::size_t level,
                           util::Rng& rng, std::size_t kmeans_iterations);

  std::vector<Node> nodes_;
  std::vector<std::size_t> leaf_ids_;
  std::vector<std::size_t> user_to_leaf_;
  std::size_t branching_ = 0;
  std::size_t depth_ = 0;
  std::size_t num_leaves_ = 0;
};

}  // namespace copyattack::cluster

#endif  // COPYATTACK_CLUSTER_HIERARCHICAL_TREE_H_
