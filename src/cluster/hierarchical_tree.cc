#include "cluster/hierarchical_tree.h"

#include <algorithm>

#include "cluster/kmeans.h"
#include "util/check.h"

namespace copyattack::cluster {

HierarchicalTree HierarchicalTree::Build(const math::Matrix& user_embeddings,
                                         std::size_t branching,
                                         util::Rng& rng,
                                         std::size_t kmeans_iterations) {
  CA_CHECK_GE(branching, 2U);
  CA_CHECK_GT(user_embeddings.rows(), 0U);

  HierarchicalTree tree;
  tree.branching_ = branching;
  tree.user_to_leaf_.assign(user_embeddings.rows(), kNoNode);

  std::vector<std::size_t> all(user_embeddings.rows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  tree.BuildSubtree(user_embeddings, std::move(all), kNoNode, 0, rng,
                    kmeans_iterations);

  tree.num_leaves_ = tree.leaf_ids_.size();
  for (const std::size_t leaf : tree.leaf_ids_) {
    tree.depth_ = std::max(tree.depth_, tree.nodes_[leaf].level);
  }
  return tree;
}

std::size_t HierarchicalTree::BranchingForDepth(std::size_t num_users,
                                                std::size_t depth) {
  CA_CHECK_GE(depth, 1U);
  CA_CHECK_GE(num_users, 1U);
  std::size_t c = 2;
  for (;;) {
    // Does c^depth cover num_users? Computed with overflow care.
    std::size_t capacity = 1;
    bool covered = false;
    for (std::size_t level = 0; level < depth; ++level) {
      if (capacity > num_users / c + 1) {
        covered = true;
        break;
      }
      capacity *= c;
      if (capacity >= num_users) {
        covered = true;
        break;
      }
    }
    if (covered) return c;
    ++c;
  }
}

HierarchicalTree HierarchicalTree::BuildWithDepth(
    const math::Matrix& user_embeddings, std::size_t depth, util::Rng& rng,
    std::size_t kmeans_iterations) {
  const std::size_t branching =
      BranchingForDepth(user_embeddings.rows(), depth);
  return Build(user_embeddings, branching, rng, kmeans_iterations);
}

std::size_t HierarchicalTree::BuildSubtree(
    const math::Matrix& embeddings, std::vector<std::size_t> subset,
    std::size_t parent, std::size_t level, util::Rng& rng,
    std::size_t kmeans_iterations) {
  const std::size_t id = nodes_.size();
  nodes_.emplace_back();
  nodes_[id].parent = parent;
  nodes_[id].level = level;

  if (subset.size() == 1) {
    nodes_[id].leaf_user = subset[0];
    user_to_leaf_[subset[0]] = id;
    leaf_ids_.push_back(id);
    return id;
  }

  const std::size_t k = std::min(branching_, subset.size());
  std::vector<std::size_t> assignment;
  if (subset.size() <= branching_) {
    // Few enough users that each becomes its own child (leaf).
    assignment.resize(subset.size());
    for (std::size_t i = 0; i < subset.size(); ++i) assignment[i] = i;
  } else {
    assignment =
        BalancedKMeans(embeddings, subset, k, rng, kmeans_iterations);
  }

  std::vector<std::vector<std::size_t>> groups(k);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    CA_CHECK_LT(assignment[i], k);
    groups[assignment[i]].push_back(subset[i]);
  }
  subset.clear();
  subset.shrink_to_fit();

  for (auto& group : groups) {
    CA_CHECK(!group.empty()) << "balanced split produced an empty cluster";
    const std::size_t child = BuildSubtree(
        embeddings, std::move(group), id, level + 1, rng, kmeans_iterations);
    nodes_[id].children.push_back(child);
  }
  return id;
}

const HierarchicalTree::Node& HierarchicalTree::node(std::size_t id) const {
  CA_CHECK_LT(id, nodes_.size());
  return nodes_[id];
}

std::vector<bool> HierarchicalTree::ComputeMask(
    const std::function<bool(std::size_t user)>& leaf_allowed) const {
  std::vector<bool> mask(nodes_.size(), false);
  // Nodes are created parent-before-child, so a reverse sweep sees every
  // child before its parent.
  for (std::size_t id = nodes_.size(); id-- > 0;) {
    const Node& n = nodes_[id];
    if (n.children.empty()) {
      mask[id] = leaf_allowed(n.leaf_user);
    } else {
      bool any = false;
      for (const std::size_t child : n.children) {
        if (mask[child]) {
          any = true;
          break;
        }
      }
      mask[id] = any;
    }
  }
  return mask;
}

std::size_t HierarchicalTree::LeafOfUser(std::size_t user) const {
  if (user >= user_to_leaf_.size()) return kNoNode;
  return user_to_leaf_[user];
}

}  // namespace copyattack::cluster
