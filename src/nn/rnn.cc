#include "nn/rnn.h"

#include <cmath>

#include "math/vector_ops.h"
#include "util/check.h"

namespace copyattack::nn {

RnnEncoder::RnnEncoder(std::string name, std::size_t input_dim,
                       std::size_t hidden_dim, util::Rng& rng,
                       float init_stddev)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(name + "/Wx", hidden_dim, input_dim),
      wh_(name + "/Wh", hidden_dim, hidden_dim),
      bias_(name + "/b", 1, hidden_dim) {
  CA_CHECK_GT(input_dim, 0U);
  CA_CHECK_GT(hidden_dim, 0U);
  wx_.value.FillNormal(rng, 0.0f, init_stddev);
  wh_.value.FillNormal(rng, 0.0f, init_stddev);
}

std::vector<float> RnnEncoder::Forward(
    const std::vector<std::vector<float>>& sequence,
    RnnContext* context) const {
  CA_CHECK(context != nullptr);
  context->inputs = sequence;
  context->hiddens.clear();
  std::vector<float> hidden(hidden_dim_, 0.0f);
  for (const auto& input : sequence) {
    CA_CHECK_EQ(input.size(), input_dim_);
    std::vector<float> next(hidden_dim_);
    for (std::size_t h = 0; h < hidden_dim_; ++h) {
      float pre = bias_.value(0, h);
      pre += math::Dot(wx_.value.Row(h), input.data(), input_dim_);
      pre += math::Dot(wh_.value.Row(h), hidden.data(), hidden_dim_);
      next[h] = std::tanh(pre);
    }
    context->hiddens.push_back(next);
    hidden = std::move(next);
  }
  return hidden;
}

void RnnEncoder::Backward(const RnnContext& context,
                          const std::vector<float>& dhidden_final) {
  CA_CHECK_EQ(dhidden_final.size(), hidden_dim_);
  const std::size_t steps = context.inputs.size();
  if (steps == 0) return;  // Empty sequence: the output was a constant zero.
  CA_CHECK_EQ(context.hiddens.size(), steps);

  std::vector<float> dhidden = dhidden_final;
  for (std::size_t t = steps; t-- > 0;) {
    const std::vector<float>& hidden = context.hiddens[t];
    const std::vector<float>& input = context.inputs[t];
    const std::vector<float>* prev_hidden =
        t > 0 ? &context.hiddens[t - 1] : nullptr;

    // Through the tanh: dpre = dhidden * (1 - h^2).
    std::vector<float> dpre(hidden_dim_);
    for (std::size_t h = 0; h < hidden_dim_; ++h) {
      dpre[h] = dhidden[h] * (1.0f - hidden[h] * hidden[h]);
    }

    std::vector<float> dprev(hidden_dim_, 0.0f);
    for (std::size_t h = 0; h < hidden_dim_; ++h) {
      const float g = dpre[h];
      if (g == 0.0f) continue;  // lint:allow(float-eq): sparsity skip
      bias_.grad(0, h) += g;
      math::Axpy(g, input.data(), wx_.grad.Row(h), input_dim_);
      if (prev_hidden != nullptr) {
        math::Axpy(g, prev_hidden->data(), wh_.grad.Row(h), hidden_dim_);
        math::Axpy(g, wh_.value.Row(h), dprev.data(), hidden_dim_);
      }
    }
    dhidden = std::move(dprev);
  }
}

ParameterList RnnEncoder::Parameters() { return {&wx_, &wh_, &bias_}; }

}  // namespace copyattack::nn
