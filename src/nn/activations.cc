#include "nn/activations.h"

#include <cmath>

namespace copyattack::nn {

float Sigmoid(float x) {
  if (x >= 0.0f) {
    return 1.0f / (1.0f + std::exp(-x));
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

void ApplyActivation(Activation activation, std::vector<float>& values) {
  switch (activation) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (auto& v : values) {
        if (v < 0.0f) v = 0.0f;
      }
      return;
    case Activation::kTanh:
      for (auto& v : values) v = std::tanh(v);
      return;
    case Activation::kSigmoid:
      for (auto& v : values) v = Sigmoid(v);
      return;
  }
}

void ApplyActivationGrad(Activation activation,
                         const std::vector<float>& outputs,
                         std::vector<float>& grad) {
  switch (activation) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        if (outputs[i] <= 0.0f) grad[i] = 0.0f;
      }
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] *= 1.0f - outputs[i] * outputs[i];
      }
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] *= outputs[i] * (1.0f - outputs[i]);
      }
      return;
  }
}

}  // namespace copyattack::nn
