#ifndef COPYATTACK_NN_GRU_H_
#define COPYATTACK_NN_GRU_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/rng.h"

namespace copyattack::nn {

/// Per-step activations recorded by `GruEncoder::Forward` for BPTT.
struct GruContext {
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> hiddens;    // h_t
  std::vector<std::vector<float>> updates;    // z_t
  std::vector<std::vector<float>> resets;     // r_t
  std::vector<std::vector<float>> candidates; // h~_t
};

/// Gated recurrent unit encoder (Cho et al. 2014) over a sequence of
/// embedding vectors, returning the final hidden state:
///   z_t = sigma(Wz x_t + Uz h_{t-1} + bz)
///   r_t = sigma(Wr x_t + Ur h_{t-1} + br)
///   h~_t = tanh(Wh x_t + Uh (r_t o h_{t-1}) + bh)
///   h_t = (1 - z_t) o h_{t-1} + z_t o h~_t
///
/// Drop-in alternative to the vanilla `RnnEncoder` for CopyAttack's
/// selected-users state (`HierarchicalSelectionPolicy::Config::encoder`);
/// the gating helps on longer selection histories. An empty sequence
/// encodes to the zero vector.
class GruEncoder {
 public:
  GruEncoder(std::string name, std::size_t input_dim, std::size_t hidden_dim,
             util::Rng& rng, float init_stddev = 0.1f);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// Encodes `sequence` (possibly empty) and fills `context`.
  std::vector<float> Forward(const std::vector<std::vector<float>>& sequence,
                             GruContext* context) const;

  /// Backpropagates dL/dh_T through time, accumulating parameter
  /// gradients. Input gradients are discarded (frozen embeddings).
  void Backward(const GruContext& context,
                const std::vector<float>& dhidden_final);

  /// Learnable parameters: Wz,Uz,bz, Wr,Ur,br, Wh,Uh,bh.
  ParameterList Parameters();

 private:
  /// pre = W x + U h + b for one gate.
  void GatePreactivation(const Parameter& w, const Parameter& u,
                         const Parameter& b, const std::vector<float>& x,
                         const std::vector<float>& h,
                         std::vector<float>* pre) const;

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Parameter wz_, uz_, bz_;
  Parameter wr_, ur_, br_;
  Parameter wh_, uh_, bh_;
};

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_GRU_H_
