#ifndef COPYATTACK_NN_SERIALIZE_H_
#define COPYATTACK_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "nn/parameter.h"

namespace copyattack::nn {

/// Writes the parameter values (not gradients) to `path` in a simple
/// little-endian binary format: a magic tag, the parameter count, then for
/// each parameter its name, shape, and float payload. Returns false on I/O
/// failure.
bool SaveParameters(const ParameterList& params, const std::string& path);

/// Restores parameter values from `path`. Names and shapes must match the
/// supplied list exactly (the intended use is checkpoint/restore of the
/// same model architecture). Returns false on I/O failure or mismatch.
bool LoadParameters(const ParameterList& params, const std::string& path);

/// Stream forms of the above, so parameter blobs can be embedded inside a
/// larger container (the campaign checkpoint, core/checkpoint.h) instead
/// of owning a whole file. Same byte format, including the magic tag.
bool SaveParameters(const ParameterList& params, std::ostream& out);
bool LoadParameters(const ParameterList& params, std::istream& in);

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_SERIALIZE_H_
