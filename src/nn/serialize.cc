#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace copyattack::nn {
namespace {

constexpr std::uint32_t kMagic = 0xCA11AB1E;

void WriteU32(std::ostream& out, std::uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU32(std::istream& in, std::uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveParameters(const ParameterList& params, std::ostream& out) {
  if (!out) return false;
  WriteU32(out, kMagic);
  WriteU32(out, static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    WriteU32(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU32(out, static_cast<std::uint32_t>(p->value.rows()));
    WriteU32(out, static_cast<std::uint32_t>(p->value.cols()));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool LoadParameters(const ParameterList& params, std::istream& in) {
  if (!in) return false;
  std::uint32_t magic = 0, count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) return false;
  if (!ReadU32(in, &count) || count != params.size()) return false;
  for (Parameter* p : params) {
    std::uint32_t name_size = 0, rows = 0, cols = 0;
    if (!ReadU32(in, &name_size)) return false;
    std::string name(name_size, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_size));
    if (!in || name != p->name) return false;
    if (!ReadU32(in, &rows) || !ReadU32(in, &cols)) return false;
    if (rows != p->value.rows() || cols != p->value.cols()) return false;
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in) return false;
  }
  return true;
}

bool SaveParameters(const ParameterList& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return SaveParameters(params, out);
}

bool LoadParameters(const ParameterList& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  return LoadParameters(params, in);
}

}  // namespace copyattack::nn
