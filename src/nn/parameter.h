#ifndef COPYATTACK_NN_PARAMETER_H_
#define COPYATTACK_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "math/matrix.h"
#include "util/annotations.h"

namespace copyattack::nn {

/// A learnable tensor together with its accumulated gradient. Layers own
/// their parameters; optimizers mutate them through the pointers returned by
/// each module's `Parameters()`.
struct Parameter CA_CHECKPOINTED(SaveParameters, LoadParameters) {
  /// Human-readable name used by serialization and debugging ("dense/W").
  std::string name;
  math::Matrix value;
  math::Matrix grad CA_NOT_CHECKPOINTED(
      "per-step scratch, zeroed before each backward pass");

  /// Allocates value and grad with the given shape (zero-filled).
  Parameter(std::string parameter_name, std::size_t rows, std::size_t cols)
      : name(std::move(parameter_name)),
        value(rows, cols),
        grad(rows, cols) {}

  /// Clears the accumulated gradient.
  void ZeroGrad() { grad.Zero(); }
};

/// Convenience alias: the flat list of parameters a module exposes.
using ParameterList = std::vector<Parameter*>;

/// Appends `extra` to `list` (modules compose their children this way).
inline void AppendParameters(ParameterList& list, ParameterList extra) {
  list.insert(list.end(), extra.begin(), extra.end());
}

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_PARAMETER_H_
