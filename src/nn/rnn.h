#ifndef COPYATTACK_NN_RNN_H_
#define COPYATTACK_NN_RNN_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/rng.h"

namespace copyattack::nn {

/// Hidden states recorded by `RnnEncoder::Forward`, consumed by `Backward`.
struct RnnContext {
  /// inputs[t] is the t-th input vector.
  std::vector<std::vector<float>> inputs;
  /// hiddens[t] is h_t (post-tanh); hiddens.size() == inputs.size().
  std::vector<std::vector<float>> hiddens;
};

/// Vanilla (Elman) recurrent encoder `h_t = tanh(Wx x_t + Wh h_{t-1} + b)`
/// over a sequence of embedding vectors, returning the final hidden state.
///
/// CopyAttack uses this to summarize the set of already-selected source
/// users U^{B->A}_t into the state representation x_{v*} that conditions
/// every node policy of the hierarchical tree (paper §4.3.3). An empty
/// sequence encodes to the zero vector (the situation before the random
/// seeding action a_0).
class RnnEncoder {
 public:
  RnnEncoder(std::string name, std::size_t input_dim, std::size_t hidden_dim,
             util::Rng& rng, float init_stddev = 0.1f);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// Encodes `sequence` (possibly empty) and fills `context` for a later
  /// `Backward`. Returns h_T (zero vector for an empty sequence).
  std::vector<float> Forward(
      const std::vector<std::vector<float>>& sequence,
      RnnContext* context) const;

  /// Backpropagates dL/dh_T through time, accumulating parameter gradients.
  /// Gradients w.r.t. the inputs are discarded (the inputs are frozen
  /// pre-trained MF embeddings, per the paper).
  void Backward(const RnnContext& context,
                const std::vector<float>& dhidden_final);

  /// Learnable parameters: Wx, Wh, b.
  ParameterList Parameters();

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Parameter wx_;  // hidden x input
  Parameter wh_;  // hidden x hidden
  Parameter bias_;  // 1 x hidden
};

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_RNN_H_
