#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace copyattack::nn {

void ClipGradientsByGlobalNorm(const ParameterList& params, float clip_norm) {
  if (clip_norm <= 0.0f) return;
  double sum_sq = 0.0;
  for (const Parameter* p : params) {
    sum_sq += p->grad.SquaredNorm();
  }
  const double norm = std::sqrt(sum_sq);
  if (norm <= clip_norm) return;
  const float scale = static_cast<float>(clip_norm / norm);
  for (Parameter* p : params) {
    p->grad.Scale(scale);
  }
}

void Sgd::Step(const ParameterList& params) {
  ClipGradientsByGlobalNorm(params, clip_norm_);
  for (Parameter* p : params) {
    p->value.AddScaled(p->grad, -learning_rate_);
    p->ZeroGrad();
  }
}

void Adam::Step(const ParameterList& params) {
  ClipGradientsByGlobalNorm(params, clip_norm_);
  if (slots_.empty()) {
    slots_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      slots_[i].m.Resize(params[i]->value.rows(), params[i]->value.cols());
      slots_[i].v.Resize(params[i]->value.rows(), params[i]->value.cols());
    }
  }
  CA_CHECK_EQ(slots_.size(), params.size())
      << "Adam must be reused with a stable parameter list";
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter& p = *params[i];
    Slot& slot = slots_[i];
    CA_CHECK_EQ(slot.m.size(), p.value.size());
    float* value = p.value.data();
    float* grad = p.grad.data();
    float* m = slot.m.data();
    float* v = slot.v.data();
    const std::size_t n = p.value.size();
    for (std::size_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      value[j] -= static_cast<float>(learning_rate_ * m_hat /
                                     (std::sqrt(v_hat) + epsilon_));
    }
    p.ZeroGrad();
  }
}

}  // namespace copyattack::nn
