#ifndef COPYATTACK_NN_OPTIMIZER_H_
#define COPYATTACK_NN_OPTIMIZER_H_

#include <cstddef>
#include <vector>

#include "math/matrix.h"
#include "nn/parameter.h"

namespace copyattack::nn {

/// Abstract gradient-descent optimizer over an externally owned parameter
/// list. `Step` consumes the accumulated gradients and zeroes them.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently accumulated in
  /// `params`, then zeroes those gradients.
  virtual void Step(const ParameterList& params) = 0;
};

/// Plain SGD: `w -= lr * g`, with optional global-norm gradient clipping.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float clip_norm = 0.0f)
      : learning_rate_(learning_rate), clip_norm_(clip_norm) {}

  void Step(const ParameterList& params) override;

 private:
  float learning_rate_;
  float clip_norm_;  // 0 disables clipping
};

/// Adam (Kingma & Ba). Slot state is keyed by parameter identity, so one
/// Adam instance must be used with a stable parameter list — the normal
/// pattern of one optimizer per model.
class Adam final : public Optimizer {
 public:
  explicit Adam(float learning_rate, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f, float clip_norm = 0.0f)
      : learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon),
        clip_norm_(clip_norm) {}

  void Step(const ParameterList& params) override;

 private:
  struct Slot {
    math::Matrix m;
    math::Matrix v;
  };

  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float clip_norm_;
  std::size_t step_count_ = 0;
  std::vector<Slot> slots_;
};

/// Scales all gradients so their global L2 norm does not exceed
/// `clip_norm`; no-op when `clip_norm <= 0` or the norm is already smaller.
void ClipGradientsByGlobalNorm(const ParameterList& params, float clip_norm);

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_OPTIMIZER_H_
