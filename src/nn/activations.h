#ifndef COPYATTACK_NN_ACTIVATIONS_H_
#define COPYATTACK_NN_ACTIVATIONS_H_

#include <vector>

namespace copyattack::nn {

/// Supported element-wise nonlinearities.
enum class Activation {
  kIdentity,
  kRelu,
  kTanh,
  kSigmoid,
};

/// Applies the activation in place.
void ApplyActivation(Activation activation, std::vector<float>& values);

/// Multiplies `grad` in place by the activation derivative, evaluated from
/// the *post-activation* outputs (valid for ReLU/tanh/sigmoid/identity).
void ApplyActivationGrad(Activation activation,
                         const std::vector<float>& outputs,
                         std::vector<float>& grad);

/// Scalar sigmoid, exposed for the BPR loss in the recommenders.
float Sigmoid(float x);

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_ACTIVATIONS_H_
