#include "nn/gru.h"

#include <cmath>

#include "math/vector_ops.h"
#include "nn/activations.h"
#include "util/check.h"

namespace copyattack::nn {

GruEncoder::GruEncoder(std::string name, std::size_t input_dim,
                       std::size_t hidden_dim, util::Rng& rng,
                       float init_stddev)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wz_(name + "/Wz", hidden_dim, input_dim),
      uz_(name + "/Uz", hidden_dim, hidden_dim),
      bz_(name + "/bz", 1, hidden_dim),
      wr_(name + "/Wr", hidden_dim, input_dim),
      ur_(name + "/Ur", hidden_dim, hidden_dim),
      br_(name + "/br", 1, hidden_dim),
      wh_(name + "/Wh", hidden_dim, input_dim),
      uh_(name + "/Uh", hidden_dim, hidden_dim),
      bh_(name + "/bh", 1, hidden_dim) {
  CA_CHECK_GT(input_dim, 0U);
  CA_CHECK_GT(hidden_dim, 0U);
  for (Parameter* p : {&wz_, &uz_, &wr_, &ur_, &wh_, &uh_}) {
    p->value.FillNormal(rng, 0.0f, init_stddev);
  }
}

void GruEncoder::GatePreactivation(const Parameter& w, const Parameter& u,
                                   const Parameter& b,
                                   const std::vector<float>& x,
                                   const std::vector<float>& h,
                                   std::vector<float>* pre) const {
  pre->resize(hidden_dim_);
  for (std::size_t i = 0; i < hidden_dim_; ++i) {
    (*pre)[i] = b.value(0, i) +
                math::Dot(w.value.Row(i), x.data(), input_dim_) +
                math::Dot(u.value.Row(i), h.data(), hidden_dim_);
  }
}

std::vector<float> GruEncoder::Forward(
    const std::vector<std::vector<float>>& sequence,
    GruContext* context) const {
  CA_CHECK(context != nullptr);
  context->inputs = sequence;
  context->hiddens.clear();
  context->updates.clear();
  context->resets.clear();
  context->candidates.clear();

  std::vector<float> hidden(hidden_dim_, 0.0f);
  std::vector<float> z, r, candidate, gated;
  for (const auto& input : sequence) {
    CA_CHECK_EQ(input.size(), input_dim_);
    GatePreactivation(wz_, uz_, bz_, input, hidden, &z);
    GatePreactivation(wr_, ur_, br_, input, hidden, &r);
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      z[i] = Sigmoid(z[i]);
      r[i] = Sigmoid(r[i]);
    }
    gated.resize(hidden_dim_);
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      gated[i] = r[i] * hidden[i];
    }
    GatePreactivation(wh_, uh_, bh_, input, gated, &candidate);
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      candidate[i] = std::tanh(candidate[i]);
    }
    std::vector<float> next(hidden_dim_);
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      next[i] = (1.0f - z[i]) * hidden[i] + z[i] * candidate[i];
    }
    context->updates.push_back(z);
    context->resets.push_back(r);
    context->candidates.push_back(candidate);
    context->hiddens.push_back(next);
    hidden = std::move(next);
  }
  return hidden;
}

void GruEncoder::Backward(const GruContext& context,
                          const std::vector<float>& dhidden_final) {
  CA_CHECK_EQ(dhidden_final.size(), hidden_dim_);
  const std::size_t steps = context.inputs.size();
  if (steps == 0) return;
  CA_CHECK_EQ(context.hiddens.size(), steps);

  const std::vector<float> zero(hidden_dim_, 0.0f);
  std::vector<float> dhidden = dhidden_final;
  for (std::size_t t = steps; t-- > 0;) {
    const std::vector<float>& x = context.inputs[t];
    const std::vector<float>& h_prev =
        t > 0 ? context.hiddens[t - 1] : zero;
    const std::vector<float>& z = context.updates[t];
    const std::vector<float>& r = context.resets[t];
    const std::vector<float>& candidate = context.candidates[t];

    std::vector<float> dprev(hidden_dim_, 0.0f);
    std::vector<float> dpre_h(hidden_dim_), dpre_z(hidden_dim_),
        dpre_r(hidden_dim_, 0.0f), dgated(hidden_dim_, 0.0f);

    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      const float dh = dhidden[i];
      // h = (1-z) h_prev + z h~
      const float dz = dh * (candidate[i] - h_prev[i]);
      const float dcand = dh * z[i];
      dprev[i] += dh * (1.0f - z[i]);
      dpre_h[i] = dcand * (1.0f - candidate[i] * candidate[i]);
      dpre_z[i] = dz * z[i] * (1.0f - z[i]);
    }

    // Through the candidate gate: pre_h = Wh x + Uh (r o h_prev) + bh.
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      const float g = dpre_h[i];
      if (g == 0.0f) continue;  // lint:allow(float-eq): sparsity skip
      bh_.grad(0, i) += g;
      math::Axpy(g, x.data(), wh_.grad.Row(i), input_dim_);
      for (std::size_t j = 0; j < hidden_dim_; ++j) {
        uh_.grad(i, j) += g * r[j] * h_prev[j];
        dgated[j] += g * uh_.value(i, j);
      }
    }
    for (std::size_t j = 0; j < hidden_dim_; ++j) {
      const float dr = dgated[j] * h_prev[j];
      dprev[j] += dgated[j] * r[j];
      dpre_r[j] = dr * r[j] * (1.0f - r[j]);
    }

    // Through the reset and update gates: pre = W x + U h_prev + b.
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      const float gr = dpre_r[i];
      if (gr != 0.0f) {  // lint:allow(float-eq): sparsity skip
        br_.grad(0, i) += gr;
        math::Axpy(gr, x.data(), wr_.grad.Row(i), input_dim_);
        math::Axpy(gr, h_prev.data(), ur_.grad.Row(i), hidden_dim_);
        math::Axpy(gr, ur_.value.Row(i), dprev.data(), hidden_dim_);
      }
      const float gz = dpre_z[i];
      if (gz != 0.0f) {  // lint:allow(float-eq): sparsity skip
        bz_.grad(0, i) += gz;
        math::Axpy(gz, x.data(), wz_.grad.Row(i), input_dim_);
        math::Axpy(gz, h_prev.data(), uz_.grad.Row(i), hidden_dim_);
        math::Axpy(gz, uz_.value.Row(i), dprev.data(), hidden_dim_);
      }
    }
    dhidden = std::move(dprev);
  }
}

ParameterList GruEncoder::Parameters() {
  return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_};
}

}  // namespace copyattack::nn
