#include "nn/mlp.h"

#include "util/check.h"

namespace copyattack::nn {

Mlp::Mlp(std::string name, const std::vector<std::size_t>& dims,
         util::Rng& rng, Activation hidden_activation, float init_stddev)
    : hidden_activation_(hidden_activation) {
  CA_CHECK_GE(dims.size(), 2U);
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(name + "/layer" + std::to_string(i), dims[i],
                         dims[i + 1], rng, init_stddev);
  }
}

std::vector<float> Mlp::Forward(const std::vector<float>& in,
                                MlpContext* context) const {
  CA_CHECK(context != nullptr);
  context->activations.clear();
  context->activations.push_back(in);
  std::vector<float> current = in;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    std::vector<float> next;
    layers_[i].Forward(current, &next);
    if (i + 1 < layers_.size()) {
      ApplyActivation(hidden_activation_, next);
    }
    context->activations.push_back(next);
    current = std::move(next);
  }
  return current;
}

void Mlp::Backward(const MlpContext& context,
                   const std::vector<float>& dlogits,
                   std::vector<float>* din) {
  CA_CHECK_EQ(context.activations.size(), layers_.size() + 1);
  std::vector<float> dout = dlogits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    if (i + 1 < layers_.size()) {
      // dout currently holds dL/d(post-activation of layer i); convert to
      // dL/d(pre-activation).
      ApplyActivationGrad(hidden_activation_, context.activations[i + 1],
                          dout);
    }
    std::vector<float> dinput;
    layers_[i].Backward(context.activations[i], dout,
                        (i == 0 && din == nullptr) ? nullptr : &dinput);
    dout = std::move(dinput);
  }
  if (din != nullptr) {
    *din = std::move(dout);
  }
}

ParameterList Mlp::Parameters() {
  ParameterList params;
  for (auto& layer : layers_) {
    AppendParameters(params, layer.Parameters());
  }
  return params;
}

}  // namespace copyattack::nn
