#ifndef COPYATTACK_NN_DENSE_H_
#define COPYATTACK_NN_DENSE_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/rng.h"

namespace copyattack::nn {

/// Fully connected layer `y = W x + b` operating on single samples.
///
/// The policy networks in this project always score one state at a time
/// (an RL decision, not a minibatch), so the layer API is vector-in /
/// vector-out. `Backward` accumulates parameter gradients; the caller passes
/// the same input it used for `Forward` (the framework recomputes forward
/// passes during REINFORCE updates instead of caching activations inside
/// layers, keeping the layers stateless and cheap to reason about).
class DenseLayer {
 public:
  /// Creates a layer mapping `in_dim` -> `out_dim`, with weights initialized
  /// N(0, init_stddev) and zero bias (the paper initializes all network
  /// parameters from a Gaussian with stddev 0.1).
  DenseLayer(std::string name, std::size_t in_dim, std::size_t out_dim,
             util::Rng& rng, float init_stddev = 0.1f);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  /// Computes `out = W in + b`. `out` is resized to `out_dim`.
  void Forward(const std::vector<float>& in, std::vector<float>* out) const;

  /// Accumulates dL/dW and dL/db from (`in`, `dout`) and, if `din` is not
  /// null, writes dL/din (resized to `in_dim`).
  void Backward(const std::vector<float>& in, const std::vector<float>& dout,
                std::vector<float>* din);

  /// Learnable parameters (weight then bias).
  ParameterList Parameters();

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  Parameter weight_;  // out_dim x in_dim
  Parameter bias_;    // 1 x out_dim
};

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_DENSE_H_
