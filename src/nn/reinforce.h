#ifndef COPYATTACK_NN_REINFORCE_H_
#define COPYATTACK_NN_REINFORCE_H_

#include <cstddef>
#include <vector>

#include "util/annotations.h"

namespace copyattack::nn {

/// Computes discounted returns G_t = sum_k gamma^(k-t) r_k for a whole
/// episode's reward sequence.
std::vector<double> DiscountedReturns(const std::vector<double>& rewards,
                                      double gamma);

/// Gradient of `-log softmax(logits)[action] * advantage` with respect to
/// the logits, honoring an action mask: masked logits get exactly zero
/// gradient and zero probability. `probs` must be the (masked) softmax
/// output that was used to sample `action`. The result is
/// `(probs[i] - 1{i == action}) * advantage` on unmasked entries.
std::vector<float> PolicyGradientLogits(const std::vector<float>& probs,
                                        std::size_t action,
                                        double advantage,
                                        const std::vector<bool>& mask);

/// Unmasked convenience overload.
std::vector<float> PolicyGradientLogits(const std::vector<float>& probs,
                                        std::size_t action, double advantage);

/// Adds the gradient of `-beta * H(probs)` (entropy bonus, encouraging
/// exploration) into `dlogits`, honoring the mask. For softmax policies
/// dH/dlogit_i = -p_i * (log p_i + H).
void AddEntropyBonusGrad(const std::vector<float>& probs, double beta,
                         const std::vector<bool>& mask,
                         std::vector<float>& dlogits);

/// Exponential-moving-average reward baseline used as the REINFORCE
/// variance reducer: advantage = return - baseline.
class MovingBaseline CA_CHECKPOINTED(SaveState, RestoreState) {
 public:
  /// `momentum` in [0,1): how much of the old baseline to keep per update.
  explicit MovingBaseline(double momentum = 0.9) : momentum_(momentum) {}

  /// Current baseline value (0 until the first observation).
  double value() const { return initialized_ ? value_ : 0.0; }

  /// Folds a new observed return into the baseline and returns the
  /// advantage (observation minus the *pre-update* baseline).
  double Update(double observed_return);

  /// Serializable snapshot (campaign checkpointing): restoring it resumes
  /// the advantage sequence exactly. `momentum` is configuration, not
  /// state, and is deliberately excluded.
  struct State CA_CHECKPOINTED(MovingBaseline::SaveState,
                               MovingBaseline::RestoreState) {
    double value = 0.0;
    bool initialized = false;
  };

  State SaveState() const {
    State state;
    state.value = value_;
    state.initialized = initialized_;
    return state;
  }
  void RestoreState(const State& state) {
    value_ = state.value;
    initialized_ = state.initialized;
  }

 private:
  double momentum_ CA_NOT_CHECKPOINTED("configuration, not stream state");
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_REINFORCE_H_
