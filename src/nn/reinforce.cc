#include "nn/reinforce.h"

#include <cmath>

#include "util/check.h"

namespace copyattack::nn {

std::vector<double> DiscountedReturns(const std::vector<double>& rewards,
                                      double gamma) {
  std::vector<double> returns(rewards.size(), 0.0);
  double running = 0.0;
  for (std::size_t t = rewards.size(); t-- > 0;) {
    running = rewards[t] + gamma * running;
    returns[t] = running;
  }
  return returns;
}

std::vector<float> PolicyGradientLogits(const std::vector<float>& probs,
                                        std::size_t action, double advantage,
                                        const std::vector<bool>& mask) {
  CA_CHECK_EQ(probs.size(), mask.size());
  CA_CHECK_LT(action, probs.size());
  CA_CHECK(mask[action]) << "sampled action must be unmasked";
  std::vector<float> dlogits(probs.size(), 0.0f);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (!mask[i]) continue;
    const float indicator = (i == action) ? 1.0f : 0.0f;
    dlogits[i] = static_cast<float>((probs[i] - indicator) * advantage);
  }
  return dlogits;
}

std::vector<float> PolicyGradientLogits(const std::vector<float>& probs,
                                        std::size_t action,
                                        double advantage) {
  return PolicyGradientLogits(probs, action, advantage,
                              std::vector<bool>(probs.size(), true));
}

void AddEntropyBonusGrad(const std::vector<float>& probs, double beta,
                         const std::vector<bool>& mask,
                         std::vector<float>& dlogits) {
  if (beta == 0.0) return;  // lint:allow(float-eq): exact-zero disables baseline
  CA_CHECK_EQ(probs.size(), dlogits.size());
  CA_CHECK_EQ(probs.size(), mask.size());
  double entropy = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (mask[i] && probs[i] > 0.0f) {
      entropy -= probs[i] * std::log(probs[i]);
    }
  }
  // Loss includes -beta*H; dLoss/dlogit_i = beta * p_i * (log p_i + H).
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (!mask[i] || probs[i] <= 0.0f) continue;
    dlogits[i] += static_cast<float>(
        beta * probs[i] * (std::log(probs[i]) + entropy));
  }
}

double MovingBaseline::Update(double observed_return) {
  const double previous = initialized_ ? value_ : 0.0;
  if (!initialized_) {
    value_ = observed_return;
    initialized_ = true;
  } else {
    value_ = momentum_ * value_ + (1.0 - momentum_) * observed_return;
  }
  return observed_return - previous;
}

}  // namespace copyattack::nn
