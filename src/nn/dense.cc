#include "nn/dense.h"

#include "math/vector_ops.h"
#include "util/check.h"

namespace copyattack::nn {

DenseLayer::DenseLayer(std::string name, std::size_t in_dim,
                       std::size_t out_dim, util::Rng& rng,
                       float init_stddev)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(name + "/W", out_dim, in_dim),
      bias_(name + "/b", 1, out_dim) {
  CA_CHECK_GT(in_dim, 0U);
  CA_CHECK_GT(out_dim, 0U);
  weight_.value.FillNormal(rng, 0.0f, init_stddev);
}

void DenseLayer::Forward(const std::vector<float>& in,
                         std::vector<float>* out) const {
  CA_CHECK_EQ(in.size(), in_dim_);
  out->resize(out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    (*out)[o] = bias_.value(0, o) +
                math::Dot(weight_.value.Row(o), in.data(), in_dim_);
  }
}

void DenseLayer::Backward(const std::vector<float>& in,
                          const std::vector<float>& dout,
                          std::vector<float>* din) {
  CA_CHECK_EQ(in.size(), in_dim_);
  CA_CHECK_EQ(dout.size(), out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    const float g = dout[o];
    if (g == 0.0f) continue;  // lint:allow(float-eq): sparsity skip
    bias_.grad(0, o) += g;
    math::Axpy(g, in.data(), weight_.grad.Row(o), in_dim_);
  }
  if (din != nullptr) {
    din->assign(in_dim_, 0.0f);
    for (std::size_t o = 0; o < out_dim_; ++o) {
      const float g = dout[o];
      if (g == 0.0f) continue;  // lint:allow(float-eq): sparsity skip
      math::Axpy(g, weight_.value.Row(o), din->data(), in_dim_);
    }
  }
}

ParameterList DenseLayer::Parameters() { return {&weight_, &bias_}; }

}  // namespace copyattack::nn
