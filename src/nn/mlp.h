#ifndef COPYATTACK_NN_MLP_H_
#define COPYATTACK_NN_MLP_H_

#include <string>
#include <vector>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/parameter.h"
#include "util/rng.h"

namespace copyattack::nn {

/// Activations recorded during `Mlp::Forward`, needed by `Mlp::Backward`.
/// Contexts are caller-owned so an `Mlp` itself is immutable during
/// inference and multiple forward passes can be replayed independently.
struct MlpContext {
  /// activations[0] is the input; activations[i+1] is the output of layer i
  /// after its nonlinearity.
  std::vector<std::vector<float>> activations;
};

/// Multi-layer perceptron with ReLU hidden layers and an identity output
/// layer (producing raw logits). This is the body of every policy network
/// in the paper: the per-tree-node selection policies and the crafting
/// policy.
class Mlp {
 public:
  /// `dims` = {input, hidden..., output}; at least {in, out}.
  Mlp(std::string name, const std::vector<std::size_t>& dims, util::Rng& rng,
      Activation hidden_activation = Activation::kRelu,
      float init_stddev = 0.1f);

  std::size_t in_dim() const { return layers_.front().in_dim(); }
  std::size_t out_dim() const { return layers_.back().out_dim(); }

  /// Runs the network; fills `context` for a later `Backward` and returns
  /// the output logits.
  std::vector<float> Forward(const std::vector<float>& in,
                             MlpContext* context) const;

  /// Accumulates parameter gradients given dL/dlogits. If `din` is not null
  /// it receives dL/dinput. `context` must come from a matching `Forward`.
  void Backward(const MlpContext& context, const std::vector<float>& dlogits,
                std::vector<float>* din);

  /// All learnable parameters, layer by layer.
  ParameterList Parameters();

 private:
  std::vector<DenseLayer> layers_;
  Activation hidden_activation_;
};

}  // namespace copyattack::nn

#endif  // COPYATTACK_NN_MLP_H_
