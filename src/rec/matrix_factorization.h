#ifndef COPYATTACK_REC_MATRIX_FACTORIZATION_H_
#define COPYATTACK_REC_MATRIX_FACTORIZATION_H_

#include <string>

#include "math/matrix.h"
#include "rec/recommender.h"

namespace copyattack::rec {

/// Hyper-parameters of the BPR matrix-factorization model.
struct MfConfig {
  std::size_t embedding_dim = 8;  ///< paper uses embedding size 8
  float learning_rate = 0.05f;
  float regularization = 0.01f;
  float init_stddev = 0.1f;  ///< Gaussian init per the paper
};

/// Matrix factorization (Koren et al.) trained with the BPR pairwise loss
/// on implicit feedback.
///
/// In CopyAttack this model plays two roles:
///  * pre-training the source-domain user/item embeddings that feed the
///    hierarchical clustering tree and the policy-network states (paper
///    §4.3.1: "user representations learned via matrix factorization");
///  * an alternative (transductive) target model for the inductive-vs-refit
///    ablation: a pure MF target only reacts to injections when the
///    platform periodically retrains, unlike the inductive PinSage-style
///    model.
///
/// Users appended after training are folded in as the mean of their
/// profile's item embeddings (standard fold-in).
class MatrixFactorization final : public Recommender {
 public:
  explicit MatrixFactorization(const MfConfig& config = MfConfig());

  void InitTraining(const data::Dataset& train, util::Rng& rng) override;
  void TrainEpoch(const data::Dataset& train, util::Rng& rng) override;
  void BeginServing(const data::Dataset& current) override;
  void ObserveNewUser(const data::Dataset& current,
                      data::UserId user) override;
  bool CheckpointServing() override;
  bool RollbackServing() override;
  float Score(data::UserId user, data::ItemId item) const override;
  std::string name() const override { return "MF-BPR"; }

  /// Learned user embeddings (rows = users seen at training time).
  const math::Matrix& user_embeddings() const { return users_; }

  /// Learned item embeddings (rows = the full item universe).
  const math::Matrix& item_embeddings() const { return items_; }

  std::size_t embedding_dim() const { return config_.embedding_dim; }

 private:
  /// Computes the fold-in embedding (profile mean of item embeddings).
  void FoldInUser(const data::Dataset& current, data::UserId user);

  MfConfig config_;
  std::size_t trained_users_ = 0;
  math::Matrix users_;    // serving users (trained + folded-in)
  math::Matrix items_;    // num_items x dim
  /// Serving-state checkpoint: the row count to truncate back to.
  /// Invalidated by any training (fold-ins depend on the item embeddings).
  std::size_t serving_checkpoint_rows_ = 0;
  bool serving_checkpoint_valid_ = false;
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_MATRIX_FACTORIZATION_H_
