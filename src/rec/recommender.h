#ifndef COPYATTACK_REC_RECOMMENDER_H_
#define COPYATTACK_REC_RECOMMENDER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/types.h"
#include "util/rng.h"

namespace copyattack::rec {

/// Interface of a trainable Top-k recommender.
///
/// Lifecycle:
///  1. `InitTraining` + repeated `TrainEpoch` (driven by `TrainWithEarly-
///     Stopping`), or the convenience `Fit` which runs a fixed epoch count.
///  2. `BeginServing(current)` builds serving-time representations over the
///     *current* interaction data — which may already contain users that
///     were not present during training (the model must handle them
///     inductively, e.g. by aggregating item representations).
///  3. `ObserveNewUser` incrementally folds a newly appended user into the
///     serving state. This is the channel through which an injection
///     attack perturbs the model: the copied profiles change the
///     aggregated item representations without any retraining.
///  4. `Score(user, item)` ranks candidates.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Resets parameters and prepares for `TrainEpoch` over `train`.
  virtual void InitTraining(const data::Dataset& train, util::Rng& rng) = 0;

  /// Runs one pass of stochastic training over `train`.
  virtual void TrainEpoch(const data::Dataset& train, util::Rng& rng) = 0;

  /// Convenience: `InitTraining` followed by `epochs` x `TrainEpoch` and a
  /// final `BeginServing(train)`.
  void Fit(const data::Dataset& train, std::size_t epochs, util::Rng& rng);

  /// Rebuilds serving-time state from `current` (all users, including ones
  /// unseen during training).
  virtual void BeginServing(const data::Dataset& current) = 0;

  /// Incrementally registers the newly appended `user` of `current`.
  virtual void ObserveNewUser(const data::Dataset& current,
                              data::UserId user) = 0;

  /// Snapshots the current serving-time state so a later `RollbackServing`
  /// can rewind past users observed afterwards — the model-side half of the
  /// environment's episode snapshot/rollback (the dataset side is
  /// `data::Dataset::Checkpoint`). Returns false when the model does not
  /// support serving checkpoints (callers fall back to `BeginServing`).
  /// Any training after the checkpoint invalidates it.
  virtual bool CheckpointServing() { return false; }

  /// Restores the serving state captured by the last `CheckpointServing`
  /// in O(observed-since-checkpoint), bit-identically to a full
  /// `BeginServing` rebuild over the rolled-back dataset. Returns false
  /// (leaving the model untouched) when no valid checkpoint exists.
  virtual bool RollbackServing() { return false; }

  /// Preference score of `user` for `item` under the serving state.
  virtual float Score(data::UserId user, data::ItemId item) const = 0;

  /// Short model name for reports.
  virtual std::string name() const = 0;

  /// Scores a candidate list (order preserved).
  std::vector<float> ScoreCandidates(
      data::UserId user, const std::vector<data::ItemId>& candidates) const;

  /// Scores a candidate list into a caller-provided buffer of
  /// `candidates.size()` floats — the allocation-free row primitive the
  /// batched oracle uses to fill one contiguous user x item score block.
  void ScoreCandidatesInto(data::UserId user,
                           const std::vector<data::ItemId>& candidates,
                           float* out) const;
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_RECOMMENDER_H_
