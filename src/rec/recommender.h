#ifndef COPYATTACK_REC_RECOMMENDER_H_
#define COPYATTACK_REC_RECOMMENDER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/types.h"
#include "util/rng.h"

namespace copyattack::rec {

/// Interface of a trainable Top-k recommender.
///
/// Lifecycle:
///  1. `InitTraining` + repeated `TrainEpoch` (driven by `TrainWithEarly-
///     Stopping`), or the convenience `Fit` which runs a fixed epoch count.
///  2. `BeginServing(current)` builds serving-time representations over the
///     *current* interaction data — which may already contain users that
///     were not present during training (the model must handle them
///     inductively, e.g. by aggregating item representations).
///  3. `ObserveNewUser` incrementally folds a newly appended user into the
///     serving state. This is the channel through which an injection
///     attack perturbs the model: the copied profiles change the
///     aggregated item representations without any retraining.
///  4. `Score(user, item)` ranks candidates.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Resets parameters and prepares for `TrainEpoch` over `train`.
  virtual void InitTraining(const data::Dataset& train, util::Rng& rng) = 0;

  /// Runs one pass of stochastic training over `train`.
  virtual void TrainEpoch(const data::Dataset& train, util::Rng& rng) = 0;

  /// Convenience: `InitTraining` followed by `epochs` x `TrainEpoch` and a
  /// final `BeginServing(train)`.
  void Fit(const data::Dataset& train, std::size_t epochs, util::Rng& rng);

  /// Rebuilds serving-time state from `current` (all users, including ones
  /// unseen during training).
  virtual void BeginServing(const data::Dataset& current) = 0;

  /// Incrementally registers the newly appended `user` of `current`.
  virtual void ObserveNewUser(const data::Dataset& current,
                              data::UserId user) = 0;

  /// Preference score of `user` for `item` under the serving state.
  virtual float Score(data::UserId user, data::ItemId item) const = 0;

  /// Short model name for reports.
  virtual std::string name() const = 0;

  /// Scores a candidate list (order preserved).
  std::vector<float> ScoreCandidates(
      data::UserId user, const std::vector<data::ItemId>& candidates) const;
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_RECOMMENDER_H_
