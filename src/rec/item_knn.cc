#include "rec/item_knn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::rec {

ItemKnn::ItemKnn(const ItemKnnConfig& config) : config_(config) {
  CA_CHECK_GT(config.neighbors, 0U);
}

void ItemKnn::InitTraining(const data::Dataset& train, util::Rng& rng) {
  (void)rng;  // deterministic model
  neighbors_.assign(train.num_items(), {});
}

void ItemKnn::TrainEpoch(const data::Dataset& train, util::Rng& rng) {
  (void)rng;
  CA_CHECK_EQ(neighbors_.size(), train.num_items())
      << "InitTraining must run before TrainEpoch";
  serving_checkpoint_valid_ = false;  // similarity lists are rebuilt

  // Co-occurrence counting via each user's profile pairs. Quadratic in
  // profile length, linear in users — fine at this repository's scale.
  std::vector<std::unordered_map<data::ItemId, std::size_t>> co_counts(
      train.num_items());
  for (data::UserId u = 0; u < train.num_users(); ++u) {
    const data::Profile& profile = train.UserProfile(u);
    for (std::size_t i = 0; i < profile.size(); ++i) {
      for (std::size_t j = i + 1; j < profile.size(); ++j) {
        ++co_counts[profile[i]][profile[j]];
        ++co_counts[profile[j]][profile[i]];
      }
    }
  }

  for (data::ItemId item = 0; item < train.num_items(); ++item) {
    std::vector<std::pair<data::ItemId, float>> scored;
    scored.reserve(co_counts[item].size());
    const double pop_a = static_cast<double>(train.ItemPopularity(item));
    for (const auto& [other, count] : co_counts[item]) {
      const double pop_b = static_cast<double>(train.ItemPopularity(other));
      const double cosine =
          static_cast<double>(count) /
          (std::sqrt(pop_a * pop_b) + config_.shrinkage);
      scored.emplace_back(other, static_cast<float>(cosine));
    }
    const std::size_t keep = std::min(config_.neighbors, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                      [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    scored.resize(keep);
    neighbors_[item] = std::move(scored);
  }
}

void ItemKnn::BeginServing(const data::Dataset& current) {
  OBS_COUNTER_INC("rec.begin_serving");
  CA_CHECK_EQ(neighbors_.size(), current.num_items());
  serving_ = &current;
}

void ItemKnn::ObserveNewUser(const data::Dataset& current,
                             data::UserId user) {
  CA_CHECK_LT(user, current.num_users());
  serving_ = &current;  // profiles are read directly from the dataset
}

bool ItemKnn::CheckpointServing() {
  // All serving state lives in the dataset (rolled back by the caller) and
  // the frozen similarity lists, so the checkpoint is just "similarities
  // unchanged since". A retraining pass invalidates it.
  serving_checkpoint_valid_ = serving_ != nullptr;
  if (serving_checkpoint_valid_) OBS_COUNTER_INC("rec.serving_checkpoints");
  return serving_checkpoint_valid_;
}

bool ItemKnn::RollbackServing() {
  if (serving_checkpoint_valid_) OBS_COUNTER_INC("rec.serving_rollbacks");
  return serving_checkpoint_valid_;
}

float ItemKnn::Score(data::UserId user, data::ItemId item) const {
  CA_CHECK(serving_ != nullptr) << "BeginServing must be called first";
  CA_CHECK_LT(user, serving_->num_users());
  CA_CHECK_LT(item, neighbors_.size());
  // Sum of similarities from the candidate item's neighbor list to the
  // user's profile items.
  float score = 0.0f;
  for (const auto& [neighbor, similarity] : neighbors_[item]) {
    if (serving_->HasInteraction(user, neighbor)) {
      score += similarity;
    }
  }
  return score;
}

const std::vector<std::pair<data::ItemId, float>>& ItemKnn::Neighbors(
    data::ItemId item) const {
  CA_CHECK_LT(item, neighbors_.size());
  return neighbors_[item];
}

}  // namespace copyattack::rec
