#include "rec/black_box.h"

#include "math/top_k.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::rec {

BlackBoxRecommender::BlackBoxRecommender(Recommender* model,
                                         data::Dataset* polluted)
    : model_(model), polluted_(polluted) {
  CA_CHECK(model != nullptr);
  CA_CHECK(polluted != nullptr);
}

data::UserId BlackBoxRecommender::InjectUser(data::Profile profile) {
  OBS_COUNTER_INC("blackbox.injected_profiles");
  OBS_COUNTER_ADD("blackbox.injected_interactions", profile.size());
  injected_interactions_ += profile.size();
  ++injected_profiles_;
  const data::UserId user = polluted_->AddUser(std::move(profile));
  model_->ObserveNewUser(*polluted_, user);
  return user;
}

std::vector<data::ItemId> BlackBoxRecommender::QueryTopK(
    data::UserId user, const std::vector<data::ItemId>& candidates,
    std::size_t k) {
  OBS_SCOPED_TIMER_US("blackbox.query_topk_us");
  OBS_COUNTER_INC("blackbox.queries");
  ++query_count_;
  const std::vector<float> scores =
      model_->ScoreCandidates(user, candidates);
  const std::vector<std::size_t> top = math::TopKIndices(scores, k);
  std::vector<data::ItemId> items;
  items.reserve(top.size());
  for (const std::size_t index : top) {
    items.push_back(candidates[index]);
  }
  return items;
}

void BlackBoxRecommender::ResetCounters() {
  query_count_ = 0;
  injected_profiles_ = 0;
  injected_interactions_ = 0;
}

}  // namespace copyattack::rec
