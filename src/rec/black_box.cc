#include "rec/black_box.h"

#include "math/top_k.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::rec {

const char* ToString(BlackBoxStatus status) {
  switch (status) {
    case BlackBoxStatus::kOk:
      return "ok";
    case BlackBoxStatus::kTransientError:
      return "transient_error";
    case BlackBoxStatus::kTimeout:
      return "timeout";
    case BlackBoxStatus::kRateLimited:
      return "rate_limited";
    case BlackBoxStatus::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

BlackBoxRecommender::BlackBoxRecommender(Recommender* model,
                                         data::Dataset* polluted)
    : model_(model), polluted_(polluted) {
  CA_CHECK(model != nullptr);
  CA_CHECK(polluted != nullptr);
}

data::UserId BlackBoxRecommender::InjectUser(data::Profile profile) {
  OBS_COUNTER_INC("blackbox.injected_profiles");
  OBS_COUNTER_ADD("blackbox.injected_interactions", profile.size());
  injected_interactions_.fetch_add(profile.size(),
                                   std::memory_order_relaxed);
  injected_profiles_.fetch_add(1, std::memory_order_relaxed);
  const data::UserId user = polluted_->AddUser(std::move(profile));
  model_->ObserveNewUser(*polluted_, user);
  return user;
}

std::vector<data::ItemId> BlackBoxRecommender::QueryTopK(
    data::UserId user, const std::vector<data::ItemId>& candidates,
    std::size_t k) {
  OBS_SCOPED_TIMER_US("blackbox.query_topk_us");
  OBS_COUNTER_INC("blackbox.queries");
  query_count_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<float> scores =
      model_->ScoreCandidates(user, candidates);
  const std::vector<std::size_t> top = math::TopKIndices(scores, k);
  std::vector<data::ItemId> items;
  items.reserve(top.size());
  for (const std::size_t index : top) {
    items.push_back(candidates[index]);
  }
  return items;
}

std::vector<QueryResult> BlackBoxRecommender::QueryTopKBatch(
    const std::vector<data::UserId>& users,
    const std::vector<std::vector<data::ItemId>>& candidates,
    std::size_t k) {
  OBS_SCOPED_TIMER_US("blackbox.query_batch_us");
  CA_CHECK_EQ(users.size(), candidates.size());
  std::vector<QueryResult> results(users.size());
  if (users.empty()) return results;

  const std::size_t cols = candidates.front().size();
  for (const auto& list : candidates) {
    CA_CHECK_EQ(list.size(), cols)
        << "batched queries require equal-length candidate lists";
  }
  OBS_COUNTER_ADD("blackbox.queries", users.size());
  OBS_HIST_OBSERVE("blackbox.batch_users", users.size());
  query_count_.fetch_add(users.size(), std::memory_order_relaxed);

  // One contiguous users x candidates score block, filled row-by-row with
  // the allocation-free scoring primitive, then one bounded-heap select
  // per row. The per-row results are bit-identical to QueryTopK's because
  // TopKIndices is the same selection either way.
  const std::size_t select = std::min(k, cols);
  std::vector<float> scores(users.size() * cols);
  std::vector<std::size_t> top(users.size() * select);
  for (std::size_t row = 0; row < users.size(); ++row) {
    model_->ScoreCandidatesInto(users[row], candidates[row],
                                scores.data() + row * cols);
  }
  math::TopKPerRow(scores.data(), users.size(), cols, select, top.data());
  for (std::size_t row = 0; row < users.size(); ++row) {
    std::vector<data::ItemId>& items = results[row].items;
    items.reserve(select);
    for (std::size_t j = 0; j < select; ++j) {
      items.push_back(candidates[row][top[row * select + j]]);
    }
  }
  return results;
}

InjectResult BlackBoxRecommender::Inject(data::Profile profile) {
  InjectResult result;
  result.user = InjectUser(std::move(profile));
  return result;
}

QueryResult BlackBoxRecommender::Query(
    data::UserId user, const std::vector<data::ItemId>& candidates,
    std::size_t k) {
  QueryResult result;
  result.items = QueryTopK(user, candidates, k);
  return result;
}

void BlackBoxRecommender::ResetCounters() {
  query_count_.store(0, std::memory_order_relaxed);
  injected_profiles_.store(0, std::memory_order_relaxed);
  injected_interactions_.store(0, std::memory_order_relaxed);
}

}  // namespace copyattack::rec
