#include "rec/matrix_factorization.h"

#include "math/vector_ops.h"
#include "nn/activations.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::rec {

MatrixFactorization::MatrixFactorization(const MfConfig& config)
    : config_(config) {
  CA_CHECK_GT(config.embedding_dim, 0U);
}

void MatrixFactorization::InitTraining(const data::Dataset& train,
                                       util::Rng& rng) {
  trained_users_ = train.num_users();
  serving_checkpoint_valid_ = false;
  users_.Resize(train.num_users(), config_.embedding_dim);
  items_.Resize(train.num_items(), config_.embedding_dim);
  users_.FillNormal(rng, 0.0f, config_.init_stddev);
  items_.FillNormal(rng, 0.0f, config_.init_stddev);
}

void MatrixFactorization::TrainEpoch(const data::Dataset& train,
                                     util::Rng& rng) {
  CA_CHECK_EQ(users_.rows() >= train.num_users(), true)
      << "InitTraining must run before TrainEpoch";
  // Item embeddings change below, so previously folded-in serving rows
  // (and any serving checkpoint over them) are stale.
  serving_checkpoint_valid_ = false;
  const std::size_t dim = config_.embedding_dim;
  const float lr = config_.learning_rate;
  const float reg = config_.regularization;

  // One BPR step per training interaction, in random user order.
  const std::size_t steps = train.num_interactions();
  for (std::size_t s = 0; s < steps; ++s) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(train.num_users()));
    const data::Profile& profile = train.UserProfile(u);
    if (profile.empty()) continue;
    const data::ItemId pos =
        profile[rng.UniformUint64(profile.size())];
    // Rejection-sample a negative item the user has not interacted with.
    data::ItemId neg = pos;
    for (std::size_t attempt = 0; attempt < 32; ++attempt) {
      const data::ItemId candidate = static_cast<data::ItemId>(
          rng.UniformUint64(train.num_items()));
      if (!train.HasInteraction(u, candidate)) {
        neg = candidate;
        break;
      }
    }
    if (neg == pos) continue;

    float* pu = users_.Row(u);
    float* qi = items_.Row(pos);
    float* qj = items_.Row(neg);
    const float x = math::Dot(pu, qi, dim) - math::Dot(pu, qj, dim);
    const float sigma = nn::Sigmoid(-x);  // dLoss/dx of -log sigmoid(x)
    for (std::size_t d = 0; d < dim; ++d) {
      const float pu_d = pu[d];
      const float qi_d = qi[d];
      const float qj_d = qj[d];
      pu[d] += lr * (sigma * (qi_d - qj_d) - reg * pu_d);
      qi[d] += lr * (sigma * pu_d - reg * qi_d);
      qj[d] += lr * (-sigma * pu_d - reg * qj_d);
    }
  }
}

void MatrixFactorization::BeginServing(const data::Dataset& current) {
  OBS_SPAN("rec.begin_serving");
  OBS_COUNTER_INC("rec.begin_serving");
  CA_CHECK_GE(current.num_users(), trained_users_);
  users_.EnsureRows(current.num_users());
  for (data::UserId u = static_cast<data::UserId>(trained_users_);
       u < current.num_users(); ++u) {
    FoldInUser(current, u);
  }
}

void MatrixFactorization::ObserveNewUser(const data::Dataset& current,
                                         data::UserId user) {
  CA_CHECK_LT(user, current.num_users());
  users_.EnsureRows(current.num_users());
  FoldInUser(current, user);
}

bool MatrixFactorization::CheckpointServing() {
  // Fold-in rows are a pure function of the (frozen) item embeddings and
  // each user's profile, so the checkpoint only needs the row count: rows
  // kept through a rollback are already correct, rows past the mark are
  // dropped in O(1).
  OBS_COUNTER_INC("rec.serving_checkpoints");
  serving_checkpoint_rows_ = users_.rows();
  serving_checkpoint_valid_ = true;
  return true;
}

bool MatrixFactorization::RollbackServing() {
  if (!serving_checkpoint_valid_) return false;
  OBS_COUNTER_INC("rec.serving_rollbacks");
  users_.TruncateRows(serving_checkpoint_rows_);
  return true;
}

void MatrixFactorization::FoldInUser(const data::Dataset& current,
                                     data::UserId user) {
  const data::Profile& profile = current.UserProfile(user);
  float* row = users_.Row(user);
  for (std::size_t d = 0; d < config_.embedding_dim; ++d) row[d] = 0.0f;
  if (profile.empty()) return;
  const float inv = 1.0f / static_cast<float>(profile.size());
  for (const data::ItemId item : profile) {
    math::Axpy(inv, items_.Row(item), row, config_.embedding_dim);
  }
}

float MatrixFactorization::Score(data::UserId user,
                                 data::ItemId item) const {
  CA_CHECK_LT(user, users_.rows());
  CA_CHECK_LT(item, items_.rows());
  return math::Dot(users_.Row(user), items_.Row(item),
                   config_.embedding_dim);
}

}  // namespace copyattack::rec
