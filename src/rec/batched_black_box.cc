#include "rec/batched_black_box.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::rec {

BatchedBlackBox::BatchedBlackBox(BlackBoxInterface* inner,
                                 BlackBoxRecommender* fast)
    : inner_(inner), fast_(fast) {
  CA_CHECK(inner != nullptr);
}

std::vector<QueryResult> BatchedBlackBox::QueryBatch(
    const std::vector<data::UserId>& users,
    const std::vector<std::vector<data::ItemId>>& candidates,
    std::size_t k) {
  OBS_SPAN("blackbox.query_batch");
  CA_CHECK_EQ(users.size(), candidates.size());
  max_batch_users_ = std::max(max_batch_users_, users.size());
  OBS_HIST_OBSERVE("campaign.batch_users", users.size());

  if (fast_ != nullptr) {
    // One dense block needs equal-length rows; tiny datasets can come up
    // short of negatives, so ragged batches degrade to per-row heap
    // selection (same results, same meters, no dense block).
    const bool rectangular =
        users.empty() ||
        std::all_of(candidates.begin(), candidates.end(),
                    [&](const std::vector<data::ItemId>& list) {
                      return list.size() == candidates.front().size();
                    });
    ++blocked_batches_;
    if (rectangular) return fast_->QueryTopKBatch(users, candidates, k);
    std::vector<QueryResult> results(users.size());
    for (std::size_t i = 0; i < users.size(); ++i) {
      results[i].items = fast_->QueryTopK(users[i], candidates[i], k);
    }
    return results;
  }

  // Decorated stack: forward in batch order so the fault injector and the
  // resilient client consume exactly the draws a per-query loop would.
  // The first kUnavailable poisons the rest of the batch *without*
  // touching the oracle — mirroring the unbatched caller, which abandons
  // its query round at that point.
  ++forwarded_batches_;
  std::vector<QueryResult> results(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    results[i] = inner_->Query(users[i], candidates[i], k);
    if (results[i].status == BlackBoxStatus::kUnavailable) {
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        results[j].status = BlackBoxStatus::kUnavailable;
      }
      break;
    }
  }
  return results;
}

InjectResult BatchedBlackBox::Inject(data::Profile profile) {
  return inner_->Inject(std::move(profile));
}

QueryResult BatchedBlackBox::Query(
    data::UserId user, const std::vector<data::ItemId>& candidates,
    std::size_t k) {
  return inner_->Query(user, candidates, k);
}

std::size_t BatchedBlackBox::query_count() const {
  return inner_->query_count();
}

std::size_t BatchedBlackBox::injected_profiles() const {
  return inner_->injected_profiles();
}

std::size_t BatchedBlackBox::injected_interactions() const {
  return inner_->injected_interactions();
}

void BatchedBlackBox::ResetCounters() { inner_->ResetCounters(); }

const data::Dataset& BatchedBlackBox::polluted() const {
  return inner_->polluted();
}

}  // namespace copyattack::rec
