#ifndef COPYATTACK_REC_BATCHED_BLACK_BOX_H_
#define COPYATTACK_REC_BATCHED_BLACK_BOX_H_

#include <cstddef>
#include <vector>

#include "rec/black_box.h"

namespace copyattack::rec {

/// Decorator that coalesces the Top-k probes of one query round into a
/// single blocked oracle call (paper §4.2 issues one probe per pretend
/// user per round; a campaign-parallel attack server multiplies that by
/// the number of concurrent campaigns, so the per-probe overhead — one
/// virtual dispatch, one allocation, one full candidate sort — is the
/// traffic-facing hot path).
///
/// Two execution modes, chosen per batch:
///  - Fast path: when the decorated stack is the bare in-process
///    `BlackBoxRecommender` (no fault decorators between), the batch
///    executes as ONE blocked user x item scoring call with a bounded
///    partial-heap select per row (`QueryTopKBatch`).
///  - Fallback: with a fault/resilience stack in between, the batch is
///    forwarded query-by-query in batch order, stopping at the first
///    `kUnavailable` (the remaining queries are reported unavailable
///    without touching the oracle). This consumes exactly the fault
///    draws the unbatched loop would, so fault schedules, retry
///    sequences and breaker transitions stay bit-identical whether
///    batching is on or off.
///
/// Either way the per-query payloads are bit-identical to issuing the
/// queries individually, which is what lets the sharded campaign runner
/// enable batching unconditionally without perturbing results.
class BatchedBlackBox final : public BlackBoxInterface {
 public:
  /// `inner` is the outermost layer of the existing oracle stack (always
  /// used for injections and single queries). `fast` must be the same
  /// object as `inner` when no decorators intervene — then batches take
  /// the blocked path — or nullptr to force per-query forwarding. Both
  /// are borrowed and must outlive this wrapper.
  BatchedBlackBox(BlackBoxInterface* inner, BlackBoxRecommender* fast);

  /// Answers `users.size()` Top-k queries as one batch (see class
  /// comment). `results[i]` corresponds to `users[i]`/`candidates[i]`.
  std::vector<QueryResult> QueryBatch(
      const std::vector<data::UserId>& users,
      const std::vector<std::vector<data::ItemId>>& candidates,
      std::size_t k);

  /// Largest batch the wrapper has executed (exposed for tests/metrics).
  std::size_t max_batch_users() const { return max_batch_users_; }
  /// Batches served by the blocked fast path vs per-query forwarding.
  std::size_t blocked_batches() const { return blocked_batches_; }
  std::size_t forwarded_batches() const { return forwarded_batches_; }

  // BlackBoxInterface: plain operations forward to the inner stack.
  InjectResult Inject(data::Profile profile) override;
  QueryResult Query(data::UserId user,
                    const std::vector<data::ItemId>& candidates,
                    std::size_t k) override;
  std::size_t query_count() const override;
  std::size_t injected_profiles() const override;
  std::size_t injected_interactions() const override;
  void ResetCounters() override;
  const data::Dataset& polluted() const override;

 private:
  BlackBoxInterface* inner_;
  BlackBoxRecommender* fast_;
  std::size_t max_batch_users_ = 0;
  std::size_t blocked_batches_ = 0;
  std::size_t forwarded_batches_ = 0;
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_BATCHED_BLACK_BOX_H_
