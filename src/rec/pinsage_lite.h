#ifndef COPYATTACK_REC_PINSAGE_LITE_H_
#define COPYATTACK_REC_PINSAGE_LITE_H_

#include <string>
#include <vector>

#include "math/matrix.h"
#include "rec/recommender.h"
#include "util/annotations.h"

namespace copyattack::rec {

/// Hyper-parameters of the PinSage-style target model.
struct PinSageConfig {
  std::size_t embedding_dim = 8;
  float learning_rate = 0.05f;
  float regularization = 0.005f;
  float init_stddev = 0.1f;
  /// Mixing weight between an item's own embedding and its aggregated
  /// user-neighborhood representation at serving time:
  /// z_i = alpha * q_i + (1 - alpha) * sum_{u in P_i} p_u / |P_i|^e.
  /// The GCN-style degree normalization keeps a popularity signal (more
  /// interacting users -> larger neighborhood term), which both matches
  /// graph recommenders in practice and is what injection attacks exploit:
  /// every injected profile strictly adds mass to the target item's
  /// neighborhood representation.
  float self_weight = 0.5f;
  /// Degree-normalization exponent e above. 0.5 is the symmetric-GCN
  /// choice; values toward 1.0 compress the popularity signal (1.0 is a
  /// plain mean). The default 0.5 keeps popularity relevant while leaving
  /// the preference (direction) component decisive near the Top-k
  /// boundary.
  float neighbor_norm_exponent = 0.5f;
  /// Subtract the global mean user aggregate before normalizing user
  /// representations (classical mean-centering from neighborhood CF).
  /// Centering removes the non-discriminative "everybody likes the head"
  /// component, so only distinctive co-preferences move rankings — which
  /// is also why profile *crafting* matters for the attack: a long generic
  /// profile centers away to noise, a focused session keeps its direction.
  bool center_user_reps = true;
  /// Weight of the item-popularity intercept added to every score:
  /// `popularity_bias * log(1 + train_count_i)`. Recommenders learn such an
  /// item intercept during training; it is a *frozen* model parameter, so
  /// it keeps cold items out of Top-k lists before any attack but does not
  /// react to injected interactions (only the inductive aggregation does).
  float popularity_bias = 0.8f;
};

/// A graph-aggregation recommender standing in for PinSage (Ying et al.,
/// KDD'18), the paper's black-box target model (§5.1.3).
///
/// Like PinSage, representations are produced *inductively* by aggregating
/// local neighbors on the user-item bipartite graph:
///   p_u = mean_{i in P_u} q_i                      (user from items)
///   z_i = alpha q_i + (1-alpha) mean_{u in P_i} p_u (item from users)
///   score(u, i) = <p_u, z_i>
/// where the q_i are item embeddings trained with the BPR loss.
///
/// Because z_i is recomputed from the *current* interaction graph, an
/// injected user immediately shifts the representation of every item in
/// its profile — the exact mechanism that makes an inductive GNN
/// recommender attackable by profile injection without any retraining.
/// Serving-state updates are incremental (running sums per item), so a
/// black-box query costs O(dim) per candidate.
class PinSageLite final : public Recommender {
 public:
  explicit PinSageLite(const PinSageConfig& config = PinSageConfig());

  void InitTraining(const data::Dataset& train, util::Rng& rng) override;
  void TrainEpoch(const data::Dataset& train, util::Rng& rng) override;
  void BeginServing(const data::Dataset& current) override;
  void ObserveNewUser(const data::Dataset& current,
                      data::UserId user) override;
  bool CheckpointServing() override;
  bool RollbackServing() override;
  float Score(data::UserId user, data::ItemId item) const override;
  std::string name() const override { return "PinSageLite"; }

  /// Trained item embeddings q (exposed for diagnostics and tests).
  const math::Matrix& item_embeddings() const { return items_; }

  /// Serving-time user representation p_u (valid after BeginServing /
  /// ObserveNewUser).
  const float* UserRepresentation(data::UserId user) const;

  /// Serving-time item representation z_i, materialized into `out`
  /// (size = embedding_dim).
  void ItemRepresentation(data::ItemId item, std::vector<float>* out) const;

  std::size_t embedding_dim() const { return config_.embedding_dim; }

 private:
  /// Profile-mean of item embeddings, before centering/normalization.
  void ComputeRawUserAggregate(const data::Dataset& current,
                               data::UserId user, float* out) const;

  void ComputeUserRepresentation(const data::Dataset& current,
                                 data::UserId user, float* out) const;

  PinSageConfig config_;
  math::Matrix items_;        // q: num_items x dim (trained)
  std::vector<float> item_intercept_;       // frozen at InitTraining
  std::vector<float> mean_user_aggregate_;  // frozen at first BeginServing
  bool mean_frozen_ = false;
  math::Matrix user_reps_;    // p: num_serving_users x dim
  math::Matrix item_user_sum_;  // per item: sum of p over interacting users
  std::vector<std::size_t> item_user_count_;

  /// Serving-state checkpoint (CheckpointServing/RollbackServing): a copy
  /// of the neighborhood accumulators plus a journal of items touched by
  /// ObserveNewUser since, so rollback restores exactly the touched rows.
  struct ServingCheckpoint CA_CHECKPOINTED(PinSageLite::CheckpointServing,
                                           PinSageLite::RollbackServing) {
    bool valid = false;
    std::size_t user_rows = 0;
    std::vector<data::ItemId> touched;
    math::Matrix item_user_sum;
    std::vector<std::size_t> item_user_count;
  };
  ServingCheckpoint serving_ckpt_;
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_PINSAGE_LITE_H_
