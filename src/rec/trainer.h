#ifndef COPYATTACK_REC_TRAINER_H_
#define COPYATTACK_REC_TRAINER_H_

#include <cstdint>

#include "data/split.h"
#include "rec/recommender.h"

namespace copyattack::rec {

/// Options of the early-stopping training loop (paper §5.1.3: stop when
/// validation HR@10 has not improved for 5 successive evaluations).
struct TrainOptions {
  std::size_t max_epochs = 60;
  std::size_t patience = 5;
  std::size_t eval_k = 10;         ///< HR@k monitored on validation
  std::size_t num_negatives = 100;
  std::uint64_t eval_seed = 99;    ///< fixed negatives across epochs
};

/// Outcome of training.
struct TrainReport {
  std::size_t epochs_run = 0;
  double best_valid_hr = 0.0;
  double test_hr = 0.0;
  double test_ndcg = 0.0;
};

/// Trains `model` on `split.train` with early stopping on validation
/// HR@eval_k, then reports test metrics. `full` is the unsplit dataset used
/// to filter negative samples. Leaves the model in serving state over
/// `split.train`.
TrainReport TrainWithEarlyStopping(Recommender& model,
                                   const data::TrainValidTestSplit& split,
                                   const data::Dataset& full,
                                   const TrainOptions& options,
                                   util::Rng& rng);

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_TRAINER_H_
