#ifndef COPYATTACK_REC_BLACK_BOX_H_
#define COPYATTACK_REC_BLACK_BOX_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "rec/recommender.h"

namespace copyattack::rec {

/// The attacker's view of the target recommender system (paper §4.5):
/// only two operations exist — inject a user profile, and query the Top-k
/// recommendation list of a user. Everything else about the model (its
/// architecture, parameters, training data) is hidden.
///
/// The wrapper also meters the attack: number of injected profiles,
/// number of injected interactions (the item budget of Table 2), and
/// number of Top-k queries issued.
class BlackBoxRecommender {
 public:
  /// `model` must already be serving over `*polluted`. Both are borrowed
  /// and must outlive this wrapper.
  BlackBoxRecommender(Recommender* model, data::Dataset* polluted);

  /// Injection attack: appends a (copied) user profile to the target
  /// domain and folds it into the model's serving state. Returns the new
  /// user id.
  data::UserId InjectUser(data::Profile profile);

  /// Query access: Top-k item ids among `candidates` for `user`, best
  /// first. Increments the query counter.
  std::vector<data::ItemId> QueryTopK(
      data::UserId user, const std::vector<data::ItemId>& candidates,
      std::size_t k);

  /// Number of Top-k queries issued so far.
  std::size_t query_count() const { return query_count_; }

  /// Number of profiles injected so far.
  std::size_t injected_profiles() const { return injected_profiles_; }

  /// Total number of interactions injected (the "item budget").
  std::size_t injected_interactions() const {
    return injected_interactions_;
  }

  /// Resets the attack meters (not the injected data).
  void ResetCounters();

  const data::Dataset& polluted() const { return *polluted_; }
  const Recommender& model() const { return *model_; }

 private:
  Recommender* model_;
  data::Dataset* polluted_;
  std::size_t query_count_ = 0;
  std::size_t injected_profiles_ = 0;
  std::size_t injected_interactions_ = 0;
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_BLACK_BOX_H_
