#ifndef COPYATTACK_REC_BLACK_BOX_H_
#define COPYATTACK_REC_BLACK_BOX_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "rec/recommender.h"
#include "util/annotations.h"

namespace copyattack::rec {

/// Outcome classification of one black-box operation. In the paper's
/// in-process setting every operation succeeds (`kOk`); the remaining
/// codes model the failure surface of a *remote* target oracle and are
/// produced by the `fault::FaultInjector` decorator (simulated faults)
/// and the `fault::ResilientBlackBox` client (`kUnavailable` after retry
/// exhaustion or while its circuit breaker is open).
enum class BlackBoxStatus {
  kOk,              ///< operation landed; payload is valid
  kTransientError,  ///< spurious failure; retry may succeed
  kTimeout,         ///< the oracle took longer than the client deadline
  kRateLimited,     ///< the platform rejected the call (throttling)
  kUnavailable,     ///< client gave up: retries exhausted or breaker open
};

/// Human-readable status name ("ok", "transient_error", ...).
const char* ToString(BlackBoxStatus status);

/// Result of an injection attempt. `user` is only meaningful on `kOk`.
struct InjectResult {
  BlackBoxStatus status = BlackBoxStatus::kOk;
  data::UserId user = data::kNoUser;
  bool ok() const { return status == BlackBoxStatus::kOk; }
};

/// Result of a Top-k query. `items` is only meaningful on `kOk` (and may
/// legitimately be shorter than k under simulated truncation faults).
struct QueryResult {
  BlackBoxStatus status = BlackBoxStatus::kOk;
  std::vector<data::ItemId> items;
  bool ok() const { return status == BlackBoxStatus::kOk; }
};

/// The attacker's view of the target recommender system (paper §4.5):
/// only two operations exist — inject a user profile, and query the Top-k
/// recommendation list of a user. Everything else about the model (its
/// architecture, parameters, training data) is hidden.
///
/// This interface is the seam the fault-tolerance subsystem decorates:
/// `BlackBoxRecommender` is the in-process ground truth,
/// `fault::FaultInjector` wraps it with a deterministic fault schedule,
/// and `fault::ResilientBlackBox` wraps either with retries and a
/// circuit breaker. Decorators forward the attack meters to the
/// innermost oracle, so the meters always count operations that actually
/// landed on the target.
class BlackBoxInterface {
 public:
  virtual ~BlackBoxInterface() = default;

  /// Injection attack: appends a (copied) user profile to the target
  /// domain. On success the result carries the new user id.
  virtual InjectResult Inject(data::Profile profile) = 0;

  /// Query access: Top-k item ids among `candidates` for `user`, best
  /// first, on success.
  virtual QueryResult Query(data::UserId user,
                            const std::vector<data::ItemId>& candidates,
                            std::size_t k) = 0;

  /// Number of Top-k queries answered by the target so far.
  virtual std::size_t query_count() const = 0;

  /// Number of profiles that actually landed on the target so far.
  virtual std::size_t injected_profiles() const = 0;

  /// Total number of interactions injected (the "item budget").
  virtual std::size_t injected_interactions() const = 0;

  /// Resets the attack meters (not the injected data).
  virtual void ResetCounters() = 0;

  /// The polluted target-domain dataset behind the oracle.
  virtual const data::Dataset& polluted() const = 0;
};

/// The in-process implementation of the black-box oracle, wrapping a
/// fitted recommender serving over the polluted dataset.
///
/// The wrapper also meters the attack: number of injected profiles,
/// number of injected interactions (the item budget of Table 2), and
/// number of Top-k queries issued. The meters are relaxed atomics so
/// threaded campaigns may share one oracle for concurrent *queries*
/// (reads of the serving state) without torn counters; injections mutate
/// the dataset and stay single-writer (enforced by the dataset's
/// MutationSentinel).
class BlackBoxRecommender final : public BlackBoxInterface {
 public:
  /// `model` must already be serving over `*polluted`. Both are borrowed
  /// and must outlive this wrapper.
  BlackBoxRecommender(Recommender* model, data::Dataset* polluted);

  /// Injection attack: appends a (copied) user profile to the target
  /// domain and folds it into the model's serving state. Returns the new
  /// user id. (Infallible concrete form of `Inject`.)
  data::UserId InjectUser(data::Profile profile);

  /// Query access: Top-k item ids among `candidates` for `user`, best
  /// first. Increments the query counter. (Infallible concrete form of
  /// `Query`.)
  std::vector<data::ItemId> QueryTopK(
      data::UserId user, const std::vector<data::ItemId>& candidates,
      std::size_t k);

  /// Batched query access: answers `users.size()` Top-k queries in one
  /// blocked call. All candidate lists must have equal length, so the
  /// scores form one dense row-major users x candidates block that is
  /// filled in a single pass and selected with the bounded partial heap
  /// (math::TopKPerRow) — no per-query allocation, no per-user full sort.
  /// Each answered query still counts once on the query meter, and every
  /// result is bit-identical to the corresponding per-query `QueryTopK`.
  std::vector<QueryResult> QueryTopKBatch(
      const std::vector<data::UserId>& users,
      const std::vector<std::vector<data::ItemId>>& candidates,
      std::size_t k);

  InjectResult Inject(data::Profile profile) override;
  QueryResult Query(data::UserId user,
                    const std::vector<data::ItemId>& candidates,
                    std::size_t k) override;

  std::size_t query_count() const override {
    return query_count_.load(std::memory_order_relaxed);
  }

  std::size_t injected_profiles() const override {
    return injected_profiles_.load(std::memory_order_relaxed);
  }

  std::size_t injected_interactions() const override {
    return injected_interactions_.load(std::memory_order_relaxed);
  }

  void ResetCounters() override;

  const data::Dataset& polluted() const override { return *polluted_; }
  const Recommender& model() const { return *model_; }

 private:
  Recommender* model_;
  data::Dataset* polluted_;
  std::atomic<std::size_t> query_count_ CA_ATOMIC_ONLY{0};
  std::atomic<std::size_t> injected_profiles_ CA_ATOMIC_ONLY{0};
  std::atomic<std::size_t> injected_interactions_ CA_ATOMIC_ONLY{0};
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_BLACK_BOX_H_
