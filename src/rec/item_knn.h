#ifndef COPYATTACK_REC_ITEM_KNN_H_
#define COPYATTACK_REC_ITEM_KNN_H_

#include <string>
#include <vector>

#include "rec/recommender.h"

namespace copyattack::rec {

/// Hyper-parameters of the item-based k-nearest-neighbor model.
struct ItemKnnConfig {
  /// Neighbors kept per item (the classic top-N similarity list).
  std::size_t neighbors = 30;
  /// Shrinkage added to the cosine denominator; damps similarities
  /// estimated from few co-occurrences.
  double shrinkage = 5.0;
};

/// Classic item-based collaborative filtering (Sarwar et al. 2001): item-
/// item cosine similarity over co-occurrence counts, truncated to the top
/// `neighbors` per item; a user's score for an item is the summed
/// similarity to the items in their profile.
///
/// In this repo ItemKNN is a *third target-model family* for the
/// channel ablation (`bench_target_models`): its similarity lists are
/// frozen at training time, so — like frozen MF — it has no inductive
/// injection channel, but unlike MF a retraining pass directly ingests
/// the injected co-occurrences (the classic shilling-attack surface the
/// pre-deep-learning literature studied).
///
/// There are no gradient epochs; `TrainEpoch` (re)builds the similarity
/// lists from the current dataset, which is also what a platform's
/// periodic retrain does in the refit-on-query environment.
class ItemKnn final : public Recommender {
 public:
  explicit ItemKnn(const ItemKnnConfig& config = ItemKnnConfig());

  void InitTraining(const data::Dataset& train, util::Rng& rng) override;
  void TrainEpoch(const data::Dataset& train, util::Rng& rng) override;
  void BeginServing(const data::Dataset& current) override;
  void ObserveNewUser(const data::Dataset& current,
                      data::UserId user) override;
  bool CheckpointServing() override;
  bool RollbackServing() override;
  float Score(data::UserId user, data::ItemId item) const override;
  std::string name() const override { return "ItemKNN"; }

  /// The truncated similarity list of `item` (pairs of neighbor id and
  /// similarity, best first). Exposed for tests.
  const std::vector<std::pair<data::ItemId, float>>& Neighbors(
      data::ItemId item) const;

 private:
  ItemKnnConfig config_;
  /// Per item: top-N (neighbor, similarity), sorted descending.
  std::vector<std::vector<std::pair<data::ItemId, float>>> neighbors_;
  /// Serving users' profiles (borrowed copies for scoring).
  const data::Dataset* serving_ = nullptr;
  /// True while the similarity lists are unchanged since the last
  /// CheckpointServing (scoring state itself lives in the dataset).
  bool serving_checkpoint_valid_ = false;
};

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_ITEM_KNN_H_
