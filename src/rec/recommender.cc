#include "rec/recommender.h"

namespace copyattack::rec {

void Recommender::Fit(const data::Dataset& train, std::size_t epochs,
                      util::Rng& rng) {
  InitTraining(train, rng);
  for (std::size_t e = 0; e < epochs; ++e) {
    TrainEpoch(train, rng);
  }
  BeginServing(train);
}

std::vector<float> Recommender::ScoreCandidates(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  std::vector<float> scores;
  scores.reserve(candidates.size());
  for (const data::ItemId item : candidates) {
    scores.push_back(Score(user, item));
  }
  return scores;
}

}  // namespace copyattack::rec
