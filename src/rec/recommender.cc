#include "rec/recommender.h"

namespace copyattack::rec {

void Recommender::Fit(const data::Dataset& train, std::size_t epochs,
                      util::Rng& rng) {
  InitTraining(train, rng);
  for (std::size_t e = 0; e < epochs; ++e) {
    TrainEpoch(train, rng);
  }
  BeginServing(train);
}

std::vector<float> Recommender::ScoreCandidates(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  std::vector<float> scores(candidates.size());
  ScoreCandidatesInto(user, candidates, scores.data());
  return scores;
}

void Recommender::ScoreCandidatesInto(
    data::UserId user, const std::vector<data::ItemId>& candidates,
    float* out) const {
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out[i] = Score(user, candidates[i]);
  }
}

}  // namespace copyattack::rec
