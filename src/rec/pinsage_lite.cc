#include "rec/pinsage_lite.h"

#include <cmath>

#include "math/vector_ops.h"
#include "nn/activations.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::rec {

PinSageLite::PinSageLite(const PinSageConfig& config) : config_(config) {
  CA_CHECK_GT(config.embedding_dim, 0U);
  CA_CHECK_GE(config.self_weight, 0.0f);
  CA_CHECK_LE(config.self_weight, 1.0f);
}

void PinSageLite::InitTraining(const data::Dataset& train, util::Rng& rng) {
  items_.Resize(train.num_items(), config_.embedding_dim);
  items_.FillNormal(rng, 0.0f, config_.init_stddev);
  // Frozen popularity intercept from the training interaction counts.
  item_intercept_.assign(train.num_items(), 0.0f);
  for (data::ItemId item = 0; item < train.num_items(); ++item) {
    item_intercept_[item] =
        config_.popularity_bias *
        std::log1p(static_cast<float>(train.ItemPopularity(item)));
  }
  user_reps_.Resize(0, config_.embedding_dim);
  item_user_sum_.Resize(0, config_.embedding_dim);
  item_user_count_.clear();
  mean_user_aggregate_.clear();
  mean_frozen_ = false;
  serving_ckpt_.valid = false;
}

void PinSageLite::TrainEpoch(const data::Dataset& train, util::Rng& rng) {
  CA_CHECK_EQ(items_.rows(), train.num_items());
  // Item embeddings are about to change, so any frozen centering mean and
  // any serving checkpoint built on them are stale; the next BeginServing
  // recomputes them.
  mean_frozen_ = false;
  serving_ckpt_.valid = false;
  const std::size_t dim = config_.embedding_dim;
  const float lr = config_.learning_rate;
  const float reg = config_.regularization;

  std::vector<float> user_rep(dim);
  const std::size_t steps = train.num_interactions();
  for (std::size_t s = 0; s < steps; ++s) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(train.num_users()));
    const data::Profile& profile = train.UserProfile(u);
    if (profile.empty()) continue;
    const data::ItemId pos = profile[rng.UniformUint64(profile.size())];
    data::ItemId neg = pos;
    for (std::size_t attempt = 0; attempt < 32; ++attempt) {
      const data::ItemId candidate = static_cast<data::ItemId>(
          rng.UniformUint64(train.num_items()));
      if (!train.HasInteraction(u, candidate)) {
        neg = candidate;
        break;
      }
    }
    if (neg == pos) continue;

    // User representation: profile-mean of item embeddings (the positive
    // item is excluded so the model cannot trivially memorize it).
    for (std::size_t d = 0; d < dim; ++d) user_rep[d] = 0.0f;
    std::size_t contributors = 0;
    for (const data::ItemId item : profile) {
      if (item == pos) continue;
      math::Axpy(1.0f, items_.Row(item), user_rep.data(), dim);
      ++contributors;
    }
    if (contributors == 0) continue;
    const float inv = 1.0f / static_cast<float>(contributors);
    for (std::size_t d = 0; d < dim; ++d) user_rep[d] *= inv;

    float* qi = items_.Row(pos);
    float* qj = items_.Row(neg);
    const float x = math::Dot(user_rep.data(), qi, dim) -
                    math::Dot(user_rep.data(), qj, dim);
    const float sigma = nn::Sigmoid(-x);
    for (std::size_t d = 0; d < dim; ++d) {
      const float xu_d = user_rep[d];
      qi[d] += lr * (sigma * xu_d - reg * qi[d]);
      qj[d] += lr * (-sigma * xu_d - reg * qj[d]);
    }
  }
}

void PinSageLite::ComputeRawUserAggregate(const data::Dataset& current,
                                          data::UserId user,
                                          float* out) const {
  const std::size_t dim = config_.embedding_dim;
  for (std::size_t d = 0; d < dim; ++d) out[d] = 0.0f;
  const data::Profile& profile = current.UserProfile(user);
  if (profile.empty()) return;
  const float inv = 1.0f / static_cast<float>(profile.size());
  for (const data::ItemId item : profile) {
    math::Axpy(inv, items_.Row(item), out, dim);
  }
}

void PinSageLite::ComputeUserRepresentation(const data::Dataset& current,
                                            data::UserId user,
                                            float* out) const {
  const std::size_t dim = config_.embedding_dim;
  ComputeRawUserAggregate(current, user, out);
  // Mean-centering removes the shared head-item component so only the
  // user's distinctive taste direction remains.
  if (config_.center_user_reps && mean_user_aggregate_.size() == dim) {
    for (std::size_t d = 0; d < dim; ++d) {
      out[d] -= mean_user_aggregate_[d];
    }
  }
  // PinSage-style L2 normalization of the aggregated representation. This
  // is what gives user-side preference signal independent of profile
  // length: a short, coherent profile yields as strong a direction as a
  // long one (and makes every injected user contribute a unit vector to
  // its items' neighborhoods).
  math::NormalizeL2(out, dim);
}

void PinSageLite::BeginServing(const data::Dataset& current) {
  OBS_SPAN("rec.begin_serving");
  OBS_COUNTER_INC("rec.begin_serving");
  CA_CHECK_EQ(items_.rows(), current.num_items());
  const std::size_t dim = config_.embedding_dim;
  // The centering mean is a model constant: computed once, over the first
  // population the model serves (the clean training users), and frozen —
  // injected users observed later are centered against the same mean.
  if (!mean_frozen_) {
    mean_user_aggregate_.assign(dim, 0.0f);
    if (config_.center_user_reps && current.num_users() > 0) {
      std::vector<float> aggregate(dim);
      for (data::UserId u = 0; u < current.num_users(); ++u) {
        ComputeRawUserAggregate(current, u, aggregate.data());
        math::Axpy(1.0f / static_cast<float>(current.num_users()),
                   aggregate.data(), mean_user_aggregate_.data(), dim);
      }
    }
    mean_frozen_ = true;
  }
  user_reps_.Resize(current.num_users(), dim);
  item_user_sum_.Resize(current.num_items(), dim);
  item_user_count_.assign(current.num_items(), 0);
  for (data::UserId u = 0; u < current.num_users(); ++u) {
    ComputeUserRepresentation(current, u, user_reps_.Row(u));
    for (const data::ItemId item : current.UserProfile(u)) {
      math::Axpy(1.0f, user_reps_.Row(u), item_user_sum_.Row(item), dim);
      ++item_user_count_[item];
    }
  }
  // A full rebuild supersedes whatever state an older checkpoint captured.
  serving_ckpt_.valid = false;
}

void PinSageLite::ObserveNewUser(const data::Dataset& current,
                                 data::UserId user) {
  CA_CHECK_LT(user, current.num_users());
  CA_CHECK_EQ(static_cast<std::size_t>(user), user_reps_.rows())
      << "users must be observed in append order";
  const std::size_t dim = config_.embedding_dim;
  float* rep = user_reps_.AppendRow();  // amortized O(dim), not O(users*dim)
  ComputeUserRepresentation(current, user, rep);
  for (const data::ItemId item : current.UserProfile(user)) {
    math::Axpy(1.0f, rep, item_user_sum_.Row(item), dim);
    ++item_user_count_[item];
    if (serving_ckpt_.valid) serving_ckpt_.touched.push_back(item);
  }
}

bool PinSageLite::CheckpointServing() {
  if (!mean_frozen_) return false;  // nothing served yet
  OBS_COUNTER_INC("rec.serving_checkpoints");
  serving_ckpt_.valid = false;  // invalid while the snapshot is mid-copy
  serving_ckpt_.user_rows = user_reps_.rows();
  serving_ckpt_.touched.clear();
  serving_ckpt_.item_user_sum = item_user_sum_;
  serving_ckpt_.item_user_count = item_user_count_;
  serving_ckpt_.valid = true;
  return true;
}

bool PinSageLite::RollbackServing() {
  if (!serving_ckpt_.valid) return false;
  OBS_COUNTER_INC("rec.serving_rollbacks");
  user_reps_.TruncateRows(serving_ckpt_.user_rows);
  // Restore only the neighborhood accumulators that injections touched —
  // O(injected interactions), with bit-exact rows memcpy'd back from the
  // snapshot (float accumulation is not reversible by subtraction).
  for (const data::ItemId item : serving_ckpt_.touched) {
    item_user_sum_.CopyRowFrom(serving_ckpt_.item_user_sum, item, item);
    item_user_count_[item] = serving_ckpt_.item_user_count[item];
  }
  serving_ckpt_.touched.clear();
  return true;
}

const float* PinSageLite::UserRepresentation(data::UserId user) const {
  CA_CHECK_LT(user, user_reps_.rows());
  return user_reps_.Row(user);
}

void PinSageLite::ItemRepresentation(data::ItemId item,
                                     std::vector<float>* out) const {
  CA_CHECK_LT(item, items_.rows());
  const std::size_t dim = config_.embedding_dim;
  out->assign(dim, 0.0f);
  const float alpha = config_.self_weight;
  math::Axpy(alpha, items_.Row(item), out->data(), dim);
  if (item_user_count_[item] > 0) {
    const float w =
        (1.0f - alpha) /
        std::pow(static_cast<float>(item_user_count_[item]),
                 config_.neighbor_norm_exponent);
    math::Axpy(w, item_user_sum_.Row(item), out->data(), dim);
  }
}

float PinSageLite::Score(data::UserId user, data::ItemId item) const {
  CA_CHECK_LT(user, user_reps_.rows());
  CA_CHECK_LT(item, items_.rows());
  const std::size_t dim = config_.embedding_dim;
  const float* p = user_reps_.Row(user);
  const float alpha = config_.self_weight;
  float score = alpha * math::Dot(p, items_.Row(item), dim);
  if (item_user_count_[item] > 0) {
    const float w =
        (1.0f - alpha) /
        std::pow(static_cast<float>(item_user_count_[item]),
                 config_.neighbor_norm_exponent);
    score += w * math::Dot(p, item_user_sum_.Row(item), dim);
  }
  if (item < item_intercept_.size()) {
    score += item_intercept_[item];
  }
  return score;
}

}  // namespace copyattack::rec
