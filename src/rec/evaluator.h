#ifndef COPYATTACK_REC_EVALUATOR_H_
#define COPYATTACK_REC_EVALUATOR_H_

#include <map>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "rec/recommender.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace copyattack::rec {

/// Averaged ranking metrics at one cutoff.
struct TopKMetrics CA_CHECKPOINTED(WriteMetrics, ReadMetrics) {
  double hr = 0.0;
  double ndcg = 0.0;
  std::size_t count = 0;  ///< evaluation pairs aggregated

  void Accumulate(double hit, double gain) {
    hr += hit;
    ndcg += gain;
    ++count;
  }
  void Finalize() {
    if (count > 0) {
      hr /= static_cast<double>(count);
      ndcg /= static_cast<double>(count);
    }
  }
};

/// Metrics keyed by cutoff k.
using MetricsByK = std::map<std::size_t, TopKMetrics>;

/// Samples `count` negative items for `user`: items the user never
/// interacted with in `filter` and different from `held_out`. Deterministic
/// in `rng`.
std::vector<data::ItemId> SampleNegatives(const data::Dataset& filter,
                                          data::UserId user,
                                          data::ItemId held_out,
                                          std::size_t count,
                                          util::Rng& rng);

/// Evaluates held-out (user, item) pairs using the paper's protocol
/// (§5.1.2): rank the test item among `num_negatives` sampled items the
/// user did not interact with; report HR@k and NDCG@k for each k in `ks`.
/// `filter` is the dataset whose interactions define "already seen"
/// (normally the full, unsplit dataset).
MetricsByK EvaluateHeldOut(const Recommender& model,
                           const data::Dataset& filter,
                           const std::vector<data::HeldOut>& pairs,
                           const std::vector<std::size_t>& ks,
                           std::size_t num_negatives, util::Rng& rng);

/// Evaluates the promotion of `target_item` over `users` (paper §3: does
/// the target item appear in each user's Top-k?). Users who already
/// interacted with the target item are skipped. The candidate set per user
/// is the target item plus `num_negatives` sampled unseen items.
MetricsByK EvaluatePromotion(const Recommender& model,
                             const data::Dataset& filter,
                             data::ItemId target_item,
                             const std::vector<data::UserId>& users,
                             const std::vector<std::size_t>& ks,
                             std::size_t num_negatives, util::Rng& rng);

}  // namespace copyattack::rec

#endif  // COPYATTACK_REC_EVALUATOR_H_
