#include "rec/evaluator.h"

#include "math/metrics.h"
#include "math/top_k.h"
#include "util/check.h"

namespace copyattack::rec {

std::vector<data::ItemId> SampleNegatives(const data::Dataset& filter,
                                          data::UserId user,
                                          data::ItemId held_out,
                                          std::size_t count,
                                          util::Rng& rng) {
  const std::size_t num_items = filter.num_items();
  std::vector<data::ItemId> negatives;
  negatives.reserve(count);
  std::vector<bool> taken(num_items, false);
  // Rejection sampling; evaluation profiles are short relative to the item
  // universe, so this converges quickly. A linear fallback guarantees
  // termination in degenerate cases.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * count + 100;
  while (negatives.size() < count && attempts < max_attempts) {
    ++attempts;
    const data::ItemId candidate =
        static_cast<data::ItemId>(rng.UniformUint64(num_items));
    if (candidate == held_out || taken[candidate]) continue;
    if (user < filter.num_users() &&
        filter.HasInteraction(user, candidate)) {
      continue;
    }
    taken[candidate] = true;
    negatives.push_back(candidate);
  }
  if (negatives.size() < count) {
    for (data::ItemId candidate = 0;
         candidate < num_items && negatives.size() < count; ++candidate) {
      if (candidate == held_out || taken[candidate]) continue;
      if (user < filter.num_users() &&
          filter.HasInteraction(user, candidate)) {
        continue;
      }
      negatives.push_back(candidate);
    }
  }
  return negatives;
}

namespace {

/// Ranks `probe` among `probe + negatives` under `model` and accumulates
/// HR/NDCG at every cutoff.
void AccumulateRanked(const Recommender& model, data::UserId user,
                      data::ItemId probe,
                      const std::vector<data::ItemId>& negatives,
                      const std::vector<std::size_t>& ks,
                      MetricsByK& metrics) {
  std::vector<data::ItemId> candidates;
  candidates.reserve(negatives.size() + 1);
  candidates.push_back(probe);
  candidates.insert(candidates.end(), negatives.begin(), negatives.end());
  const std::vector<float> scores = model.ScoreCandidates(user, candidates);
  const std::size_t rank = math::RankOf(scores, 0);
  for (const std::size_t k : ks) {
    metrics[k].Accumulate(math::HitRatioAtK(rank, k),
                          math::NdcgAtK(rank, k));
  }
}

void FinalizeAll(MetricsByK& metrics) {
  for (auto& [k, m] : metrics) {
    (void)k;
    m.Finalize();
  }
}

}  // namespace

MetricsByK EvaluateHeldOut(const Recommender& model,
                           const data::Dataset& filter,
                           const std::vector<data::HeldOut>& pairs,
                           const std::vector<std::size_t>& ks,
                           std::size_t num_negatives, util::Rng& rng) {
  CA_CHECK(!ks.empty());
  MetricsByK metrics;
  for (const std::size_t k : ks) metrics[k] = TopKMetrics();
  for (const data::HeldOut& pair : pairs) {
    const auto negatives =
        SampleNegatives(filter, pair.user, pair.item, num_negatives, rng);
    AccumulateRanked(model, pair.user, pair.item, negatives, ks, metrics);
  }
  FinalizeAll(metrics);
  return metrics;
}

MetricsByK EvaluatePromotion(const Recommender& model,
                             const data::Dataset& filter,
                             data::ItemId target_item,
                             const std::vector<data::UserId>& users,
                             const std::vector<std::size_t>& ks,
                             std::size_t num_negatives, util::Rng& rng) {
  CA_CHECK(!ks.empty());
  MetricsByK metrics;
  for (const std::size_t k : ks) metrics[k] = TopKMetrics();
  for (const data::UserId user : users) {
    if (user < filter.num_users() &&
        filter.HasInteraction(user, target_item)) {
      continue;  // Promotion only counts users who have not seen the item.
    }
    const auto negatives =
        SampleNegatives(filter, user, target_item, num_negatives, rng);
    AccumulateRanked(model, user, target_item, negatives, ks, metrics);
  }
  FinalizeAll(metrics);
  return metrics;
}

}  // namespace copyattack::rec
