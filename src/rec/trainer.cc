#include "rec/trainer.h"

#include "obs/obs.h"
#include "rec/evaluator.h"
#include "util/logging.h"

namespace copyattack::rec {

TrainReport TrainWithEarlyStopping(Recommender& model,
                                   const data::TrainValidTestSplit& split,
                                   const data::Dataset& full,
                                   const TrainOptions& options,
                                   util::Rng& rng) {
  TrainReport report;
  model.InitTraining(split.train, rng);

  std::size_t epochs_since_best = 0;
  for (std::size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    {
      OBS_SPAN("rec.train_epoch");
      OBS_SCOPED_TIMER_US("rec.train_epoch_us");
      model.TrainEpoch(split.train, rng);
    }
    OBS_COUNTER_INC("rec.train_epochs");
    report.epochs_run = epoch + 1;

    model.BeginServing(split.train);
    util::Rng eval_rng(options.eval_seed);  // same negatives every epoch
    const MetricsByK valid =
        EvaluateHeldOut(model, full, split.valid, {options.eval_k},
                        options.num_negatives, eval_rng);
    const double hr = valid.at(options.eval_k).hr;
    if (hr > report.best_valid_hr) {
      report.best_valid_hr = hr;
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
    }
    CA_LOG(Debug) << model.name() << " epoch " << (epoch + 1)
                  << " valid HR@" << options.eval_k << " = " << hr;
    if (epochs_since_best >= options.patience) break;
  }

  model.BeginServing(split.train);
  util::Rng eval_rng(options.eval_seed + 1);
  const MetricsByK test =
      EvaluateHeldOut(model, full, split.test, {options.eval_k},
                      options.num_negatives, eval_rng);
  report.test_hr = test.at(options.eval_k).hr;
  report.test_ndcg = test.at(options.eval_k).ndcg;
  return report;
}

}  // namespace copyattack::rec
