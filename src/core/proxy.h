#ifndef COPYATTACK_CORE_PROXY_H_
#define COPYATTACK_CORE_PROXY_H_

#include "data/cross_domain.h"
#include "data/dataset.h"
#include "data/types.h"

namespace copyattack::core {

/// Extension of the paper's future-work direction: attacking a target item
/// that does *not* exist in the source domain. Since no source profile can
/// contain such an item, CopyAttack anchors on a **proxy item** — the
/// overlapping item most similar to the target — selects and crafts
/// profiles around the proxy, and splices the target item into the crafted
/// window next to the proxy (so the injected sequence still reads like a
/// coherent session).
///
/// Similarity is target-domain co-occurrence Jaccard:
///   J(a, b) = |P_a ∩ P_b| / |P_a ∪ P_b|
/// over the item profiles (user sets) of `reference`. Returns kNoItem when
/// the target has no co-occurring overlapping item with a source holder;
/// callers should then fall back to the most popular attackable overlap
/// item.
data::ItemId FindProxyItem(const data::CrossDomainDataset& dataset,
                           const data::Dataset& reference,
                           data::ItemId target_item);

/// Inserts `target_item` into `window` immediately after the first
/// occurrence of `anchor_item` (or appends if the anchor is absent). If the
/// window already contains the target, it is returned unchanged.
data::Profile SpliceTargetIntoProfile(data::Profile window,
                                      data::ItemId anchor_item,
                                      data::ItemId target_item);

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_PROXY_H_
