#ifndef COPYATTACK_CORE_PROXY_H_
#define COPYATTACK_CORE_PROXY_H_

#include "data/cross_domain.h"
#include "data/dataset.h"
#include "data/types.h"

namespace copyattack::core {

/// Extension of the paper's future-work direction: attacking a target item
/// that does *not* exist in the source domain. Since no source profile can
/// contain such an item, CopyAttack anchors on a **proxy item** — the
/// overlapping item most similar to the target — selects and crafts
/// profiles around the proxy, and splices the target item into the crafted
/// window next to the proxy (so the injected sequence still reads like a
/// coherent session).
///
/// Similarity is target-domain co-occurrence Jaccard:
///   J(a, b) = |P_a ∩ P_b| / |P_a ∪ P_b|
/// over the item profiles (user sets) of `reference`. Returns kNoItem when
/// the target has no co-occurring overlapping item with a source holder;
/// callers should then fall back to the most popular attackable overlap
/// item.
data::ItemId FindProxyItem(const data::CrossDomainDataset& dataset,
                           const data::Dataset& reference,
                           data::ItemId target_item);

/// Query-free reward estimate from the attacker's proxy view of the
/// target platform: with no oracle available (circuit breaker open, see
/// fault/resilient_black_box.h), the environment degrades to this
/// popularity-share estimate of HR@k instead of aborting the episode.
///
/// Model: a pretend user's candidate list holds the target plus
/// `num_candidates` sampled items; under a popularity-biased ranker the
/// chance the target makes the Top-k grows with the target's share of
/// interaction mass in the (polluted) dataset. The estimate is
///   min(1, pop(target) * k / ((mean_pop + 1) * (num_candidates + 1)))
/// — crude, but monotone in exactly the quantity each injection moves
/// (the target's popularity), which is what REINFORCE needs from a
/// degraded-mode reward signal.
double EstimateRewardWithoutQueries(const data::Dataset& polluted,
                                    data::ItemId target_item,
                                    std::size_t reward_k,
                                    std::size_t num_candidates);

/// Inserts `target_item` into `window` immediately after the first
/// occurrence of `anchor_item` (or appends if the anchor is absent). If the
/// window already contains the target, it is returned unchanged.
data::Profile SpliceTargetIntoProfile(data::Profile window,
                                      data::ItemId anchor_item,
                                      data::ItemId target_item);

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_PROXY_H_
