#include "core/target_play.h"

#include <cstdint>
#include <memory>
#include <sstream>

#include "core/attack_strategy.h"
#include "core/environment.h"
#include "obs/obs.h"
#include "rec/black_box.h"
#include "rec/recommender.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace copyattack::core {

namespace {

/// Extracts the per-item outcome from a finished attack environment.
TargetOutcomeState CollectOutcome(const AttackEnvironment& env,
                                  double final_reward,
                                  const CampaignConfig& config) {
  TargetOutcomeState outcome;
  outcome.final_reward = final_reward;
  const rec::BlackBoxInterface& bb = env.black_box();
  outcome.profiles_injected = static_cast<double>(bb.injected_profiles());
  outcome.items_per_profile =
      bb.injected_profiles() > 0
          ? static_cast<double>(bb.injected_interactions()) /
                static_cast<double>(bb.injected_profiles())
          : 0.0;
  outcome.query_rounds = static_cast<double>(env.lifetime_queries());
  outcome.metrics = env.EvaluateRealPromotion(
      config.eval_ks, config.eval_users, config.eval_negatives);
  return outcome;
}

}  // namespace

void MergeOutcomes(const std::vector<TargetOutcomeState>& outcomes,
                   const std::vector<std::size_t>& ks,
                   CampaignResult* result) {
  result->num_target_items = outcomes.size();
  for (const std::size_t k : ks) result->metrics[k] = rec::TopKMetrics();
  if (outcomes.empty()) return;
  for (const TargetOutcomeState& outcome : outcomes) {
    for (const std::size_t k : ks) {
      const auto it = outcome.metrics.find(k);
      if (it != outcome.metrics.end()) {
        result->metrics[k].hr += it->second.hr;
        result->metrics[k].ndcg += it->second.ndcg;
        ++result->metrics[k].count;
      }
    }
    result->avg_items_per_profile += outcome.items_per_profile;
    result->avg_profiles_injected += outcome.profiles_injected;
    result->avg_query_rounds += outcome.query_rounds;
    result->avg_final_reward += outcome.final_reward;
  }
  const double n = static_cast<double>(outcomes.size());
  for (const std::size_t k : ks) {
    if (result->metrics[k].count > 0) {
      result->metrics[k].hr /=
          static_cast<double>(result->metrics[k].count);
      result->metrics[k].ndcg /=
          static_cast<double>(result->metrics[k].count);
    }
  }
  result->avg_items_per_profile /= n;
  result->avg_profiles_injected /= n;
  result->avg_query_rounds /= n;
  result->avg_final_reward /= n;
}

TargetPlayResult PlayTargetItem(const data::CrossDomainDataset& dataset,
                                const data::Dataset& target_train,
                                const ModelFactory& model_factory,
                                const StrategyFactory& strategy_factory,
                                data::ItemId item, std::size_t global_index,
                                const CampaignConfig& config,
                                const TargetPlayHooks& hooks,
                                std::string* method_name) CA_HOT_PATH {
  OBS_SPAN("campaign.target_item");
  OBS_COUNTER_INC("campaign.target_items");
  const std::uint64_t item_seed = config.seed + 1000003ULL * global_index;
  std::unique_ptr<rec::Recommender> model = model_factory();
  std::unique_ptr<AttackStrategy> strategy = strategy_factory(item_seed);
  if (method_name != nullptr) *method_name = strategy->name();

  EnvConfig env_config = config.env;
  env_config.seed = item_seed;
  AttackEnvironment env(dataset, target_train, model.get(), env_config);

  strategy->BeginTargetItem(item);
  // Stream 1 of the item seed: stream 0 is the environment's own rng_,
  // and DeriveStreamSeed keeps the two collision-free by construction
  // (the old `item_seed ^ constant` mixing could collide with another
  // item's stream under an adversarial base seed).
  util::Rng episode_rng(util::DeriveStreamSeed(item_seed, 1));
  std::size_t first_episode = 0;
  if (hooks.resume != nullptr && hooks.resume->active) {
    // Mid-target resume: restore the strategy's learned state, the
    // episode RNG stream, and the environment's cross-episode state,
    // then continue with the next unplayed episode.
    std::istringstream blob(hooks.resume->strategy_blob, std::ios::binary);
    CA_CHECK(strategy->LoadState(blob))
        << "checkpointed strategy state does not fit the configured "
           "architecture";
    episode_rng.RestoreState(hooks.resume->episode_rng);
    env.RestoreResumeState(hooks.resume->env);
    first_episode = hooks.resume->episodes_done;
  }

  TargetPlayResult result;
  double final_reward = 0.0;
  for (std::size_t episode = first_episode; episode < config.episodes;
       ++episode) {
    // The last episode is played greedily (evaluation mode); its polluted
    // state is what the promotion metrics measure.
    if (episode + 1 == config.episodes) {
      strategy->SetEvalMode(true);
    }
    env.Reset(item);
    final_reward = strategy->RunEpisode(env, episode_rng);

    const bool last_episode = episode + 1 == config.episodes;
    if (!last_episode && hooks.every_episodes > 0 &&
        (episode + 1) % hooks.every_episodes == 0 &&
        hooks.on_progress != nullptr) {
      InProgressTarget progress;
      progress.active = true;
      progress.target_index = hooks.progress_target_index;
      progress.episodes_done = episode + 1;
      progress.episode_rng = episode_rng.SaveState();
      progress.env = env.SaveResumeState();
      std::ostringstream blob(std::ios::binary);
      if (strategy->SaveState(blob)) {
        progress.strategy_blob = blob.str();
        hooks.on_progress(progress);
      } else {
        CA_LOG(Warning) << "campaign: strategy state serialization "
                           "failed; skipping mid-target checkpoint";
      }
    }
    if (hooks.should_abort && hooks.should_abort()) {
      // Simulated crash (tests): stop dead without finishing the target.
      result.aborted = true;
      return result;
    }
  }
  result.outcome = CollectOutcome(env, final_reward, config);
  return result;
}

}  // namespace copyattack::core
