#ifndef COPYATTACK_CORE_FLAT_POLICY_H_
#define COPYATTACK_CORE_FLAT_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/attack_strategy.h"
#include "core/crafting_policy.h"
#include "data/cross_domain.h"
#include "nn/mlp.h"
#include "nn/reinforce.h"
#include "nn/rnn.h"
#include "util/annotations.h"

namespace copyattack::core {

/// The "PolicyNetwork" baseline of §5.1.4: a single policy gradient
/// network over the *entire* source-user action space — no hierarchical
/// clustering tree. Every decision scores all n_B users, so the
/// per-decision cost is O(n_B · hidden) versus O(c · d · hidden) for
/// CopyAttack; this is the asymptotic gap that made this baseline fail to
/// finish on the Netflix-scale dataset within 48 hours in the paper.
/// Masking to target-item holders and profile crafting are kept identical
/// to CopyAttack so the comparison isolates the action-space structure.
class FlatPolicyNetwork CA_CHECKPOINTED(FlatPolicyNetwork::SaveState,
                                        FlatPolicyNetwork::LoadState)
    final : public AttackStrategy {
 public:
  struct Config {
    std::size_t mlp_hidden_dim = 16;
    std::size_t rnn_hidden_dim = 8;
    float init_stddev = 0.1f;
    double gamma = 0.6;
    float learning_rate = 0.15f;
    float clip_norm = 5.0f;
    double entropy_beta = 0.003;
    double baseline_momentum = 0.7;
    bool exclude_selected = true;
    CraftingPolicy::Config crafting;
  };

  FlatPolicyNetwork(const data::CrossDomainDataset* dataset,
                    const math::Matrix* user_embeddings,
                    const math::Matrix* item_embeddings,
                    const Config& config, std::uint64_t seed);

  std::string name() const override { return "PolicyNetwork"; }
  void BeginTargetItem(data::ItemId target_item) override;
  double RunEpisode(AttackEnvironment& env, util::Rng& rng) override;

  /// In evaluation mode the agent acts greedily and freezes its policies.
  void SetEvalMode(bool eval_mode) override { eval_mode_ = eval_mode; }

  /// Per-decision floating point work (relative units), exposed for the
  /// policy-scaling bench.
  std::size_t DecisionCost() const;

  /// Full cross-episode state (network parameters + the moving reward
  /// baseline) for campaign checkpointing.
  bool SaveState(std::ostream& out) override;
  bool LoadState(std::istream& in) override;

 private:
  struct StepRecord {
    std::vector<data::UserId> selected_prefix;
    data::UserId action = data::kNoUser;
    std::vector<bool> user_mask;
    std::optional<CraftStepRecord> crafting;
    double reward = 0.0;
    bool has_selection = false;
  };

  std::vector<float> StateVector(const std::vector<data::UserId>& selected,
                                 nn::RnnContext* rnn_ctx) const;
  void UpdatePolicies(const std::vector<StepRecord>& trajectory);

  const data::CrossDomainDataset* dataset_
      CA_NOT_CHECKPOINTED("borrowed pointer, rebound at construction");
  const math::Matrix* user_embeddings_
      CA_NOT_CHECKPOINTED("borrowed pointer, rebound at construction");
  const math::Matrix* item_embeddings_
      CA_NOT_CHECKPOINTED("borrowed pointer, rebound at construction");
  Config config_ CA_NOT_CHECKPOINTED("configuration, part of the campaign "
                                     "fingerprint, not mutable state");

  std::unique_ptr<nn::Mlp> mlp_;  // state -> n_B logits
  std::unique_ptr<nn::RnnEncoder> rnn_;
  std::unique_ptr<CraftingPolicy> crafting_;
  nn::MovingBaseline baseline_;

  data::ItemId target_item_
      CA_NOT_CHECKPOINTED("per-target, reset by BeginTargetItem") =
          data::kNoItem;
  std::vector<bool> static_user_mask_
      CA_NOT_CHECKPOINTED("derived from target_item_ in BeginTargetItem");
  bool eval_mode_ CA_NOT_CHECKPOINTED("transient evaluation toggle") = false;
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_FLAT_POLICY_H_
