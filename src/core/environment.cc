#include "core/environment.h"

#include <algorithm>

#include "core/proxy.h"
#include "math/metrics.h"

#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::core {

AttackEnvironment::AttackEnvironment(const data::CrossDomainDataset& dataset,
                                     const data::Dataset& target_train,
                                     rec::Recommender* model,
                                     const EnvConfig& config)
    CA_COLD_OK("one-time per-target setup: copies the training data")
    : dataset_(dataset),
      target_train_(target_train),
      model_(model),
      config_(config),
      rng_(config.seed),
      refit_rng_(config.seed ^ 0xA5A5A5A5ULL) {
  CA_CHECK(model != nullptr);
  CA_CHECK_GT(config.budget, 0U);
  CA_CHECK_GT(config.query_interval, 0U);
  CA_CHECK_GT(config.num_pretend_users, 0U);
  GeneratePretendProfiles();
  // One copy of the training data for the whole environment lifetime;
  // every episode rolls the polluted state back to this base checkpoint
  // (or to the per-target checkpoint below) instead of re-copying.
  polluted_ = std::make_unique<data::Dataset>(target_train_);
  base_checkpoint_ = polluted_->Checkpoint();
}

void AttackEnvironment::GeneratePretendProfiles() {
  // Pretend users mimic real accounts: each copies a random 50-80%
  // contiguous subsequence of a random real user's profile. They exist
  // solely so the attacker can observe Top-k lists (paper §4.2).
  pretend_profiles_.reserve(config_.num_pretend_users);
  for (std::size_t i = 0; i < config_.num_pretend_users; ++i) {
    const data::UserId donor = static_cast<data::UserId>(
        rng_.UniformUint64(target_train_.num_users()));
    const data::Profile& profile = target_train_.UserProfile(donor);
    if (profile.empty()) {
      pretend_profiles_.push_back({});
      continue;
    }
    const double keep = rng_.UniformDouble(0.5, 0.8);
    const std::size_t length = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(profile.size()) * keep + 0.5));
    const std::size_t begin = static_cast<std::size_t>(
        rng_.UniformUint64(profile.size() - length + 1));
    pretend_profiles_.emplace_back(profile.begin() + begin,
                                   profile.begin() + begin + length);
  }
}

void AttackEnvironment::Reset(data::ItemId target_item) CA_HOT_PATH {
  OBS_SPAN("env.reset");
  OBS_SCOPED_TIMER_US("env.reset_us");
  CA_CHECK_LT(target_item, target_train_.num_items());
  OBS_COUNTER_INC("env.episodes");
  target_item_ = target_item;
  steps_ = 0;
  episode_query_rounds_ = 0;
  done_ = false;

  // Fast path: same target item and the model still holds a valid serving
  // checkpoint — roll the dataset and the model back past last episode's
  // injections in O(injected) instead of rebuilding in O(dataset). The
  // rolled-back state (training data + the deterministically re-added
  // pretend users) is bit-identical to the slow path's, so rewards and
  // promotion metrics are unchanged; see RollbackEquivalence tests.
  if (target_item == checkpointed_target_ && model_->RollbackServing()) {
    polluted_->RollbackTo(episode_checkpoint_);
    ++fast_resets_;
    OBS_COUNTER_INC("env.reset_fast");
  } else {
    OBS_COUNTER_INC("env.reset_full");
    checkpointed_target_ = data::kNoItem;
    polluted_->RollbackTo(base_checkpoint_);
    pretend_user_ids_.clear();
    for (const data::Profile& profile : pretend_profiles_) {
      // A pretend user must not already hold the target item, otherwise it
      // cannot witness the promotion.
      data::Profile cleaned;
      cleaned.reserve(profile.size());
      for (const data::ItemId item : profile) {
        if (item != target_item) cleaned.push_back(item);
      }
      pretend_user_ids_.push_back(polluted_->AddUser(std::move(cleaned)));
    }
    model_->BeginServing(*polluted_);
    episode_checkpoint_ = polluted_->Checkpoint();
    if (model_->CheckpointServing()) checkpointed_target_ = target_item;

    // Fixed query candidates per pretend user for this target item. They
    // depend only on the rolled-back dataset state and the target item, so
    // the fast path reuses the cached lists unchanged.
    query_negatives_.clear();
    util::Rng candidate_rng(config_.seed ^
                            (0x9E3779B97F4A7C15ULL * (target_item + 1)));
    for (const data::UserId user : pretend_user_ids_) {
      query_negatives_.push_back(rec::SampleNegatives(
          *polluted_, user, target_item, config_.query_candidates,
          candidate_rng));
    }
  }
  RebuildOracleStack(episodes_begun_++);
}

void AttackEnvironment::RebuildOracleStack(std::uint64_t episode_index)
    CA_COLD_OK("O(1) per-episode decorator wiring, off the step loop") {
  // The concrete recommender only holds borrowed pointers and atomic
  // meters, so creating it once and resetting the meters per episode is
  // bit-identical to the old fresh-construction-per-Reset — minus the
  // per-episode allocation on the campaign hot path.
  if (black_box_ == nullptr) {
    black_box_ =
        std::make_unique<rec::BlackBoxRecommender>(model_, polluted_.get());
  }
  black_box_->ResetCounters();
  // Layer the fault stack over the oracle. Each episode gets its own
  // decorators with per-episode-derived seeds: the fault and jitter
  // streams depend only on (configured seed, episode index), never on how
  // many draws last episode consumed — which is what makes checkpointed
  // resume bit-exact (a resumed environment restores `episodes_begun_`).
  oracle_ = black_box_.get();
  fault_injector_.reset();
  resilient_.reset();
  if (config_.fault.enabled) {
    fault::FaultScheduleConfig schedule = config_.fault;
    schedule.seed =
        config_.fault.seed ^ (0x9E3779B97F4A7C15ULL * (episode_index + 1));
    fault_injector_ =
        std::make_unique<fault::FaultInjector>(oracle_, schedule);
    oracle_ = fault_injector_.get();
  }
  if (config_.resilience.enabled) {
    fault::ResilienceConfig resilience = config_.resilience;
    resilience.seed = config_.resilience.seed ^
                      (0xD1B54A32D192ED03ULL * (episode_index + 1));
    resilient_ =
        std::make_unique<fault::ResilientBlackBox>(oracle_, resilience);
    oracle_ = resilient_.get();
  }
  if (config_.batched_queries) {
    // Outermost layer: query rounds batch through it. The blocked fast
    // path is only legal when nothing sits between the wrapper and the
    // in-process oracle; with fault decorators the batch forwards per
    // query so their draw sequences stay bit-identical. Without
    // decorators the wrapper's wiring never changes (black_box_ is
    // created once, above), so it is built once and reused; with them it
    // is rebuilt to point at this episode's fresh decorators.
    const bool has_decorators =
        config_.fault.enabled || config_.resilience.enabled;
    if (batched_ == nullptr || has_decorators) {
      rec::BlackBoxRecommender* fast =
          oracle_ == black_box_.get() ? black_box_.get() : nullptr;
      batched_ = std::make_unique<rec::BatchedBlackBox>(oracle_, fast);
    }
    oracle_ = batched_.get();
  }
}

double AttackEnvironment::QueryReward() {
  const double hit_ratio = RawHitRatio();
  return config_.goal == AttackGoal::kDemote ? 1.0 - hit_ratio : hit_ratio;
}

double AttackEnvironment::RawHitRatio() {
  double measured = 0.0;
  if (TryRawHitRatio(&measured)) return measured;
  // Graceful degradation (ISSUE 5): the resilience client gave up on the
  // oracle — reward the episode from the attacker's proxy view instead of
  // aborting a multi-hour campaign.
  ++proxy_reward_fallbacks_;
  OBS_COUNTER_INC("env.proxy_reward_fallback");
  return EstimateRewardWithoutQueries(*polluted_, target_item_,
                                      config_.reward_k,
                                      config_.query_candidates);
}

bool AttackEnvironment::TryRawHitRatio(double* out) {
  OBS_SPAN("env.query_round");
  OBS_SCOPED_TIMER_US("env.query_round_us");
  CA_CHECK(black_box_ != nullptr) << "Reset must be called first";
  OBS_COUNTER_INC("env.query_rounds");
  if (config_.refit_on_query) {
    for (std::size_t e = 0; e < config_.refit_epochs; ++e) {
      model_->TrainEpoch(*polluted_, refit_rng_);
    }
    model_->BeginServing(*polluted_);
  }
  ++lifetime_queries_;  // one query round (attempted rounds count too)
  double total = 0.0;
  const auto score_response = [&](const rec::QueryResult& response,
                                  bool* round_lost) {
    if (response.status == rec::BlackBoxStatus::kUnavailable) {
      // Retries exhausted or breaker open: the whole round is lost.
      *round_lost = true;
      return;
    }
    if (!response.ok()) return;  // individual failure = miss
    const auto it = std::find(response.items.begin(), response.items.end(),
                              target_item_);
    if (it == response.items.end()) return;
    if (config_.reward_metric == RewardMetric::kNdcg) {
      const std::size_t rank =
          static_cast<std::size_t>(it - response.items.begin());
      total += math::NdcgAtK(rank, config_.reward_k);
    } else {
      total += 1.0;
    }
  };

  if (batched_ != nullptr) {
    // Batched round: every pretend user's probe in one coalesced oracle
    // call (fixed candidate lists, target first — the exact queries of
    // the per-user loop below, in the same order).
    std::vector<std::vector<data::ItemId>> candidate_lists;
    candidate_lists.reserve(pretend_user_ids_.size());
    for (std::size_t i = 0; i < pretend_user_ids_.size(); ++i) {
      std::vector<data::ItemId> candidates;
      candidates.reserve(query_negatives_[i].size() + 1);
      candidates.push_back(target_item_);
      candidates.insert(candidates.end(), query_negatives_[i].begin(),
                        query_negatives_[i].end());
      candidate_lists.push_back(std::move(candidates));
    }
    const std::vector<rec::QueryResult> responses = batched_->QueryBatch(
        pretend_user_ids_, candidate_lists, config_.reward_k);
    bool round_lost = false;
    for (const rec::QueryResult& response : responses) {
      score_response(response, &round_lost);
      if (round_lost) return false;
    }
    *out = total / static_cast<double>(pretend_user_ids_.size());
    return true;
  }

  for (std::size_t i = 0; i < pretend_user_ids_.size(); ++i) {
    std::vector<data::ItemId> candidates;
    candidates.reserve(query_negatives_[i].size() + 1);
    candidates.push_back(target_item_);
    candidates.insert(candidates.end(), query_negatives_[i].begin(),
                      query_negatives_[i].end());
    const rec::QueryResult response = oracle_->Query(
        pretend_user_ids_[i], candidates, config_.reward_k);
    bool round_lost = false;
    score_response(response, &round_lost);
    if (round_lost) return false;
  }
  *out = total / static_cast<double>(pretend_user_ids_.size());
  return true;
}

AttackEnvironment::StepResult AttackEnvironment::Step(
    data::Profile crafted_profile) CA_HOT_PATH {
  OBS_SPAN("env.step");
  CA_CHECK(!done_) << "Step on a finished episode";
  CA_CHECK(black_box_ != nullptr) << "Reset must be called first";
  CA_CHECK(!crafted_profile.empty());
  OBS_COUNTER_INC("env.steps");

  {
    OBS_SPAN("env.inject");
    OBS_SCOPED_TIMER_US("env.inject_us");
    const rec::InjectResult injected =
        oracle_->Inject(std::move(crafted_profile));
    if (!injected.ok()) {
      // The profile never landed (transient fault after retries, breaker
      // open, ...). The action still consumed a step of budget — an
      // attacker cannot un-spend a failed API call.
      OBS_COUNTER_INC("env.inject_failed");
    }
  }
  ++steps_;

  StepResult result;
  const bool budget_exhausted = steps_ >= config_.budget;
  if (steps_ % config_.query_interval == 0 || budget_exhausted) {
    result.queried = true;
    result.reward = QueryReward();
    OBS_UNIT_HIST_OBSERVE("env.step_reward", result.reward);
    ++episode_query_rounds_;
    if (result.reward >= config_.success_reward) {
      done_ = true;
    }
    if (config_.max_query_rounds > 0 &&
        episode_query_rounds_ >= config_.max_query_rounds) {
      done_ = true;  // the attacker's query budget is spent
    }
  }
  if (budget_exhausted) {
    done_ = true;
  }
  result.done = done_;
  return result;
}

rec::BlackBoxInterface& AttackEnvironment::black_box() {
  CA_CHECK(oracle_ != nullptr);
  return *oracle_;
}

const rec::BlackBoxInterface& AttackEnvironment::black_box() const {
  CA_CHECK(oracle_ != nullptr);
  return *oracle_;
}

AttackEnvironment::ResumeState AttackEnvironment::SaveResumeState() const {
  ResumeState state;
  state.lifetime_queries = lifetime_queries_;
  state.episodes_begun = episodes_begun_;
  state.proxy_reward_fallbacks = proxy_reward_fallbacks_;
  state.refit_rng = refit_rng_.SaveState();
  return state;
}

void AttackEnvironment::RestoreResumeState(const ResumeState& state) {
  lifetime_queries_ = state.lifetime_queries;
  episodes_begun_ = state.episodes_begun;
  proxy_reward_fallbacks_ = state.proxy_reward_fallbacks;
  refit_rng_.RestoreState(state.refit_rng);
}

rec::MetricsByK AttackEnvironment::EvaluateRealPromotion(
    const std::vector<std::size_t>& ks, std::size_t num_users,
    std::size_t num_negatives) const {
  CA_CHECK(polluted_ != nullptr);
  // Sample real target-domain users (ids below the training user count, so
  // pretend and injected users are excluded). Deterministic in the target
  // item so every method sees the same evaluation users.
  util::Rng eval_rng(config_.seed ^ (0xD1B54A32D192ED03ULL *
                                     (target_item_ + 1)));
  const std::size_t population = target_train_.num_users();
  std::vector<data::UserId> users;
  if (num_users >= population) {
    for (data::UserId u = 0; u < population; ++u) users.push_back(u);
  } else {
    for (const std::size_t u :
         eval_rng.SampleWithoutReplacement(population, num_users)) {
      users.push_back(static_cast<data::UserId>(u));
    }
  }
  return rec::EvaluatePromotion(*model_, target_train_, target_item_, users,
                                ks, num_negatives, eval_rng);
}

}  // namespace copyattack::core
