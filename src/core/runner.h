#ifndef COPYATTACK_CORE_RUNNER_H_
#define COPYATTACK_CORE_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hierarchical_tree.h"
#include "core/attack_strategy.h"
#include "core/checkpoint.h"
#include "core/environment.h"
#include "data/cross_domain.h"
#include "data/split.h"
#include "rec/evaluator.h"
#include "rec/matrix_factorization.h"
#include "rec/recommender.h"

namespace copyattack::core {

/// Shared per-dataset artifacts every attacking method builds on: the
/// pre-trained source-domain MF embeddings and the balanced hierarchical
/// clustering tree over the source users (paper §4.3.1).
struct SourceArtifacts {
  rec::MatrixFactorization mf;
  cluster::HierarchicalTree tree;
};

/// Options for preparing the source artifacts.
struct SourceArtifactOptions {
  std::size_t embedding_dim = 8;
  std::size_t mf_epochs = 20;
  std::size_t tree_depth = 3;   ///< paper: 3 layers (Flixster), 6 (Netflix)
  std::uint64_t seed = 21;
};

/// Trains source-domain MF and builds the clustering tree.
SourceArtifacts PrepareSourceArtifacts(const data::CrossDomainDataset& dataset,
                                       const SourceArtifactOptions& options);

/// Creates a fresh fitted target-model clone for one attack campaign
/// (each campaign pollutes its own copy's serving state, so campaigns can
/// run in parallel).
using ModelFactory = std::function<std::unique_ptr<rec::Recommender>()>;

/// Creates a fresh strategy for one target item. `seed` deterministically
/// varies per item.
using StrategyFactory =
    std::function<std::unique_ptr<AttackStrategy>(std::uint64_t seed)>;

/// Crash-safety options of a campaign (ISSUE 5). With a non-empty `dir`,
/// `RunCampaign` runs target items sequentially and persists a versioned,
/// CRC-checksummed checkpoint (core/checkpoint.h) after every completed
/// target and every `every_episodes` episodes in between; with `resume`
/// it first loads the freshest valid checkpoint and continues bit-exactly
/// from there. Requires `env.refit_on_query == false` (a refit target
/// model's weights are not captured) and implies single-threaded
/// execution over targets (the sequential path is bit-identical to a
/// `num_threads = 1` run without checkpointing).
struct CampaignCheckpointOptions {
  /// Checkpoint directory; empty disables checkpointing entirely (the
  /// untouched parallel fast path runs instead).
  std::string dir;
  /// Resume from `dir` if a valid checkpoint exists.
  bool resume = false;
  /// Episodes between mid-target checkpoints (≥ 1).
  std::size_t every_episodes = 1;
  /// Test hook simulating a crash: abort the campaign (returning a
  /// partially filled result) after this many episodes have been played
  /// across the whole run. 0 = never.
  std::size_t abort_after_episodes = 0;
};

/// Parameters of one attack campaign (one method, many target items).
struct CampaignConfig {
  EnvConfig env;
  /// Training episodes per target item (1 for non-learning baselines).
  std::size_t episodes = 12;
  /// Cutoffs reported (paper: 20, 10, 5).
  std::vector<std::size_t> eval_ks = {20, 10, 5};
  /// Real target-domain users sampled for the final promotion metrics.
  std::size_t eval_users = 300;
  std::size_t eval_negatives = 100;
  std::uint64_t seed = 77;
  /// Worker threads across target items (1 = sequential).
  std::size_t num_threads = 1;
  /// Crash-safe checkpoint/resume (off unless `checkpoint.dir` is set).
  CampaignCheckpointOptions checkpoint;
};

/// Aggregated outcome of a campaign, i.e. one row of Table 2.
struct CampaignResult {
  std::string method;
  rec::MetricsByK metrics;            ///< averaged over target items
  double avg_items_per_profile = 0.0; ///< item budget per injected profile
  double avg_profiles_injected = 0.0; ///< final-episode profile count
  double avg_query_rounds = 0.0;      ///< query rounds per target item
  double avg_final_reward = 0.0;      ///< HR@k on pretend users, last episode
  double wall_seconds = 0.0;
  std::size_t num_target_items = 0;

  // Checkpointed-run bookkeeping (all zero/kNone on the parallel path).
  std::size_t checkpoint_saves = 0;   ///< checkpoint files written
  CheckpointSource resumed_from = CheckpointSource::kNone;
  /// True when the `abort_after_episodes` test hook cut the run short;
  /// the metrics cover only the targets completed so far.
  bool aborted = false;
};

/// The "Without Attack" reference row: promotion metrics of the target
/// items under the clean model.
CampaignResult EvaluateWithoutAttack(const data::CrossDomainDataset& dataset,
                                     const data::Dataset& target_train,
                                     const ModelFactory& model_factory,
                                     const std::vector<data::ItemId>& targets,
                                     const CampaignConfig& config);

/// Runs one method over all `targets`: per item, `episodes` episodes of
/// attack, then final promotion metrics over real users on the last
/// episode's polluted state. Aggregates into a Table-2 row.
CampaignResult RunCampaign(const data::CrossDomainDataset& dataset,
                           const data::Dataset& target_train,
                           const ModelFactory& model_factory,
                           const StrategyFactory& strategy_factory,
                           const std::vector<data::ItemId>& targets,
                           const CampaignConfig& config);

/// Formats a campaign result as a Table-2 style row.
std::string FormatCampaignRow(const CampaignResult& result);

/// Header line matching `FormatCampaignRow`.
std::string CampaignRowHeader();

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_RUNNER_H_
