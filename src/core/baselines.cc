#include "core/baselines.h"

#include "core/crafting.h"
#include "util/check.h"
#include "util/string_utils.h"

namespace copyattack::core {

void RandomAttack::BeginTargetItem(data::ItemId target_item) {
  (void)target_item;  // no per-item preparation
}

double RandomAttack::RunEpisode(AttackEnvironment& env, util::Rng& rng) {
  double last_reward = 0.0;
  while (!env.done()) {
    const data::UserId user = static_cast<data::UserId>(
        rng.UniformUint64(dataset_.source.num_users()));
    const data::Profile& profile = dataset_.source.UserProfile(user);
    if (profile.empty()) continue;
    const auto result = env.Step(profile);
    if (result.queried) last_reward = result.reward;
  }
  return last_reward;
}

TargetAttack::TargetAttack(const data::CrossDomainDataset& dataset,
                           double keep_fraction)
    : dataset_(dataset), keep_fraction_(keep_fraction) {
  CA_CHECK_GT(keep_fraction, 0.0);
  CA_CHECK_LE(keep_fraction, 1.0);
}

std::string TargetAttack::name() const {
  return "TargetAttack" +
         std::to_string(static_cast<int>(keep_fraction_ * 100.0 + 0.5));
}

void TargetAttack::BeginTargetItem(data::ItemId target_item) {
  target_item_ = target_item;
  holders_ = dataset_.SourceHolders(target_item);
  CA_CHECK(!holders_.empty())
      << "target item " << target_item << " has no source holders";
}

double TargetAttack::RunEpisode(AttackEnvironment& env, util::Rng& rng) {
  CA_CHECK_NE(target_item_, data::kNoItem);
  double last_reward = 0.0;
  while (!env.done()) {
    const data::UserId user =
        holders_[rng.UniformUint64(holders_.size())];
    const data::Profile& profile = dataset_.source.UserProfile(user);
    data::Profile crafted =
        ClipProfileAroundTarget(profile, target_item_, keep_fraction_);
    const auto result = env.Step(std::move(crafted));
    if (result.queried) last_reward = result.reward;
  }
  return last_reward;
}

}  // namespace copyattack::core
