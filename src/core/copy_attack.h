#ifndef COPYATTACK_CORE_COPY_ATTACK_H_
#define COPYATTACK_CORE_COPY_ATTACK_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/hierarchical_tree.h"
#include "core/attack_strategy.h"
#include "core/crafting_policy.h"
#include "core/selection_policy.h"
#include "data/cross_domain.h"
#include "nn/reinforce.h"
#include "util/annotations.h"

namespace copyattack::core {

/// How query feedback is turned into the per-step REINFORCE reward.
enum class RewardShaping {
  /// The paper's Eq. (1): the raw HR@k over the pretend users at each
  /// query round.
  kHitRatio,
  /// The *increase* of HR@k since the previous query round. Same optimum,
  /// but each 3-injection window is credited with its marginal lift, which
  /// substantially improves credit assignment under the episode-level
  /// baseline (ablated in bench_reward_shaping).
  kDeltaHitRatio,
};

/// Hyper-parameters of the CopyAttack agent.
struct CopyAttackConfig {
  /// Discount factor γ of the MDP (paper §5.1.3 sets 0.6).
  double gamma = 0.6;
  /// Reward construction from the query feedback.
  RewardShaping reward_shaping = RewardShaping::kDeltaHitRatio;
  /// SGD learning rate of the policy updates.
  float learning_rate = 0.15f;
  /// Global-norm gradient clip (0 disables).
  float clip_norm = 5.0f;
  /// Entropy regularization for both policies.
  double entropy_beta = 0.003;
  /// Momentum of the moving-average reward baseline.
  double baseline_momentum = 0.7;

  /// Ablation switches (Table 2 rows "CopyAttack-Masking" and
  /// "CopyAttack-Length"):
  /// * `use_masking = false` lets the agent pick any source user; per the
  ///   paper, crafting is also disabled in that variant because selected
  ///   profiles mostly lack the target item.
  bool use_masking = true;
  /// * `use_crafting = false` injects raw profiles (no clipping).
  bool use_crafting = true;

  /// Never copy the same source user twice within an episode.
  bool exclude_selected = true;

  /// Extension (paper future work): when the target item has no source
  /// holders, anchor selection/crafting on the most co-occurring
  /// overlapping item (see core/proxy.h) and splice the target item into
  /// the crafted windows. Off by default to match the paper's setting.
  bool allow_proxy = false;

  HierarchicalSelectionPolicy::Config selection;
  CraftingPolicy::Config crafting;
};

/// The full CopyAttack agent (paper §4): hierarchical-structure policy
/// gradient user selection with masking, profile crafting, injection with
/// query feedback, and episode-end REINFORCE updates of both policies.
class CopyAttack CA_CHECKPOINTED(CopyAttack::SaveState, CopyAttack::LoadState)
    final : public AttackStrategy {
 public:
  /// `dataset`, `tree`, and the pre-trained source-domain MF embeddings
  /// are borrowed and must outlive the agent. The tree must be built over
  /// exactly `user_embeddings->rows()` source users.
  CopyAttack(const data::CrossDomainDataset* dataset,
             const cluster::HierarchicalTree* tree,
             const math::Matrix* user_embeddings,
             const math::Matrix* item_embeddings,
             const CopyAttackConfig& config, std::uint64_t seed);

  std::string name() const override;
  void BeginTargetItem(data::ItemId target_item) override;
  double RunEpisode(AttackEnvironment& env, util::Rng& rng) override;

  /// In evaluation mode the agent acts greedily and freezes its policies.
  void SetEvalMode(bool eval_mode) override { eval_mode_ = eval_mode; }

  /// Users selectable for the current target item under the agent's
  /// masking setting (exposed for tests and the random seeding action).
  const std::vector<data::UserId>& candidates() const { return candidates_; }

  /// The item selection/crafting anchors on (== the target item unless
  /// proxy mode engaged; exposed for tests).
  data::ItemId anchor_item() const { return anchor_item_; }

  /// Persists both policies' parameters to `path` (binary). Returns false
  /// on I/O failure. Useful to keep a per-target-item agent across
  /// sessions or to transfer a trained attack between processes.
  bool SaveCheckpoint(const std::string& path);

  /// Restores parameters written by `SaveCheckpoint`. The agent must have
  /// been constructed with the same tree and configuration. Returns false
  /// on I/O failure or architecture mismatch.
  bool LoadCheckpoint(const std::string& path);

  /// Full cross-episode state (both policies' parameters + the moving
  /// reward baseline) for campaign checkpointing.
  bool SaveState(std::ostream& out) override;
  bool LoadState(std::istream& in) override;

 private:
  /// One trajectory step: the (optional) selection decision, the
  /// (optional) crafting decision, and the observed reward.
  struct TrajectoryStep {
    std::optional<SelectionStepRecord> selection;
    std::optional<CraftStepRecord> crafting;
    double reward = 0.0;
  };

  /// Uniform-random seed action a_0 over the remaining candidates
  /// (paper §4.3.3); returns kNoUser when exhausted.
  data::UserId SampleSeedUser(util::Rng& rng);

  /// Builds the profile to inject for `user` (crafted or raw).
  data::Profile BuildProfile(data::UserId user, util::Rng& rng,
                             TrajectoryStep* step);

  /// Episode-end REINFORCE update of both policies.
  void UpdatePolicies(const std::vector<TrajectoryStep>& trajectory);

  const data::CrossDomainDataset* dataset_
      CA_NOT_CHECKPOINTED("borrowed pointer, rebound at construction");
  const cluster::HierarchicalTree* tree_
      CA_NOT_CHECKPOINTED("borrowed pointer, rebound at construction");
  CopyAttackConfig config_ CA_NOT_CHECKPOINTED(
      "configuration, part of the campaign fingerprint, not mutable state");

  std::unique_ptr<HierarchicalSelectionPolicy> selection_;
  std::unique_ptr<CraftingPolicy> crafting_;
  nn::MovingBaseline baseline_;

  data::ItemId target_item_
      CA_NOT_CHECKPOINTED("per-target, reset by BeginTargetItem") =
          data::kNoItem;
  /// Item the selection mask and crafting window anchor on; equals
  /// `target_item_` unless proxy mode engaged.
  data::ItemId anchor_item_
      CA_NOT_CHECKPOINTED("per-target, derived in BeginTargetItem") =
          data::kNoItem;
  std::vector<data::UserId> candidates_
      CA_NOT_CHECKPOINTED("per-target, derived in BeginTargetItem");
  std::unordered_set<data::UserId> selected_this_episode_
      CA_NOT_CHECKPOINTED("per-episode scratch, cleared by RunEpisode");
  bool eval_mode_ CA_NOT_CHECKPOINTED("transient evaluation toggle") = false;
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_COPY_ATTACK_H_
