#include "core/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "core/target_play.h"
#include "fault/crash_point.h"
#include "obs/obs.h"
#include "obs/time.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace copyattack::core {

ParallelCampaignRunner::ParallelCampaignRunner(
    const data::CrossDomainDataset& dataset,
    const data::Dataset& target_train, ModelFactory model_factory,
    StrategyFactory strategy_factory, const ParallelRunnerOptions& options)
    : dataset_(dataset),
      target_train_(target_train),
      model_factory_(std::move(model_factory)),
      strategy_factory_(std::move(strategy_factory)),
      options_(options) {
  CA_CHECK_GT(options_.jobs, 0U) << "--jobs must be a positive integer";
}

ParallelCampaignResult ParallelCampaignRunner::Run(
    const std::vector<data::ItemId>& targets,
    const CampaignConfig& config) const {
  CA_CHECK_GT(config.episodes, 0U);
  const bool checkpointed = !options_.checkpoint.dir.empty();
  if (checkpointed) {
    CA_CHECK(!config.env.refit_on_query)
        << "checkpointed campaigns require refit_on_query = false: the "
           "refit target model's weights are not captured by the "
           "checkpoint";
    CA_CHECK_GT(options_.checkpoint.every_episodes, 0U);
  }
  OBS_SPAN("campaign.run_sharded");
  OBS_COUNTER_INC("campaign.runs");
  obs::Stopwatch watch;

  const std::size_t total_shards =
      std::max<std::size_t>(1, options_.shards == 0 ? options_.jobs
                                                    : options_.shards);

  // Per-item config: the batching decorator is the only knob the runner
  // turns; the seeds stay exactly RunCampaign's (see PlayTargetItem).
  CampaignConfig item_config = config;
  item_config.env.batched_queries = options_.batched_queries;
  item_config.num_threads = 1;
  item_config.checkpoint = CampaignCheckpointOptions{};

  // Probe a throwaway strategy for the method name: fingerprints need it
  // before any shard runs (construction is cheap and stateless).
  const std::string method = strategy_factory_(config.seed)->name();

  ParallelCampaignResult result;
  result.aggregate.method = method;
  result.outcomes.resize(targets.size());
  result.completed.assign(targets.size(), 0);
  result.shards.resize(total_shards);

  std::atomic<std::size_t> episodes_played{0};
  std::atomic<bool> abort_flag{false};
  const std::size_t abort_after = options_.checkpoint.abort_after_episodes;
  // Cooperative cancellation (watchdog deadline, drain): once the hook
  // trips, every shard stops at its next yield point.
  const auto canceled = [this, &abort_flag] {
    if (options_.cancel && options_.cancel()) {
      abort_flag.store(true, std::memory_order_relaxed);
    }
    return abort_flag.load(std::memory_order_relaxed);
  };

  util::ThreadPool::ParallelFor(
      total_shards, options_.jobs, [&](std::size_t shard) {
        OBS_SPAN("campaign.shard");
        CA_CRASH_POINT("runner.shard_begin");
        obs::Stopwatch shard_watch;
        ShardStats& stats = result.shards[shard];
        stats.shard = shard;
        stats.total_shards = total_shards;
        // Mix shard count and index into the stream so shard 0-of-2 and
        // 0-of-4 never share a checkpoint identity.
        stats.stream_seed = util::DeriveStreamSeed(
            config.seed,
            (static_cast<std::uint64_t>(total_shards) << 32) | shard);

        // Round-robin assignment: shard s owns global indices s, s+S, ...
        std::vector<std::size_t> indices;
        for (std::size_t g = shard; g < targets.size();
             g += total_shards) {
          indices.push_back(g);
        }
        stats.num_items = indices.size();

        CampaignCheckpoint state;
        std::string shard_dir;
        std::size_t start = 0;
        InProgressTarget resume_progress;
        if (checkpointed) {
          shard_dir = options_.checkpoint.dir + "/shard_" +
                      std::to_string(shard) + "_of_" +
                      std::to_string(total_shards);
          state.fingerprint.method = method;
          state.fingerprint.seed = stats.stream_seed;
          state.fingerprint.episodes = config.episodes;
          state.fingerprint.num_targets = indices.size();
          state.fingerprint.env_budget = config.env.budget;
          if (options_.checkpoint.resume) {
            CampaignCheckpoint loaded;
            const CheckpointSource source = LoadCampaignCheckpoint(
                shard_dir, state.fingerprint, &loaded);
            if (source != CheckpointSource::kNone) {
              stats.resumed_from = source;
              OBS_COUNTER_INC("campaign.resumes");
              state.completed = std::move(loaded.completed);
              start = std::min(state.completed.size(), indices.size());
              if (loaded.in_progress.active) {
                CA_CHECK_EQ(loaded.in_progress.target_index, start);
                resume_progress = loaded.in_progress;
              }
              // Replay checkpointed outcomes into their global slots.
              for (std::size_t i = 0; i < start; ++i) {
                result.outcomes[indices[i]] = state.completed[i];
                result.completed[indices[i]] = 1;
              }
              CA_LOG(Info)
                  << "shard " << shard << "/" << total_shards
                  << ": resumed (" << start << "/" << indices.size()
                  << " targets done"
                  << (resume_progress.active
                          ? ", mid-target checkpoint present"
                          : "")
                  << ")";
            }
          }
        }

        const auto save = [&] {
          if (SaveCampaignCheckpoint(state, shard_dir)) {
            ++stats.checkpoint_saves;
            OBS_COUNTER_INC("campaign.checkpoint_saves");
          } else {
            // A failed save must not kill the campaign it protects.
            CA_LOG(Warning) << "shard " << shard
                            << ": checkpoint save failed under "
                            << shard_dir;
          }
        };

        for (std::size_t i = start; i < indices.size(); ++i) {
          if (canceled()) break;
          const std::size_t global_index = indices[i];
          TargetPlayHooks hooks;
          if (checkpointed) {
            hooks.every_episodes = options_.checkpoint.every_episodes;
            hooks.progress_target_index = i;
            hooks.on_progress = [&](const InProgressTarget& progress) {
              state.in_progress = progress;
              save();
            };
          }
          if (resume_progress.active && i == start) {
            hooks.resume = &resume_progress;
          }
          hooks.should_abort = [&] {
            ++stats.episodes_played;
            const std::size_t played =
                episodes_played.fetch_add(1, std::memory_order_relaxed) +
                1;
            if (abort_after > 0 && played >= abort_after) {
              abort_flag.store(true, std::memory_order_relaxed);
            }
            return canceled();
          };

          TargetPlayResult play = PlayTargetItem(
              dataset_, target_train_, model_factory_, strategy_factory_,
              targets[global_index], global_index, item_config, hooks,
              nullptr);
          if (play.aborted) break;

          result.outcomes[global_index] = std::move(play.outcome);
          result.completed[global_index] = 1;
          if (checkpointed) {
            state.completed.push_back(result.outcomes[global_index]);
            state.in_progress = InProgressTarget{};
            resume_progress = InProgressTarget{};
            save();
          }
          CA_CRASH_POINT("runner.target_committed");
        }
        stats.wall_seconds = shard_watch.ElapsedSeconds();
      });

  result.aggregate.aborted = abort_flag.load(std::memory_order_relaxed);
  for (const ShardStats& stats : result.shards) {
    result.aggregate.checkpoint_saves += stats.checkpoint_saves;
    if (stats.resumed_from != CheckpointSource::kNone &&
        result.aggregate.resumed_from == CheckpointSource::kNone) {
      result.aggregate.resumed_from = stats.resumed_from;
    }
  }

  // Merge completed outcomes in global target order — the order (and the
  // outcomes themselves) are invariant to shard and thread count.
  std::vector<TargetOutcomeState> done;
  done.reserve(targets.size());
  for (std::size_t g = 0; g < targets.size(); ++g) {
    if (result.completed[g] != 0) done.push_back(result.outcomes[g]);
  }
  MergeOutcomes(done, config.eval_ks, &result.aggregate);
  result.aggregate.wall_seconds = watch.ElapsedSeconds();
  result.campaigns_per_sec =
      result.aggregate.wall_seconds > 0.0
          ? static_cast<double>(done.size()) /
                result.aggregate.wall_seconds
          : 0.0;
  OBS_GAUGE_SET("campaign.campaigns_per_sec", result.campaigns_per_sec);
  CA_LOG(Info) << method << " (sharded x" << total_shards << ", jobs "
               << options_.jobs << "): "
               << util::FormatDouble(result.aggregate.wall_seconds, 1)
               << "s over " << done.size() << "/" << targets.size()
               << " target items ("
               << util::FormatDouble(result.campaigns_per_sec, 2)
               << " campaigns/s)";
  return result;
}

void WriteShardStatsCsv(const std::vector<ShardStats>& shards,
                        std::ostream& out) {
  out << "shard,total_shards,items,stream_seed,episodes,saves,resumed,"
         "wall_seconds\n";
  for (const ShardStats& stats : shards) {
    out << stats.shard << ',' << stats.total_shards << ','
        << stats.num_items << ',' << stats.stream_seed << ','
        << stats.episodes_played << ',' << stats.checkpoint_saves << ','
        << static_cast<int>(stats.resumed_from) << ','
        << util::FormatDouble(stats.wall_seconds, 6) << '\n';
  }
}

bool ParseShardStatsCsv(std::istream& in, std::vector<ShardStats>* shards,
                        std::string* error) {
  CA_CHECK(shards != nullptr);
  CA_CHECK(error != nullptr);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> fields = util::Split(trimmed, ',');
    if (util::Trim(fields.front()) == "shard") continue;  // header row
    if (fields.size() != 8) {
      *error = "shard stats csv line " + std::to_string(line_number) +
               ": expected 8 fields, got " + std::to_string(fields.size());
      return false;
    }
    ShardStats stats;
    bool ok = util::ParseSizeT(util::Trim(fields[0]), &stats.shard);
    ok = ok && util::ParseSizeT(util::Trim(fields[1]), &stats.total_shards);
    ok = ok && util::ParseSizeT(util::Trim(fields[2]), &stats.num_items);
    std::size_t seed_bits = 0;
    ok = ok && util::ParseSizeT(util::Trim(fields[3]), &seed_bits);
    stats.stream_seed = static_cast<std::uint64_t>(seed_bits);
    ok = ok &&
         util::ParseSizeT(util::Trim(fields[4]), &stats.episodes_played);
    ok = ok &&
         util::ParseSizeT(util::Trim(fields[5]), &stats.checkpoint_saves);
    std::size_t source_code = 0;
    ok = ok && util::ParseSizeT(util::Trim(fields[6]), &source_code) &&
         source_code <= static_cast<std::size_t>(CheckpointSource::kTempOrphan);
    stats.resumed_from = static_cast<CheckpointSource>(source_code);
    ok = ok && util::ParseDouble(util::Trim(fields[7]), &stats.wall_seconds);
    if (!ok) {
      *error = "shard stats csv line " + std::to_string(line_number) +
               ": malformed field";
      return false;
    }
    shards->push_back(stats);
  }
  return true;
}

}  // namespace copyattack::core
