#ifndef COPYATTACK_CORE_ENVIRONMENT_H_
#define COPYATTACK_CORE_ENVIRONMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/cross_domain.h"
#include "data/dataset.h"
#include "fault/fault_injector.h"
#include "fault/resilient_black_box.h"
#include "rec/batched_black_box.h"
#include "rec/black_box.h"
#include "rec/evaluator.h"
#include "rec/recommender.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace copyattack::core {

/// Direction of the attack (paper §4.2: "promotion or demotion"; the
/// paper evaluates promotion and leaves demotion as future work — this
/// implementation supports both).
enum class AttackGoal {
  /// Maximize the target item's hit ratio over the pretend users.
  kPromote,
  /// Minimize it: reward = 1 - HR@k, useful against popular items.
  kDemote,
};

/// Ranking measure behind the reward ("this type of reward function based
/// on ranking evaluation is quite general", paper §4.2).
enum class RewardMetric {
  kHitRatio,  ///< Eq. (1): HR@k over the pretend users
  kNdcg,      ///< NDCG@k over the pretend users
};

/// Parameters of the black-box attacking environment (paper §4.2, §5.1.3).
struct EnvConfig {
  /// Attack direction.
  AttackGoal goal = AttackGoal::kPromote;
  /// Ranking measure aggregated over the pretend users.
  RewardMetric reward_metric = RewardMetric::kHitRatio;
  /// Budget Δ: maximum number of profiles to copy per episode.
  std::size_t budget = 30;
  /// Queries are performed after every `query_interval` injections.
  std::size_t query_interval = 3;
  /// Number of pretend users |U_A*| the attacker planted in A.
  std::size_t num_pretend_users = 50;
  /// Cutoff k of the HR@k reward (Eq. 1).
  std::size_t reward_k = 20;
  /// Candidate-list size per pretend-user query (the target item plus this
  /// many sampled unseen items, matching the paper's ranking protocol).
  std::size_t query_candidates = 100;
  /// Episode ends early once the reward reaches this value ("fewer user
  /// profiles are enough to satisfy the promotion task").
  double success_reward = 0.999;
  /// Optional cap on query rounds per episode (0 = unlimited). The paper
  /// motivates the whole design with "limited resources (i.e., number of
  /// queries allowed to the target recommender system)"; with a cap, the
  /// episode ends once the attacker has spent its query budget.
  std::size_t max_query_rounds = 0;
  /// When true the platform additionally fine-tunes the model on the
  /// polluted data at each query round (models a periodically retrained
  /// transductive target such as plain MF).
  bool refit_on_query = false;
  std::size_t refit_epochs = 1;
  /// Seed for pretend-user generation and query candidate sampling.
  std::uint64_t seed = 1234;
  /// Simulated-fault schedule for the black-box oracle (off by default;
  /// when enabled the oracle stack is BlackBoxRecommender ← FaultInjector
  /// [← ResilientBlackBox]).
  fault::FaultScheduleConfig fault;
  /// Client-side retry/backoff/circuit-breaker policy (off by default).
  fault::ResilienceConfig resilience;
  /// Coalesce each query round's pretend-user probes into one batched
  /// oracle call (rec::BatchedBlackBox). Payload-equivalent to per-user
  /// probing — on the clean stack the batch runs as one blocked scoring
  /// call with heap select; under faults it forwards per query in probe
  /// order — so rewards and fault sequences are bit-identical either
  /// way. The sharded campaign runner turns this on.
  bool batched_queries = false;
};

/// The MDP the attacker interacts with (paper §4.2): states are the
/// injected profiles so far, an action injects one crafted profile, the
/// reward is HR@k of the target item over the attacker's pretend users,
/// and the episode terminates at the budget or on success.
///
/// The environment owns a polluted copy of the target-domain training data
/// plus the attacker's pretend users; `Reset` discards all injected
/// profiles (a fresh episode) while keeping the pretend users and their
/// fixed query candidate lists so rewards are comparable across episodes.
class AttackEnvironment {
 public:
  /// `dataset` is the full cross-domain pair (borrowed; used for sampling
  /// pretend users and final evaluation filtering). `target_train` is the
  /// training split the model was fitted on. `model` must be fitted; the
  /// environment calls `BeginServing` on every reset.
  AttackEnvironment(const data::CrossDomainDataset& dataset,
                    const data::Dataset& target_train,
                    rec::Recommender* model, const EnvConfig& config);

  /// Starts a fresh episode targeting `target_item`.
  void Reset(data::ItemId target_item);

  /// Result of one environment step.
  struct StepResult {
    double reward = 0.0;  ///< HR@k over pretend users; 0 on non-query steps
    bool queried = false; ///< whether this step triggered a query round
    bool done = false;    ///< episode finished (budget or success)
  };

  /// Injects one crafted profile (the action a_t). Must not be called on a
  /// finished episode.
  StepResult Step(data::Profile crafted_profile);

  /// Performs a query round immediately and returns the goal-adjusted
  /// reward: HR@k for promotion, 1 - HR@k for demotion. When the oracle is
  /// unavailable (resilience client gave up / breaker open) the round
  /// degrades to the proxy reward estimate instead of aborting (see
  /// `proxy_reward_fallbacks()`).
  double QueryReward();

  /// Raw ranking measure (HR@k or NDCG@k per `reward_metric`) of the
  /// target item over the pretend users at this instant (one query round;
  /// counts toward the query meter). Degrades like `QueryReward`.
  double RawHitRatio();

  /// Attempts one real query round. Returns false — leaving `*out`
  /// untouched — if the oracle reported kUnavailable mid-round; individual
  /// non-ok queries short of that merely count as misses.
  bool TryRawHitRatio(double* out);

  bool done() const { return done_; }
  data::ItemId target_item() const { return target_item_; }
  std::size_t steps_taken() const { return steps_; }
  const EnvConfig& config() const { return config_; }

  /// The black-box oracle the attacker talks to — the outermost layer of
  /// the fault stack (valid after the first `Reset`). Without faults this
  /// is the plain `BlackBoxRecommender`.
  rec::BlackBoxInterface& black_box();
  const rec::BlackBoxInterface& black_box() const;

  /// The fault decorator, or nullptr when no schedule is enabled.
  const fault::FaultInjector* fault_injector() const {
    return fault_injector_.get();
  }
  /// The batching decorator, or nullptr unless `batched_queries` is on.
  const rec::BatchedBlackBox* batched() const { return batched_.get(); }
  /// The resilience client, or nullptr when disabled.
  const fault::ResilientBlackBox* resilient() const {
    return resilient_.get();
  }

  /// Total Top-k queries issued across all episodes since construction.
  std::size_t lifetime_queries() const { return lifetime_queries_; }

  /// Query rounds that degraded to the proxy reward estimate because the
  /// oracle was unavailable.
  std::size_t proxy_reward_fallbacks() const {
    return proxy_reward_fallbacks_;
  }

  /// Episodes started (Reset calls) since construction; also the index
  /// that derives each episode's fault/resilience seeds.
  std::size_t episodes_begun() const { return episodes_begun_; }

  /// Cross-episode mutable state a campaign checkpoint must capture so a
  /// resumed environment continues bit-exactly (core/checkpoint.h).
  struct ResumeState CA_CHECKPOINTED(AttackEnvironment::SaveResumeState,
                                     AttackEnvironment::RestoreResumeState) {
    std::size_t lifetime_queries = 0;
    std::size_t episodes_begun = 0;
    std::size_t proxy_reward_fallbacks = 0;
    util::RngState refit_rng;
  };
  ResumeState SaveResumeState() const;
  void RestoreResumeState(const ResumeState& state);

  /// Number of Resets served by the snapshot/rollback fast path (as
  /// opposed to a full rebuild). Exposed for tests and perf tooling to
  /// verify the optimization engages.
  std::size_t fast_resets() const { return fast_resets_; }

  /// Final-state promotion metrics over a sample of *real* target-domain
  /// users (the quantity Table 2 reports; pretend users are excluded).
  rec::MetricsByK EvaluateRealPromotion(const std::vector<std::size_t>& ks,
                                        std::size_t num_users,
                                        std::size_t num_negatives) const;

  /// Ids of the pretend users within the polluted dataset.
  const std::vector<data::UserId>& pretend_users() const {
    return pretend_user_ids_;
  }

 private:
  /// Builds the pretend users' profiles (subsequences of random real
  /// profiles — plausible accounts the attacker registered beforehand).
  void GeneratePretendProfiles();

  /// (Re)points `oracle_` at the outermost layer of the decorator stack
  /// for the episode with the given index. The concrete recommender is
  /// created once and its meters reset per episode; fault/resilience
  /// decorators are rebuilt each episode because their streams derive
  /// from (configured seed, episode index).
  void RebuildOracleStack(std::uint64_t episode_index);

  const data::CrossDomainDataset& dataset_;
  const data::Dataset& target_train_;
  rec::Recommender* model_;
  EnvConfig config_;
  util::Rng rng_;

  std::vector<data::Profile> pretend_profiles_;
  std::vector<data::UserId> pretend_user_ids_;
  /// Fixed per-pretend-user negative candidates for the current target item.
  std::vector<std::vector<data::ItemId>> query_negatives_;

  /// One long-lived polluted copy of the training data. Episodes are
  /// separated by checkpoint/rollback (O(injected) per reset), not by
  /// re-copying the dataset (O(dataset) per reset).
  std::unique_ptr<data::Dataset> polluted_;
  /// Training data only (taken at construction).
  data::DatasetCheckpoint base_checkpoint_;
  /// Training data + pretend users for `checkpointed_target_` (retaken
  /// whenever the target item changes or the model checkpoint lapses).
  data::DatasetCheckpoint episode_checkpoint_;
  /// Target item the episode checkpoint and the model's serving checkpoint
  /// were taken for; kNoItem when the slow reset path must run.
  data::ItemId checkpointed_target_ = data::kNoItem;
  std::unique_ptr<rec::BlackBoxRecommender> black_box_;
  /// Fault stack layered over `black_box_` when configured; `oracle_`
  /// always points at the outermost layer the attacker should use.
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<fault::ResilientBlackBox> resilient_;
  std::unique_ptr<rec::BatchedBlackBox> batched_;
  rec::BlackBoxInterface* oracle_ = nullptr;

  data::ItemId target_item_ = data::kNoItem;
  std::size_t steps_ = 0;
  std::size_t episode_query_rounds_ = 0;
  bool done_ = true;
  std::size_t lifetime_queries_ = 0;
  std::size_t fast_resets_ = 0;
  std::size_t episodes_begun_ = 0;
  std::size_t proxy_reward_fallbacks_ = 0;
  util::Rng refit_rng_;
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_ENVIRONMENT_H_
