#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/crash_point.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace copyattack::core {
namespace {

// Primitive payload codec. Everything is explicit-width little-endian on
// the platforms this repo targets; floats/doubles are raw IEEE-754 bytes
// (bit-exact round trips are the whole point of the checkpoint).

void WriteU8(std::ostream& out, std::uint8_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU32(std::ostream& out, std::uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteDouble(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteString(std::ostream& out, const std::string& value) {
  WriteU64(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

bool ReadU8(std::istream& in, std::uint8_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadU32(std::istream& in, std::uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadU64(std::istream& in, std::uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadDouble(std::istream& in, double* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadString(std::istream& in, std::string* value) {
  std::uint64_t size = 0;
  if (!ReadU64(in, &size)) return false;
  // Bound string sizes: a corrupted length must not drive a giant
  // allocation before the CRC would have caught it (the CRC runs first,
  // but keep the decoder independently robust).
  if (size > (1ULL << 32)) return false;
  value->assign(static_cast<std::size_t>(size), '\0');
  in.read(value->data(), static_cast<std::streamsize>(size));
  return static_cast<bool>(in);
}

void WriteRngState(std::ostream& out, const util::RngState& state) {
  for (const std::uint64_t word : state.words) WriteU64(out, word);
  WriteU8(out, state.has_cached_normal ? 1 : 0);
  WriteDouble(out, state.cached_normal);
}

bool ReadRngState(std::istream& in, util::RngState* state) {
  for (std::uint64_t& word : state->words) {
    if (!ReadU64(in, &word)) return false;
  }
  std::uint8_t cached = 0;
  if (!ReadU8(in, &cached)) return false;
  state->has_cached_normal = cached != 0;
  return ReadDouble(in, &state->cached_normal);
}

void WriteMetrics(std::ostream& out, const rec::MetricsByK& metrics) {
  WriteU64(out, metrics.size());
  for (const auto& [k, m] : metrics) {
    WriteU64(out, k);
    WriteDouble(out, m.hr);
    WriteDouble(out, m.ndcg);
    WriteU64(out, m.count);
  }
}

bool ReadMetrics(std::istream& in, rec::MetricsByK* metrics) {
  std::uint64_t size = 0;
  if (!ReadU64(in, &size)) return false;
  metrics->clear();
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t k = 0;
    rec::TopKMetrics m;
    if (!ReadU64(in, &k) || !ReadDouble(in, &m.hr) ||
        !ReadDouble(in, &m.ndcg)) {
      return false;
    }
    std::uint64_t count = 0;
    if (!ReadU64(in, &count)) return false;
    m.count = static_cast<std::size_t>(count);
    (*metrics)[static_cast<std::size_t>(k)] = m;
  }
  return true;
}

void WriteOutcome(std::ostream& out, const TargetOutcomeState& outcome) {
  WriteMetrics(out, outcome.metrics);
  WriteDouble(out, outcome.items_per_profile);
  WriteDouble(out, outcome.profiles_injected);
  WriteDouble(out, outcome.query_rounds);
  WriteDouble(out, outcome.final_reward);
}

bool ReadOutcome(std::istream& in, TargetOutcomeState* outcome) {
  return ReadMetrics(in, &outcome->metrics) &&
         ReadDouble(in, &outcome->items_per_profile) &&
         ReadDouble(in, &outcome->profiles_injected) &&
         ReadDouble(in, &outcome->query_rounds) &&
         ReadDouble(in, &outcome->final_reward);
}

std::string SerializePayload(const CampaignCheckpoint& checkpoint) {
  std::ostringstream out(std::ios::binary);
  WriteString(out, checkpoint.fingerprint.method);
  WriteU64(out, checkpoint.fingerprint.seed);
  WriteU64(out, checkpoint.fingerprint.episodes);
  WriteU64(out, checkpoint.fingerprint.num_targets);
  WriteU64(out, checkpoint.fingerprint.env_budget);

  WriteU64(out, checkpoint.completed.size());
  for (const TargetOutcomeState& outcome : checkpoint.completed) {
    WriteOutcome(out, outcome);
  }

  const InProgressTarget& progress = checkpoint.in_progress;
  WriteU8(out, progress.active ? 1 : 0);
  if (progress.active) {
    WriteU64(out, progress.target_index);
    WriteU64(out, progress.episodes_done);
    WriteRngState(out, progress.episode_rng);
    WriteU64(out, progress.env.lifetime_queries);
    WriteU64(out, progress.env.episodes_begun);
    WriteU64(out, progress.env.proxy_reward_fallbacks);
    WriteRngState(out, progress.env.refit_rng);
    WriteString(out, progress.strategy_blob);
  }
  return out.str();
}

bool DeserializePayload(const std::string& payload,
                        CampaignCheckpoint* checkpoint) {
  std::istringstream in(payload, std::ios::binary);
  if (!ReadString(in, &checkpoint->fingerprint.method)) return false;
  std::uint64_t seed = 0, episodes = 0, num_targets = 0, env_budget = 0;
  if (!ReadU64(in, &seed) || !ReadU64(in, &episodes) ||
      !ReadU64(in, &num_targets) || !ReadU64(in, &env_budget)) {
    return false;
  }
  checkpoint->fingerprint.seed = seed;
  checkpoint->fingerprint.episodes = static_cast<std::size_t>(episodes);
  checkpoint->fingerprint.num_targets =
      static_cast<std::size_t>(num_targets);
  checkpoint->fingerprint.env_budget = static_cast<std::size_t>(env_budget);

  std::uint64_t completed = 0;
  if (!ReadU64(in, &completed)) return false;
  if (completed > checkpoint->fingerprint.num_targets) return false;
  checkpoint->completed.assign(static_cast<std::size_t>(completed),
                               TargetOutcomeState{});
  for (TargetOutcomeState& outcome : checkpoint->completed) {
    if (!ReadOutcome(in, &outcome)) return false;
  }

  std::uint8_t active = 0;
  if (!ReadU8(in, &active)) return false;
  InProgressTarget& progress = checkpoint->in_progress;
  progress = InProgressTarget{};
  progress.active = active != 0;
  if (progress.active) {
    std::uint64_t target_index = 0, episodes_done = 0;
    std::uint64_t lifetime_queries = 0, episodes_begun = 0;
    std::uint64_t proxy_reward_fallbacks = 0;
    if (!ReadU64(in, &target_index) || !ReadU64(in, &episodes_done) ||
        !ReadRngState(in, &progress.episode_rng) ||
        !ReadU64(in, &lifetime_queries) || !ReadU64(in, &episodes_begun) ||
        !ReadU64(in, &proxy_reward_fallbacks) ||
        !ReadRngState(in, &progress.env.refit_rng) ||
        !ReadString(in, &progress.strategy_blob)) {
      return false;
    }
    progress.target_index = static_cast<std::size_t>(target_index);
    progress.episodes_done = static_cast<std::size_t>(episodes_done);
    progress.env.lifetime_queries =
        static_cast<std::size_t>(lifetime_queries);
    progress.env.episodes_begun = static_cast<std::size_t>(episodes_begun);
    progress.env.proxy_reward_fallbacks =
        static_cast<std::size_t>(proxy_reward_fallbacks);
  }
  return true;
}

/// Appends one candidate's rejection reason to the load diagnostic.
void NoteReject(std::string* why, const std::string& path,
                const char* reason) {
  if (why == nullptr) return;
  if (!why->empty()) *why += "; ";
  *why += path + ": " + reason;
}

/// Reads and fully validates one checkpoint file. Returns false on any
/// defect: unreadable, truncated header, wrong magic/version, payload
/// shorter than declared, CRC mismatch, undecodable payload, or a
/// fingerprint that does not match `expected`. On rejection, appends the
/// reason to `why` (when non-null) so a total load failure can say what
/// was wrong with every candidate.
bool LoadOneFile(const std::string& path,
                 const CampaignFingerprint& expected,
                 CampaignCheckpoint* out, std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    NoteReject(why, path, "unreadable or missing");
    return false;
  }
  std::uint32_t magic = 0, version = 0, crc = 0;
  std::uint64_t payload_size = 0;
  if (!ReadU32(in, &magic) || magic != kCheckpointMagic) {
    NoteReject(why, path, "bad magic (truncated or not a checkpoint)");
    return false;
  }
  if (!ReadU32(in, &version) || version != kCheckpointVersion) {
    NoteReject(why, path, "unsupported version");
    return false;
  }
  if (!ReadU64(in, &payload_size) || !ReadU32(in, &crc)) {
    NoteReject(why, path, "truncated header");
    return false;
  }
  if (payload_size > (1ULL << 36)) {
    NoteReject(why, path, "implausible payload size");
    return false;
  }
  // Bound the allocation by what the file actually holds: a bit-flipped
  // size field must be rejected as a truncation, not turned into a
  // multi-gigabyte allocation before the read even starts.
  const std::streampos data_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::uint64_t available =
      static_cast<std::uint64_t>(in.tellg() - data_begin);
  in.seekg(data_begin);
  if (!in || payload_size > available) {
    NoteReject(why, path, "truncated payload");
    return false;
  }
  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (!in) {
    // Torn write: payload shorter than declared.
    NoteReject(why, path, "truncated payload");
    return false;
  }
  if (util::Crc32(payload) != crc) {
    NoteReject(why, path, "CRC mismatch");
    return false;
  }
  CampaignCheckpoint decoded;
  if (!DeserializePayload(payload, &decoded)) {
    NoteReject(why, path, "undecodable payload");
    return false;
  }
  if (!decoded.fingerprint.Matches(expected)) {
    NoteReject(why, path, "fingerprint mismatch");
    return false;
  }
  *out = std::move(decoded);
  return true;
}

}  // namespace

std::string CheckpointPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "campaign.ckpt").string();
}

std::string CheckpointFallbackPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "campaign.ckpt.prev").string();
}

std::string CheckpointTempPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "campaign.ckpt.tmp").string();
}

bool SaveCampaignCheckpoint(const CampaignCheckpoint& checkpoint,
                            const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort

  const std::string payload = SerializePayload(checkpoint);
  const std::string path = CheckpointPath(dir);
  const std::string tmp_path = CheckpointTempPath(dir);
  // Crash phase 1: nothing written yet — both on-disk files are intact.
  CA_CRASH_POINT("checkpoint.pre_temp_write");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    WriteU32(out, kCheckpointMagic);
    WriteU32(out, kCheckpointVersion);
    WriteU64(out, payload.size());
    WriteU32(out, util::Crc32(payload));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    if (!out) return false;
    out.flush();
    if (!out) return false;
  }
  // Crash phase 2: the temp file is complete but the rotation has not
  // begun — the loader's `.tmp`-orphan ladder makes the new state
  // reachable even though the rename never happened.
  CA_CRASH_POINT("checkpoint.pre_rotate");
  // Rotate: the current checkpoint becomes the fallback, then the temp
  // file lands as the new current. Both renames are atomic within a
  // filesystem, so a crash leaves either (old, old-prev) or (new, old) —
  // never a half-written primary.
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, CheckpointFallbackPath(dir), ec);
    if (ec) return false;
  }
  // Crash phase 3: between the two renames the primary is missing; the
  // complete temp orphan (newest) and the rotated `.prev` both survive.
  CA_CRASH_POINT("checkpoint.pre_rename");
  std::filesystem::rename(tmp_path, path, ec);
  return !ec;
}

CheckpointSource LoadCampaignCheckpoint(const std::string& dir,
                                        const CampaignFingerprint& expected,
                                        CampaignCheckpoint* out,
                                        data::IoError* error) {
  std::string why;
  std::string* why_out = error != nullptr ? &why : nullptr;
  if (LoadOneFile(CheckpointPath(dir), expected, out, why_out)) {
    return CheckpointSource::kPrimary;
  }
  // A complete, CRC-valid temp file is NEWER than `.prev`: it only
  // exists when the crash hit after the payload was fully flushed but
  // before the rename landed, so prefer it over the previous rotation.
  if (LoadOneFile(CheckpointTempPath(dir), expected, out, why_out)) {
    CA_LOG(Warning) << "checkpoint: primary " << CheckpointPath(dir)
                    << " invalid or missing; recovered the complete "
                       "temp-file orphan";
    return CheckpointSource::kTempOrphan;
  }
  if (LoadOneFile(CheckpointFallbackPath(dir), expected, out, why_out)) {
    CA_LOG(Warning) << "checkpoint: primary " << CheckpointPath(dir)
                    << " invalid or missing; resumed from fallback";
    return CheckpointSource::kFallback;
  }
  if (error != nullptr) {
    error->file = CheckpointPath(dir);
    error->line = 0;
    error->message = "no loadable checkpoint: " + why;
  }
  return CheckpointSource::kNone;
}

}  // namespace copyattack::core
