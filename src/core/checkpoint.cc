#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/checksum.h"
#include "util/logging.h"

namespace copyattack::core {
namespace {

// Primitive payload codec. Everything is explicit-width little-endian on
// the platforms this repo targets; floats/doubles are raw IEEE-754 bytes
// (bit-exact round trips are the whole point of the checkpoint).

void WriteU8(std::ostream& out, std::uint8_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU32(std::ostream& out, std::uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteDouble(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteString(std::ostream& out, const std::string& value) {
  WriteU64(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

bool ReadU8(std::istream& in, std::uint8_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadU32(std::istream& in, std::uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadU64(std::istream& in, std::uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadDouble(std::istream& in, double* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadString(std::istream& in, std::string* value) {
  std::uint64_t size = 0;
  if (!ReadU64(in, &size)) return false;
  // Bound string sizes: a corrupted length must not drive a giant
  // allocation before the CRC would have caught it (the CRC runs first,
  // but keep the decoder independently robust).
  if (size > (1ULL << 32)) return false;
  value->assign(static_cast<std::size_t>(size), '\0');
  in.read(value->data(), static_cast<std::streamsize>(size));
  return static_cast<bool>(in);
}

void WriteRngState(std::ostream& out, const util::RngState& state) {
  for (const std::uint64_t word : state.words) WriteU64(out, word);
  WriteU8(out, state.has_cached_normal ? 1 : 0);
  WriteDouble(out, state.cached_normal);
}

bool ReadRngState(std::istream& in, util::RngState* state) {
  for (std::uint64_t& word : state->words) {
    if (!ReadU64(in, &word)) return false;
  }
  std::uint8_t cached = 0;
  if (!ReadU8(in, &cached)) return false;
  state->has_cached_normal = cached != 0;
  return ReadDouble(in, &state->cached_normal);
}

void WriteMetrics(std::ostream& out, const rec::MetricsByK& metrics) {
  WriteU64(out, metrics.size());
  for (const auto& [k, m] : metrics) {
    WriteU64(out, k);
    WriteDouble(out, m.hr);
    WriteDouble(out, m.ndcg);
    WriteU64(out, m.count);
  }
}

bool ReadMetrics(std::istream& in, rec::MetricsByK* metrics) {
  std::uint64_t size = 0;
  if (!ReadU64(in, &size)) return false;
  metrics->clear();
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t k = 0;
    rec::TopKMetrics m;
    if (!ReadU64(in, &k) || !ReadDouble(in, &m.hr) ||
        !ReadDouble(in, &m.ndcg)) {
      return false;
    }
    std::uint64_t count = 0;
    if (!ReadU64(in, &count)) return false;
    m.count = static_cast<std::size_t>(count);
    (*metrics)[static_cast<std::size_t>(k)] = m;
  }
  return true;
}

void WriteOutcome(std::ostream& out, const TargetOutcomeState& outcome) {
  WriteMetrics(out, outcome.metrics);
  WriteDouble(out, outcome.items_per_profile);
  WriteDouble(out, outcome.profiles_injected);
  WriteDouble(out, outcome.query_rounds);
  WriteDouble(out, outcome.final_reward);
}

bool ReadOutcome(std::istream& in, TargetOutcomeState* outcome) {
  return ReadMetrics(in, &outcome->metrics) &&
         ReadDouble(in, &outcome->items_per_profile) &&
         ReadDouble(in, &outcome->profiles_injected) &&
         ReadDouble(in, &outcome->query_rounds) &&
         ReadDouble(in, &outcome->final_reward);
}

std::string SerializePayload(const CampaignCheckpoint& checkpoint) {
  std::ostringstream out(std::ios::binary);
  WriteString(out, checkpoint.fingerprint.method);
  WriteU64(out, checkpoint.fingerprint.seed);
  WriteU64(out, checkpoint.fingerprint.episodes);
  WriteU64(out, checkpoint.fingerprint.num_targets);
  WriteU64(out, checkpoint.fingerprint.env_budget);

  WriteU64(out, checkpoint.completed.size());
  for (const TargetOutcomeState& outcome : checkpoint.completed) {
    WriteOutcome(out, outcome);
  }

  const InProgressTarget& progress = checkpoint.in_progress;
  WriteU8(out, progress.active ? 1 : 0);
  if (progress.active) {
    WriteU64(out, progress.target_index);
    WriteU64(out, progress.episodes_done);
    WriteRngState(out, progress.episode_rng);
    WriteU64(out, progress.env.lifetime_queries);
    WriteU64(out, progress.env.episodes_begun);
    WriteU64(out, progress.env.proxy_reward_fallbacks);
    WriteRngState(out, progress.env.refit_rng);
    WriteString(out, progress.strategy_blob);
  }
  return out.str();
}

bool DeserializePayload(const std::string& payload,
                        CampaignCheckpoint* checkpoint) {
  std::istringstream in(payload, std::ios::binary);
  if (!ReadString(in, &checkpoint->fingerprint.method)) return false;
  std::uint64_t seed = 0, episodes = 0, num_targets = 0, env_budget = 0;
  if (!ReadU64(in, &seed) || !ReadU64(in, &episodes) ||
      !ReadU64(in, &num_targets) || !ReadU64(in, &env_budget)) {
    return false;
  }
  checkpoint->fingerprint.seed = seed;
  checkpoint->fingerprint.episodes = static_cast<std::size_t>(episodes);
  checkpoint->fingerprint.num_targets =
      static_cast<std::size_t>(num_targets);
  checkpoint->fingerprint.env_budget = static_cast<std::size_t>(env_budget);

  std::uint64_t completed = 0;
  if (!ReadU64(in, &completed)) return false;
  if (completed > checkpoint->fingerprint.num_targets) return false;
  checkpoint->completed.assign(static_cast<std::size_t>(completed),
                               TargetOutcomeState{});
  for (TargetOutcomeState& outcome : checkpoint->completed) {
    if (!ReadOutcome(in, &outcome)) return false;
  }

  std::uint8_t active = 0;
  if (!ReadU8(in, &active)) return false;
  InProgressTarget& progress = checkpoint->in_progress;
  progress = InProgressTarget{};
  progress.active = active != 0;
  if (progress.active) {
    std::uint64_t target_index = 0, episodes_done = 0;
    std::uint64_t lifetime_queries = 0, episodes_begun = 0;
    std::uint64_t proxy_reward_fallbacks = 0;
    if (!ReadU64(in, &target_index) || !ReadU64(in, &episodes_done) ||
        !ReadRngState(in, &progress.episode_rng) ||
        !ReadU64(in, &lifetime_queries) || !ReadU64(in, &episodes_begun) ||
        !ReadU64(in, &proxy_reward_fallbacks) ||
        !ReadRngState(in, &progress.env.refit_rng) ||
        !ReadString(in, &progress.strategy_blob)) {
      return false;
    }
    progress.target_index = static_cast<std::size_t>(target_index);
    progress.episodes_done = static_cast<std::size_t>(episodes_done);
    progress.env.lifetime_queries =
        static_cast<std::size_t>(lifetime_queries);
    progress.env.episodes_begun = static_cast<std::size_t>(episodes_begun);
    progress.env.proxy_reward_fallbacks =
        static_cast<std::size_t>(proxy_reward_fallbacks);
  }
  return true;
}

/// Reads and fully validates one checkpoint file. Returns false on any
/// defect: unreadable, truncated header, wrong magic/version, payload
/// shorter than declared, CRC mismatch, undecodable payload, or a
/// fingerprint that does not match `expected`.
bool LoadOneFile(const std::string& path,
                 const CampaignFingerprint& expected,
                 CampaignCheckpoint* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t magic = 0, version = 0, crc = 0;
  std::uint64_t payload_size = 0;
  if (!ReadU32(in, &magic) || magic != kCheckpointMagic) return false;
  if (!ReadU32(in, &version) || version != kCheckpointVersion) return false;
  if (!ReadU64(in, &payload_size)) return false;
  if (!ReadU32(in, &crc)) return false;
  if (payload_size > (1ULL << 36)) return false;  // implausible size
  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (!in) return false;  // torn write: payload shorter than declared
  if (util::Crc32(payload) != crc) return false;
  CampaignCheckpoint decoded;
  if (!DeserializePayload(payload, &decoded)) return false;
  if (!decoded.fingerprint.Matches(expected)) return false;
  *out = std::move(decoded);
  return true;
}

}  // namespace

std::string CheckpointPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "campaign.ckpt").string();
}

std::string CheckpointFallbackPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "campaign.ckpt.prev").string();
}

bool SaveCampaignCheckpoint(const CampaignCheckpoint& checkpoint,
                            const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort

  const std::string payload = SerializePayload(checkpoint);
  const std::string path = CheckpointPath(dir);
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    WriteU32(out, kCheckpointMagic);
    WriteU32(out, kCheckpointVersion);
    WriteU64(out, payload.size());
    WriteU32(out, util::Crc32(payload));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    if (!out) return false;
    out.flush();
    if (!out) return false;
  }
  // Rotate: the current checkpoint becomes the fallback, then the temp
  // file lands as the new current. Both renames are atomic within a
  // filesystem, so a crash leaves either (old, old-prev) or (new, old) —
  // never a half-written primary.
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, CheckpointFallbackPath(dir), ec);
    if (ec) return false;
  }
  std::filesystem::rename(tmp_path, path, ec);
  return !ec;
}

CheckpointSource LoadCampaignCheckpoint(const std::string& dir,
                                        const CampaignFingerprint& expected,
                                        CampaignCheckpoint* out) {
  if (LoadOneFile(CheckpointPath(dir), expected, out)) {
    return CheckpointSource::kPrimary;
  }
  if (LoadOneFile(CheckpointFallbackPath(dir), expected, out)) {
    CA_LOG(Warning) << "checkpoint: primary " << CheckpointPath(dir)
                    << " invalid or missing; resumed from fallback";
    return CheckpointSource::kFallback;
  }
  return CheckpointSource::kNone;
}

}  // namespace copyattack::core
