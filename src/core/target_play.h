#ifndef COPYATTACK_CORE_TARGET_PLAY_H_
#define COPYATTACK_CORE_TARGET_PLAY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/runner.h"
#include "data/cross_domain.h"
#include "data/dataset.h"

namespace copyattack::core {

/// Crash-safety and abort hooks threaded through `PlayTargetItem`. All
/// members are optional; the zero state plays the item straight through.
struct TargetPlayHooks {
  /// Episodes between mid-target progress reports (0 = none). A report is
  /// only produced when the strategy's learned state serializes.
  std::size_t every_episodes = 0;
  /// Receives each mid-target progress snapshot (the caller persists it).
  std::function<void(const InProgressTarget&)> on_progress;
  /// Recorded as `InProgressTarget::target_index` in progress reports —
  /// the caller's position within whatever target sequence it owns (the
  /// campaign list, or one shard of it).
  std::size_t progress_target_index = 0;
  /// Mid-target resume state; restored when non-null and active.
  const InProgressTarget* resume = nullptr;
  /// Called after every episode; returning true aborts the item (the
  /// returned outcome is invalid then). The `abort_after_episodes` crash
  /// hook's episode counting lives behind this.
  std::function<bool()> should_abort;
};

/// Outcome of `PlayTargetItem`.
struct TargetPlayResult {
  TargetOutcomeState outcome;  ///< valid only when `!aborted`
  bool aborted = false;
};

/// Plays every episode of one target item — fresh model clone, fresh
/// strategy, fresh environment, final promotion metrics — exactly the way
/// every campaign runner does it. `global_index` is the item's position
/// in the FULL campaign target list; it (never any shard-local position)
/// derives the per-item seed `config.seed + 1000003 * global_index`,
/// which is what makes outcomes independent of how items are distributed
/// over threads or shards. `method_name`, when non-null, receives the
/// strategy's reported name.
TargetPlayResult PlayTargetItem(const data::CrossDomainDataset& dataset,
                                const data::Dataset& target_train,
                                const ModelFactory& model_factory,
                                const StrategyFactory& strategy_factory,
                                data::ItemId item, std::size_t global_index,
                                const CampaignConfig& config,
                                const TargetPlayHooks& hooks,
                                std::string* method_name);

/// Averages per-item outcomes into the campaign aggregate (one Table-2
/// row). Only the aggregate fields are touched; bookkeeping fields
/// (checkpoint saves, wall time, ...) are the caller's.
void MergeOutcomes(const std::vector<TargetOutcomeState>& outcomes,
                   const std::vector<std::size_t>& ks,
                   CampaignResult* result);

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_TARGET_PLAY_H_
