#include "core/selection_policy.h"

#include <limits>

#include "math/sampling.h"
#include "math/vector_ops.h"
#include "nn/optimizer.h"
#include "nn/reinforce.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::core {
namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

}  // namespace

HierarchicalSelectionPolicy::HierarchicalSelectionPolicy(
    const cluster::HierarchicalTree* tree,
    const math::Matrix* user_embeddings, const math::Matrix* item_embeddings,
    const Config& config, util::Rng& rng)
    : tree_(tree),
      user_embeddings_(user_embeddings),
      item_embeddings_(item_embeddings),
      config_(config) {
  CA_CHECK(tree != nullptr);
  CA_CHECK(user_embeddings != nullptr);
  CA_CHECK(item_embeddings != nullptr);
  CA_CHECK_EQ(user_embeddings->rows(), tree->num_leaves());

  const std::size_t embed_dim = item_embeddings->cols();
  state_dim_ = embed_dim + config.rnn_hidden_dim;
  if (config.encoder == SequenceEncoderType::kGru) {
    gru_ = std::make_unique<nn::GruEncoder>(
        "selection/gru", user_embeddings->cols(), config.rnn_hidden_dim,
        rng, config.init_stddev);
  } else {
    rnn_ = std::make_unique<nn::RnnEncoder>(
        "selection/rnn", user_embeddings->cols(), config.rnn_hidden_dim,
        rng, config.init_stddev);
  }

  // One policy MLP per internal node, output arity = its child count.
  node_to_mlp_.assign(tree->num_nodes(), kNpos);
  for (std::size_t id = 0; id < tree->num_nodes(); ++id) {
    const auto& node = tree->node(id);
    if (node.children.empty()) continue;
    node_to_mlp_[id] = mlps_.size();
    mlps_.push_back(std::make_unique<nn::Mlp>(
        "selection/node" + std::to_string(id),
        std::vector<std::size_t>{state_dim_, config.mlp_hidden_dim,
                                 node.children.size()},
        rng, nn::Activation::kRelu, config.init_stddev));
  }
}

void HierarchicalSelectionPolicy::SetTargetItem(
    data::ItemId item, std::vector<bool> static_mask) {
  CA_CHECK_EQ(static_mask.size(), tree_->num_nodes());
  target_item_ = item;
  static_mask_ = std::move(static_mask);
  ResetEpisodeMask();
}

void HierarchicalSelectionPolicy::ResetEpisodeMask() {
  mask_ = static_mask_;
}

void HierarchicalSelectionPolicy::MarkUserSelected(data::UserId user) {
  std::size_t node = tree_->LeafOfUser(user);
  CA_CHECK_NE(node, cluster::kNoNode);
  mask_[node] = false;
  // Propagate up while a node's children are all masked.
  for (std::size_t parent = tree_->node(node).parent;
       parent != cluster::kNoNode; parent = tree_->node(parent).parent) {
    bool any = false;
    for (const std::size_t child : tree_->node(parent).children) {
      if (mask_[child]) {
        any = true;
        break;
      }
    }
    if (any) break;
    mask_[parent] = false;
  }
}

bool HierarchicalSelectionPolicy::AnyAvailable() const {
  return !mask_.empty() && mask_[tree_->root()];
}

std::size_t HierarchicalSelectionPolicy::AvailableCount() const {
  std::size_t count = 0;
  for (const std::size_t leaf : tree_->leaves()) {
    if (mask_[leaf]) ++count;
  }
  return count;
}

std::vector<std::vector<float>>
HierarchicalSelectionPolicy::SelectedEmbeddings(
    const std::vector<data::UserId>& selected) const {
  std::vector<std::vector<float>> sequence;
  sequence.reserve(selected.size());
  const std::size_t dim = user_embeddings_->cols();
  for (const data::UserId user : selected) {
    const float* row = user_embeddings_->Row(user);
    sequence.emplace_back(row, row + dim);
  }
  return sequence;
}

HierarchicalSelectionPolicy::EncoderRun
HierarchicalSelectionPolicy::RunEncoder(
    const std::vector<data::UserId>& selected) const {
  EncoderRun run;
  const auto sequence = SelectedEmbeddings(selected);
  if (gru_ != nullptr) {
    run.hidden = gru_->Forward(sequence, &run.gru_ctx);
  } else {
    run.hidden = rnn_->Forward(sequence, &run.rnn_ctx);
  }
  return run;
}

void HierarchicalSelectionPolicy::BackwardEncoder(
    const EncoderRun& run, const std::vector<float>& dhidden) {
  if (gru_ != nullptr) {
    gru_->Backward(run.gru_ctx, dhidden);
  } else {
    rnn_->Backward(run.rnn_ctx, dhidden);
  }
}

nn::ParameterList HierarchicalSelectionPolicy::EncoderParameters() {
  return gru_ != nullptr ? gru_->Parameters() : rnn_->Parameters();
}

std::vector<float> HierarchicalSelectionPolicy::StateVector(
    const std::vector<data::UserId>& selected, EncoderRun* run) const {
  CA_CHECK_NE(target_item_, data::kNoItem);
  const std::size_t embed_dim = item_embeddings_->cols();
  std::vector<float> state;
  state.reserve(state_dim_);
  const float* q = item_embeddings_->Row(target_item_);
  state.insert(state.end(), q, q + embed_dim);
  *run = RunEncoder(selected);
  state.insert(state.end(), run->hidden.begin(), run->hidden.end());
  return state;
}

data::UserId HierarchicalSelectionPolicy::SampleUser(
    const std::vector<data::UserId>& selected_so_far, util::Rng& rng,
    SelectionStepRecord* record, bool greedy) {
  CA_CHECK(record != nullptr);
  CA_CHECK(AnyAvailable()) << "no selectable user under the current mask";
  record->selected_prefix = selected_so_far;
  record->path.clear();

  EncoderRun run;
  const std::vector<float> state = StateVector(selected_so_far, &run);

  OBS_SPAN("selection.sample_user");
  OBS_COUNTER_INC("selection.samples");
  std::size_t pruned_children = 0;
  std::size_t node = tree_->root();
  while (!tree_->IsLeaf(node)) {
    const auto& children = tree_->node(node).children;
    std::vector<bool> child_mask(children.size());
    for (std::size_t slot = 0; slot < children.size(); ++slot) {
      child_mask[slot] = mask_[children[slot]];
      if (!child_mask[slot]) ++pruned_children;
    }

    nn::MlpContext ctx;
    std::vector<float> logits =
        mlps_[node_to_mlp_[node]]->Forward(state, &ctx);
    math::MaskedSoftmaxInPlace(logits, child_mask);
    const std::size_t action = greedy ? math::ArgMax(logits)
                                      : math::SampleCategorical(logits, rng);
    CA_CHECK(child_mask[action]);

    record->path.push_back({node, action, std::move(child_mask)});
    node = children[action];
  }
  record->chosen_user =
      static_cast<data::UserId>(tree_->node(node).leaf_user);
  // Walk cost telemetry: tree depth actually traversed plus how many child
  // slots the masking mechanism pruned from the walk's softmaxes.
  OBS_HIST_OBSERVE("selection.walk_depth", record->path.size());
  OBS_COUNTER_ADD("selection.mask_pruned_children", pruned_children);
  return record->chosen_user;
}

void HierarchicalSelectionPolicy::AccumulateGradients(
    const SelectionStepRecord& record, double advantage) {
  if (record.path.empty()) return;

  EncoderRun run;
  const std::vector<float> state =
      StateVector(record.selected_prefix, &run);
  const std::size_t embed_dim = item_embeddings_->cols();

  std::vector<float> dhidden(config_.rnn_hidden_dim, 0.0f);
  for (const auto& decision : record.path) {
    const std::size_t mlp_index = node_to_mlp_[decision.node_id];
    CA_CHECK_NE(mlp_index, kNpos);
    nn::Mlp& mlp = *mlps_[mlp_index];

    nn::MlpContext ctx;
    std::vector<float> probs = mlp.Forward(state, &ctx);
    math::MaskedSoftmaxInPlace(probs, decision.child_mask);
    std::vector<float> dlogits = nn::PolicyGradientLogits(
        probs, decision.action, advantage, decision.child_mask);
    nn::AddEntropyBonusGrad(probs, config_.entropy_beta, decision.child_mask,
                            dlogits);

    std::vector<float> dstate;
    mlp.Backward(ctx, dlogits, &dstate);
    touched_mlps_.insert(mlp_index);
    // The q_{v*} half of the state is a frozen pre-trained embedding; only
    // the RNN half receives gradient.
    for (std::size_t h = 0; h < config_.rnn_hidden_dim; ++h) {
      dhidden[h] += dstate[embed_dim + h];
    }
  }
  BackwardEncoder(run, dhidden);
}

void HierarchicalSelectionPolicy::ApplyUpdates(float learning_rate,
                                               float clip_norm) {
  nn::ParameterList params = EncoderParameters();
  for (const std::size_t mlp_index : touched_mlps_) {
    nn::AppendParameters(params, mlps_[mlp_index]->Parameters());
  }
  touched_mlps_.clear();
  nn::Sgd optimizer(learning_rate, clip_norm);
  optimizer.Step(params);
}

nn::ParameterList HierarchicalSelectionPolicy::AllParameters() {
  nn::ParameterList params = EncoderParameters();
  for (auto& mlp : mlps_) {
    nn::AppendParameters(params, mlp->Parameters());
  }
  return params;
}

std::size_t HierarchicalSelectionPolicy::TotalParameterCount() {
  std::size_t count = 0;
  for (const auto& mlp : mlps_) {
    for (const nn::Parameter* p : mlp->Parameters()) {
      count += p->value.size();
    }
  }
  for (const nn::Parameter* p : EncoderParameters()) {
    count += p->value.size();
  }
  return count;
}

}  // namespace copyattack::core
