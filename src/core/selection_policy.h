#ifndef COPYATTACK_CORE_SELECTION_POLICY_H_
#define COPYATTACK_CORE_SELECTION_POLICY_H_

#include <cstddef>
#include <memory>
#include <set>
#include <vector>

#include "cluster/hierarchical_tree.h"
#include "data/types.h"
#include "math/matrix.h"
#include "nn/gru.h"
#include "nn/mlp.h"
#include "nn/rnn.h"
#include "util/rng.h"

namespace copyattack::core {

/// Record of one user-selection decision: everything needed to replay the
/// forward pass at update time (parameters only change at episode
/// boundaries, so the replayed activations equal the originals).
struct SelectionStepRecord {
  /// Users already selected when this decision was made (RNN input).
  std::vector<data::UserId> selected_prefix;

  struct NodeDecision {
    std::size_t node_id = 0;
    std::size_t action = 0;          ///< chosen child slot
    std::vector<bool> child_mask;    ///< mask over child slots at play time
  };
  /// Root-to-leaf decisions, in order.
  std::vector<NodeDecision> path;

  data::UserId chosen_user = data::kNoUser;
};

/// Which recurrent encoder summarizes the selected-user history.
enum class SequenceEncoderType {
  kVanillaRnn,  ///< the paper's plain RNN
  kGru,         ///< gated variant; helps on longer selection histories
};

/// Hierarchical-structure policy gradient over the balanced clustering
/// tree (paper §4.3.3): every internal node hosts an MLP that maps the
/// state [q_{v*} ⊕ RNN(selected users)] to a distribution over its
/// children; selecting a source user is a root-to-leaf walk sampling one
/// child per node under the masking mechanism (§4.3.2). The per-decision
/// cost is O(branching · depth) instead of O(#users) for a flat policy.
class HierarchicalSelectionPolicy {
 public:
  struct Config {
    std::size_t mlp_hidden_dim = 16;
    std::size_t rnn_hidden_dim = 8;
    float init_stddev = 0.1f;
    double entropy_beta = 0.01;
    SequenceEncoderType encoder = SequenceEncoderType::kVanillaRnn;
  };

  /// `tree`, `user_embeddings` (p^B, one row per source user) and
  /// `item_embeddings` (q^B) are borrowed and must outlive the policy.
  /// The embeddings are the frozen pre-trained MF representations.
  HierarchicalSelectionPolicy(const cluster::HierarchicalTree* tree,
                              const math::Matrix* user_embeddings,
                              const math::Matrix* item_embeddings,
                              const Config& config, util::Rng& rng);

  /// Installs the target item and its *static* node mask (from
  /// `HierarchicalTree::ComputeMask`); resets the dynamic exclusions.
  void SetTargetItem(data::ItemId item, std::vector<bool> static_mask);

  /// Re-arms the dynamic mask to the static one (new episode).
  void ResetEpisodeMask();

  /// Dynamically masks `user`'s leaf (e.g. it was just copied) and
  /// propagates the mask up through fully-masked ancestors.
  void MarkUserSelected(data::UserId user);

  /// True while at least one leaf is selectable.
  bool AnyAvailable() const;

  /// Number of currently selectable leaves.
  std::size_t AvailableCount() const;

  /// Samples one source user by walking the tree; fills `record` for the
  /// later policy update. Requires `AnyAvailable()`. With `greedy` the
  /// walk takes the argmax child at every node (evaluation mode).
  data::UserId SampleUser(const std::vector<data::UserId>& selected_so_far,
                          util::Rng& rng, SelectionStepRecord* record,
                          bool greedy = false);

  /// Accumulates REINFORCE gradients for a recorded decision.
  void AccumulateGradients(const SelectionStepRecord& record,
                           double advantage);

  /// Applies one SGD step to every module touched since the last call
  /// (visited node MLPs + the RNN encoder) and clears the gradients.
  void ApplyUpdates(float learning_rate, float clip_norm);

  /// Total number of learnable parameters across all node policies.
  std::size_t TotalParameterCount();

  /// Every learnable parameter (all node MLPs plus the encoder), for
  /// checkpointing.
  nn::ParameterList AllParameters();

  std::size_t state_dim() const { return state_dim_; }

 private:
  /// One encoder forward pass: contexts for either encoder type plus the
  /// resulting hidden state.
  struct EncoderRun {
    nn::RnnContext rnn_ctx;
    nn::GruContext gru_ctx;
    std::vector<float> hidden;
  };

  /// Encodes the selected-user history with the configured encoder.
  EncoderRun RunEncoder(const std::vector<data::UserId>& selected) const;

  /// Backpropagates dL/dh through the configured encoder.
  void BackwardEncoder(const EncoderRun& run,
                       const std::vector<float>& dhidden);

  /// Learnable parameters of the configured encoder.
  nn::ParameterList EncoderParameters();

  /// Builds the state vector [q_{v*} ⊕ encoder(selected)]; `run` receives
  /// the encoder activations for a later backward pass.
  std::vector<float> StateVector(
      const std::vector<data::UserId>& selected, EncoderRun* run) const;

  /// Embedding sequence of the selected users (encoder input).
  std::vector<std::vector<float>> SelectedEmbeddings(
      const std::vector<data::UserId>& selected) const;

  const cluster::HierarchicalTree* tree_;
  const math::Matrix* user_embeddings_;
  const math::Matrix* item_embeddings_;
  Config config_;
  std::size_t state_dim_;

  /// node_to_mlp_[node] is the MLP index for an internal node, or npos.
  std::vector<std::size_t> node_to_mlp_;
  std::vector<std::unique_ptr<nn::Mlp>> mlps_;
  std::unique_ptr<nn::RnnEncoder> rnn_;  // exactly one encoder is non-null
  std::unique_ptr<nn::GruEncoder> gru_;

  data::ItemId target_item_ = data::kNoItem;
  std::vector<bool> static_mask_;
  std::vector<bool> mask_;

  std::set<std::size_t> touched_mlps_;
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_SELECTION_POLICY_H_
