#ifndef COPYATTACK_CORE_BASELINES_H_
#define COPYATTACK_CORE_BASELINES_H_

#include <optional>
#include <string>
#include <vector>

#include "core/attack_strategy.h"
#include "data/cross_domain.h"

namespace copyattack::core {

/// RandomAttack (paper §5.1.4): copies uniformly random source-domain user
/// profiles, unmodified. No learning, no target-item constraint.
class RandomAttack final : public AttackStrategy {
 public:
  explicit RandomAttack(const data::CrossDomainDataset& dataset)
      : dataset_(dataset) {}

  std::string name() const override { return "RandomAttack"; }
  void BeginTargetItem(data::ItemId target_item) override;
  double RunEpisode(AttackEnvironment& env, util::Rng& rng) override;

 private:
  const data::CrossDomainDataset& dataset_;
};

/// TargetAttack-w (paper §5.1.4): copies random source users whose profile
/// *contains the target item*, optionally crafting each profile to keep
/// `keep_fraction` of its items around the target (TargetAttack40/70/100
/// use 0.4 / 0.7 / 1.0).
class TargetAttack final : public AttackStrategy {
 public:
  TargetAttack(const data::CrossDomainDataset& dataset, double keep_fraction);

  std::string name() const override;
  void BeginTargetItem(data::ItemId target_item) override;
  double RunEpisode(AttackEnvironment& env, util::Rng& rng) override;

 private:
  const data::CrossDomainDataset& dataset_;
  double keep_fraction_;
  data::ItemId target_item_ = data::kNoItem;
  std::vector<data::UserId> holders_;
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_BASELINES_H_
