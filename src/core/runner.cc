#include "core/runner.h"

#include <mutex>
#include <sstream>

#include "obs/obs.h"
#include "obs/time.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace copyattack::core {

SourceArtifacts PrepareSourceArtifacts(
    const data::CrossDomainDataset& dataset,
    const SourceArtifactOptions& options) {
  util::Rng rng(options.seed);
  rec::MfConfig mf_config;
  mf_config.embedding_dim = options.embedding_dim;
  rec::MatrixFactorization mf(mf_config);
  mf.Fit(dataset.source, options.mf_epochs, rng);

  util::Rng tree_rng(options.seed ^ 0x1234567ULL);
  cluster::HierarchicalTree tree = cluster::HierarchicalTree::BuildWithDepth(
      mf.user_embeddings(), options.tree_depth, tree_rng);
  CA_LOG(Info) << "source artifacts: " << dataset.source.num_users()
               << " users, tree depth " << tree.depth() << ", branching "
               << tree.branching() << ", " << tree.num_internal_nodes()
               << " policy nodes";
  return SourceArtifacts{std::move(mf), std::move(tree)};
}

namespace {

/// Per-target-item outcome, merged into the campaign aggregate.
struct ItemOutcome {
  rec::MetricsByK metrics;
  double items_per_profile = 0.0;
  double profiles_injected = 0.0;
  double query_rounds = 0.0;
  double final_reward = 0.0;
};

void MergeOutcomes(const std::vector<ItemOutcome>& outcomes,
                   const std::vector<std::size_t>& ks,
                   CampaignResult* result) {
  result->num_target_items = outcomes.size();
  for (const std::size_t k : ks) result->metrics[k] = rec::TopKMetrics();
  if (outcomes.empty()) return;
  for (const ItemOutcome& outcome : outcomes) {
    for (const std::size_t k : ks) {
      const auto it = outcome.metrics.find(k);
      if (it != outcome.metrics.end()) {
        result->metrics[k].hr += it->second.hr;
        result->metrics[k].ndcg += it->second.ndcg;
        ++result->metrics[k].count;
      }
    }
    result->avg_items_per_profile += outcome.items_per_profile;
    result->avg_profiles_injected += outcome.profiles_injected;
    result->avg_query_rounds += outcome.query_rounds;
    result->avg_final_reward += outcome.final_reward;
  }
  const double n = static_cast<double>(outcomes.size());
  for (const std::size_t k : ks) {
    if (result->metrics[k].count > 0) {
      result->metrics[k].hr /=
          static_cast<double>(result->metrics[k].count);
      result->metrics[k].ndcg /=
          static_cast<double>(result->metrics[k].count);
    }
  }
  result->avg_items_per_profile /= n;
  result->avg_profiles_injected /= n;
  result->avg_query_rounds /= n;
  result->avg_final_reward /= n;
}

}  // namespace

CampaignResult EvaluateWithoutAttack(
    const data::CrossDomainDataset& dataset,
    const data::Dataset& target_train, const ModelFactory& model_factory,
    const std::vector<data::ItemId>& targets,
    const CampaignConfig& config) {
  OBS_SPAN("campaign.baseline_eval");
  obs::Stopwatch watch;
  CampaignResult result;
  result.method = "WithoutAttack";

  std::vector<ItemOutcome> outcomes(targets.size());
  util::ThreadPool::ParallelFor(
      targets.size(), config.num_threads, [&](std::size_t index) {
        const data::ItemId item = targets[index];
        std::unique_ptr<rec::Recommender> model = model_factory();
        EnvConfig env_config = config.env;
        env_config.seed = config.seed + 1000003ULL * index;
        AttackEnvironment env(dataset, target_train, model.get(),
                              env_config);
        env.Reset(item);  // pretend users added, no injections
        ItemOutcome outcome;
        outcome.metrics = env.EvaluateRealPromotion(
            config.eval_ks, config.eval_users, config.eval_negatives);
        // Each worker writes its own pre-sized slot; no lock needed.
        outcomes[index] = std::move(outcome);
      });

  MergeOutcomes(outcomes, config.eval_ks, &result);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

CampaignResult RunCampaign(const data::CrossDomainDataset& dataset,
                           const data::Dataset& target_train,
                           const ModelFactory& model_factory,
                           const StrategyFactory& strategy_factory,
                           const std::vector<data::ItemId>& targets,
                           const CampaignConfig& config) {
  CA_CHECK_GT(config.episodes, 0U);
  OBS_SPAN("campaign.run");
  OBS_COUNTER_INC("campaign.runs");
  obs::Stopwatch watch;
  CampaignResult result;

  std::vector<ItemOutcome> outcomes(targets.size());
  std::string method_name;
  std::once_flag method_name_once;

  util::ThreadPool::ParallelFor(
      targets.size(), config.num_threads, [&](std::size_t index) {
        OBS_SPAN("campaign.target_item");
        OBS_COUNTER_INC("campaign.target_items");
        const data::ItemId item = targets[index];
        const std::uint64_t item_seed = config.seed + 1000003ULL * index;
        std::unique_ptr<rec::Recommender> model = model_factory();
        std::unique_ptr<AttackStrategy> strategy =
            strategy_factory(item_seed);

        EnvConfig env_config = config.env;
        env_config.seed = item_seed;
        AttackEnvironment env(dataset, target_train, model.get(),
                              env_config);

        strategy->BeginTargetItem(item);
        util::Rng episode_rng(item_seed ^ 0xBEEFCAFEULL);
        double final_reward = 0.0;
        for (std::size_t episode = 0; episode < config.episodes;
             ++episode) {
          // The last episode is played greedily (evaluation mode); its
          // polluted state is what the promotion metrics measure.
          if (episode + 1 == config.episodes) {
            strategy->SetEvalMode(true);
          }
          env.Reset(item);
          final_reward = strategy->RunEpisode(env, episode_rng);
        }

        ItemOutcome outcome;
        outcome.final_reward = final_reward;
        const rec::BlackBoxRecommender& bb = env.black_box();
        outcome.profiles_injected =
            static_cast<double>(bb.injected_profiles());
        outcome.items_per_profile =
            bb.injected_profiles() > 0
                ? static_cast<double>(bb.injected_interactions()) /
                      static_cast<double>(bb.injected_profiles())
                : 0.0;
        outcome.query_rounds = static_cast<double>(env.lifetime_queries());
        outcome.metrics = env.EvaluateRealPromotion(
            config.eval_ks, config.eval_users, config.eval_negatives);

        // Distinct slots per worker; only the shared method name needs a
        // one-time guard (every strategy instance reports the same name).
        outcomes[index] = std::move(outcome);
        std::call_once(method_name_once,
                       [&] { method_name = strategy->name(); });
      });

  result.method = method_name;
  MergeOutcomes(outcomes, config.eval_ks, &result);
  result.wall_seconds = watch.ElapsedSeconds();
  CA_LOG(Info) << result.method << ": "
               << util::FormatDouble(result.wall_seconds, 1) << "s over "
               << targets.size() << " target items";
  return result;
}

std::string CampaignRowHeader() {
  std::ostringstream out;
  out << "Method              HR@20   HR@10   HR@5    NDCG@20 NDCG@10 "
         "NDCG@5  Items/Prof  Wall(s)";
  return out.str();
}

std::string FormatCampaignRow(const CampaignResult& result) {
  std::ostringstream out;
  out << result.method;
  for (std::size_t i = result.method.size(); i < 20; ++i) out << ' ';
  const std::size_t ks[] = {20, 10, 5};
  for (const std::size_t k : ks) {
    const auto it = result.metrics.find(k);
    out << util::FormatDouble(it != result.metrics.end() ? it->second.hr
                                                         : 0.0,
                              4)
        << "  ";
  }
  for (const std::size_t k : ks) {
    const auto it = result.metrics.find(k);
    out << util::FormatDouble(it != result.metrics.end() ? it->second.ndcg
                                                         : 0.0,
                              4)
        << "  ";
  }
  out << util::FormatDouble(result.avg_items_per_profile, 1) << "        ";
  out << util::FormatDouble(result.wall_seconds, 1);
  return out.str();
}

}  // namespace copyattack::core
