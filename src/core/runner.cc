#include "core/runner.h"

#include <mutex>
#include <sstream>

#include "core/target_play.h"
#include "obs/obs.h"
#include "obs/time.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace copyattack::core {

SourceArtifacts PrepareSourceArtifacts(
    const data::CrossDomainDataset& dataset,
    const SourceArtifactOptions& options) {
  util::Rng rng(options.seed);
  rec::MfConfig mf_config;
  mf_config.embedding_dim = options.embedding_dim;
  rec::MatrixFactorization mf(mf_config);
  mf.Fit(dataset.source, options.mf_epochs, rng);

  util::Rng tree_rng(options.seed ^ 0x1234567ULL);
  cluster::HierarchicalTree tree = cluster::HierarchicalTree::BuildWithDepth(
      mf.user_embeddings(), options.tree_depth, tree_rng);
  CA_LOG(Info) << "source artifacts: " << dataset.source.num_users()
               << " users, tree depth " << tree.depth() << ", branching "
               << tree.branching() << ", " << tree.num_internal_nodes()
               << " policy nodes";
  return SourceArtifacts{std::move(mf), std::move(tree)};
}

namespace {

/// The crash-safe sequential campaign (checkpoint.dir set). Plays target
/// items in order, persisting a checkpoint after every completed target
/// and every `every_episodes` episodes within one; with `resume` it first
/// reloads the freshest valid checkpoint. Episode-for-episode it performs
/// exactly the operations of the parallel path with num_threads = 1, so
/// outcomes are bit-identical to an uncheckpointed single-threaded run.
CampaignResult RunCampaignCheckpointed(
    const data::CrossDomainDataset& dataset,
    const data::Dataset& target_train, const ModelFactory& model_factory,
    const StrategyFactory& strategy_factory,
    const std::vector<data::ItemId>& targets,
    const CampaignConfig& config) {
  CA_CHECK(!config.env.refit_on_query)
      << "checkpointed campaigns require refit_on_query = false: the "
         "refit target model's weights are not captured by the checkpoint";
  CA_CHECK_GT(config.checkpoint.every_episodes, 0U);
  OBS_SPAN("campaign.run_checkpointed");
  OBS_COUNTER_INC("campaign.runs");
  obs::Stopwatch watch;
  CampaignResult result;

  CampaignCheckpoint state;
  // The fingerprint needs the method name before any target runs; probe
  // a throwaway strategy for it (construction is cheap and stateless
  // across instances).
  state.fingerprint.method = strategy_factory(config.seed)->name();
  state.fingerprint.seed = config.seed;
  state.fingerprint.episodes = config.episodes;
  state.fingerprint.num_targets = targets.size();
  state.fingerprint.env_budget = config.env.budget;
  result.method = state.fingerprint.method;

  std::size_t start_index = 0;
  InProgressTarget resume_progress;
  if (config.checkpoint.resume) {
    CampaignCheckpoint loaded;
    const CheckpointSource source = LoadCampaignCheckpoint(
        config.checkpoint.dir, state.fingerprint, &loaded);
    if (source != CheckpointSource::kNone) {
      result.resumed_from = source;
      OBS_COUNTER_INC("campaign.resumes");
      state.completed = std::move(loaded.completed);
      start_index = state.completed.size();
      if (loaded.in_progress.active) {
        CA_CHECK_EQ(loaded.in_progress.target_index, start_index);
        resume_progress = loaded.in_progress;
      }
      CA_LOG(Info) << "campaign: resumed (" << start_index << "/"
                   << targets.size() << " targets done"
                   << (resume_progress.active
                           ? ", mid-target checkpoint present"
                           : "")
                   << ")";
    }
  }

  const auto save = [&] {
    if (SaveCampaignCheckpoint(state, config.checkpoint.dir)) {
      ++result.checkpoint_saves;
      OBS_COUNTER_INC("campaign.checkpoint_saves");
    } else {
      // A failed save must not kill the campaign it exists to protect;
      // log and keep going on the previous good checkpoint.
      CA_LOG(Warning) << "campaign: checkpoint save failed under "
                      << config.checkpoint.dir;
    }
  };

  std::size_t episodes_played = 0;
  for (std::size_t index = start_index; index < targets.size(); ++index) {
    TargetPlayHooks hooks;
    hooks.every_episodes = config.checkpoint.every_episodes;
    hooks.progress_target_index = index;
    hooks.on_progress = [&](const InProgressTarget& progress) {
      state.in_progress = progress;
      save();
    };
    if (resume_progress.active && index == start_index) {
      hooks.resume = &resume_progress;
    }
    hooks.should_abort = [&] {
      ++episodes_played;
      return config.checkpoint.abort_after_episodes > 0 &&
             episodes_played >= config.checkpoint.abort_after_episodes;
    };

    TargetPlayResult play =
        PlayTargetItem(dataset, target_train, model_factory,
                       strategy_factory, targets[index], index, config,
                       hooks, nullptr);
    if (play.aborted) {
      // Whatever checkpoint was last written is what a real restart
      // would find.
      result.aborted = true;
      MergeOutcomes(state.completed, config.eval_ks, &result);
      result.wall_seconds = watch.ElapsedSeconds();
      return result;
    }

    state.completed.push_back(std::move(play.outcome));
    state.in_progress = InProgressTarget{};
    resume_progress = InProgressTarget{};
    save();
  }

  MergeOutcomes(state.completed, config.eval_ks, &result);
  result.wall_seconds = watch.ElapsedSeconds();
  CA_LOG(Info) << result.method << " (checkpointed): "
               << util::FormatDouble(result.wall_seconds, 1) << "s over "
               << targets.size() << " target items, "
               << result.checkpoint_saves << " checkpoint saves";
  return result;
}

}  // namespace

CampaignResult EvaluateWithoutAttack(
    const data::CrossDomainDataset& dataset,
    const data::Dataset& target_train, const ModelFactory& model_factory,
    const std::vector<data::ItemId>& targets,
    const CampaignConfig& config) {
  OBS_SPAN("campaign.baseline_eval");
  obs::Stopwatch watch;
  CampaignResult result;
  result.method = "WithoutAttack";

  std::vector<TargetOutcomeState> outcomes(targets.size());
  util::ThreadPool::ParallelFor(
      targets.size(), config.num_threads, [&](std::size_t index) {
        const data::ItemId item = targets[index];
        std::unique_ptr<rec::Recommender> model = model_factory();
        EnvConfig env_config = config.env;
        env_config.seed = config.seed + 1000003ULL * index;
        AttackEnvironment env(dataset, target_train, model.get(),
                              env_config);
        env.Reset(item);  // pretend users added, no injections
        TargetOutcomeState outcome;
        outcome.metrics = env.EvaluateRealPromotion(
            config.eval_ks, config.eval_users, config.eval_negatives);
        // Each worker writes its own pre-sized slot; no lock needed.
        outcomes[index] = std::move(outcome);
      });

  MergeOutcomes(outcomes, config.eval_ks, &result);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

CampaignResult RunCampaign(const data::CrossDomainDataset& dataset,
                           const data::Dataset& target_train,
                           const ModelFactory& model_factory,
                           const StrategyFactory& strategy_factory,
                           const std::vector<data::ItemId>& targets,
                           const CampaignConfig& config) {
  CA_CHECK_GT(config.episodes, 0U);
  if (!config.checkpoint.dir.empty()) {
    // Crash-safe sequential path; the parallel fast path below stays
    // byte-for-byte untouched when checkpointing is off.
    return RunCampaignCheckpointed(dataset, target_train, model_factory,
                                   strategy_factory, targets, config);
  }
  OBS_SPAN("campaign.run");
  OBS_COUNTER_INC("campaign.runs");
  obs::Stopwatch watch;
  CampaignResult result;

  std::vector<TargetOutcomeState> outcomes(targets.size());
  std::string method_name;
  std::once_flag method_name_once;

  util::ThreadPool::ParallelFor(
      targets.size(), config.num_threads, [&](std::size_t index) {
        std::string name;
        TargetPlayResult play = PlayTargetItem(
            dataset, target_train, model_factory, strategy_factory,
            targets[index], index, config, TargetPlayHooks{}, &name);
        // Distinct slots per worker; only the shared method name needs a
        // one-time guard (every strategy instance reports the same name).
        outcomes[index] = std::move(play.outcome);
        std::call_once(method_name_once,
                       [&] { method_name = name; });
      });

  result.method = method_name;
  MergeOutcomes(outcomes, config.eval_ks, &result);
  result.wall_seconds = watch.ElapsedSeconds();
  CA_LOG(Info) << result.method << ": "
               << util::FormatDouble(result.wall_seconds, 1) << "s over "
               << targets.size() << " target items";
  return result;
}

std::string CampaignRowHeader() {
  std::ostringstream out;
  out << "Method              HR@20   HR@10   HR@5    NDCG@20 NDCG@10 "
         "NDCG@5  Items/Prof  Wall(s)";
  return out.str();
}

std::string FormatCampaignRow(const CampaignResult& result) {
  std::ostringstream out;
  out << result.method;
  // Long attack-server job labels (id:method) overflow the 20-column
  // budget; keep at least two spaces so the row stays parseable.
  for (std::size_t i = result.method.size(); i < 20; ++i) out << ' ';
  if (result.method.size() >= 20) out << "  ";
  const std::size_t ks[] = {20, 10, 5};
  for (const std::size_t k : ks) {
    const auto it = result.metrics.find(k);
    out << util::FormatDouble(it != result.metrics.end() ? it->second.hr
                                                         : 0.0,
                              4)
        << "  ";
  }
  for (const std::size_t k : ks) {
    const auto it = result.metrics.find(k);
    out << util::FormatDouble(it != result.metrics.end() ? it->second.ndcg
                                                         : 0.0,
                              4)
        << "  ";
  }
  out << util::FormatDouble(result.avg_items_per_profile, 1) << "        ";
  out << util::FormatDouble(result.wall_seconds, 1);
  return out.str();
}

}  // namespace copyattack::core
