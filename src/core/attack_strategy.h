#ifndef COPYATTACK_CORE_ATTACK_STRATEGY_H_
#define COPYATTACK_CORE_ATTACK_STRATEGY_H_

#include <iosfwd>
#include <string>

#include "core/environment.h"
#include "util/rng.h"

namespace copyattack::core {

/// Interface of an attacking method (CopyAttack, its ablations, and the
/// baselines of §5.1.4). One strategy instance attacks one target item;
/// learning methods keep their policy parameters across episodes.
class AttackStrategy {
 public:
  virtual ~AttackStrategy() = default;

  /// Method name as printed in Table 2.
  virtual std::string name() const = 0;

  /// Called once before the first episode on a target item (e.g. to build
  /// the masking bitmap). The environment has not been reset yet.
  virtual void BeginTargetItem(data::ItemId target_item) = 0;

  /// Plays one full episode on `env` (which the caller has `Reset`) and
  /// returns the final query reward (HR@k over pretend users). Learning
  /// strategies update their policies at the episode boundary.
  virtual double RunEpisode(AttackEnvironment& env, util::Rng& rng) = 0;

  /// Switches the strategy into (or out of) evaluation mode: learning
  /// strategies act greedily (argmax instead of sampling) and freeze their
  /// parameters. The campaign runner enables this for the final episode,
  /// whose polluted state is what gets measured. Default: no-op.
  virtual void SetEvalMode(bool eval_mode) { (void)eval_mode; }

  /// Serializes the strategy's cross-episode mutable state (policy
  /// parameters, reward baseline, ...) for campaign checkpointing
  /// (core/checkpoint.h). Restoring the blob into a freshly constructed
  /// strategy — after `BeginTargetItem` on the same item — must resume the
  /// exact learning trajectory. Stateless baselines keep the default
  /// no-op. Returns false on I/O failure.
  virtual bool SaveState(std::ostream& out) {
    (void)out;
    return true;
  }

  /// Restores what `SaveState` wrote. Returns false on I/O failure or an
  /// architecture mismatch.
  virtual bool LoadState(std::istream& in) {
    (void)in;
    return true;
  }
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_ATTACK_STRATEGY_H_
