#include "core/crafting.h"

#include <algorithm>

#include "util/check.h"

namespace copyattack::core {

std::size_t CraftWindowLength(std::size_t profile_len, double fraction) {
  CA_CHECK_GT(profile_len, 0U);
  CA_CHECK_GT(fraction, 0.0);
  const std::size_t length = static_cast<std::size_t>(
      static_cast<double>(profile_len) * fraction + 0.5);
  return std::min(profile_len, std::max<std::size_t>(1, length));
}

data::Profile ClipProfileAroundTarget(const data::Profile& profile,
                                      data::ItemId target_item,
                                      double fraction) {
  CA_CHECK(!profile.empty());
  const std::size_t n = profile.size();
  const std::size_t window = CraftWindowLength(n, fraction);

  // Position of the target item (middle of the profile if absent).
  std::size_t center = n / 2;
  for (std::size_t i = 0; i < n; ++i) {
    if (profile[i] == target_item) {
      center = i;
      break;
    }
  }

  // Symmetric window around `center`, shifted to stay within bounds.
  std::size_t begin = center >= (window - 1) / 2 ? center - (window - 1) / 2
                                                 : 0;
  if (begin + window > n) {
    begin = n - window;
  }
  return data::Profile(profile.begin() + begin,
                       profile.begin() + begin + window);
}

}  // namespace copyattack::core
