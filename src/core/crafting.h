#ifndef COPYATTACK_CORE_CRAFTING_H_
#define COPYATTACK_CORE_CRAFTING_H_

#include <array>
#include <cstddef>

#include "data/types.h"

namespace copyattack::core {

/// The discretized clip-ratio action space W of the crafting policy
/// (paper §4.4): keep 10%, 20%, ..., 100% of the raw profile.
inline constexpr std::array<double, 10> kCraftLevels = {
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

/// Number of crafting actions.
inline constexpr std::size_t kNumCraftLevels = kCraftLevels.size();

/// Clips `profile` to a window of about `fraction * profile.size()` items
/// centered on the first occurrence of `target_item`, preserving the
/// sequential order (paper §4.4's clipping operation — the window keeps the
/// forward and backward related items around the target). The result always
/// contains the target item and at least one item. If the target item is
/// not present, the window is centered on the middle of the profile.
data::Profile ClipProfileAroundTarget(const data::Profile& profile,
                                      data::ItemId target_item,
                                      double fraction);

/// Window length that `ClipProfileAroundTarget` keeps for a profile of
/// `profile_len` items at `fraction` (rounded to nearest, at least 1,
/// at most `profile_len`).
std::size_t CraftWindowLength(std::size_t profile_len, double fraction);

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_CRAFTING_H_
