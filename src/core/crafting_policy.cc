#include "core/crafting_policy.h"

#include "math/sampling.h"
#include "math/vector_ops.h"
#include "nn/optimizer.h"
#include "nn/reinforce.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::core {

CraftingPolicy::CraftingPolicy(const math::Matrix* user_embeddings,
                               const math::Matrix* item_embeddings,
                               const Config& config, util::Rng& rng)
    : user_embeddings_(user_embeddings),
      item_embeddings_(item_embeddings),
      config_(config) {
  CA_CHECK(user_embeddings != nullptr);
  CA_CHECK(item_embeddings != nullptr);
  const std::size_t state_dim =
      user_embeddings->cols() + item_embeddings->cols();
  mlp_ = std::make_unique<nn::Mlp>(
      "crafting/mlp",
      std::vector<std::size_t>{state_dim, config.mlp_hidden_dim,
                               kNumCraftLevels},
      rng, nn::Activation::kRelu, config.init_stddev);
}

std::vector<float> CraftingPolicy::StateVector(data::UserId user) const {
  CA_CHECK_NE(target_item_, data::kNoItem);
  CA_CHECK_LT(user, user_embeddings_->rows());
  std::vector<float> state;
  state.reserve(user_embeddings_->cols() + item_embeddings_->cols());
  const float* p = user_embeddings_->Row(user);
  state.insert(state.end(), p, p + user_embeddings_->cols());
  const float* q = item_embeddings_->Row(target_item_);
  state.insert(state.end(), q, q + item_embeddings_->cols());
  return state;
}

std::size_t CraftingPolicy::SampleLevel(data::UserId user, util::Rng& rng,
                                        CraftStepRecord* record,
                                        bool greedy) {
  CA_CHECK(record != nullptr);
  OBS_COUNTER_INC("crafting.samples");
  nn::MlpContext ctx;
  std::vector<float> probs = mlp_->Forward(StateVector(user), &ctx);
  math::SoftmaxInPlace(probs);
  const std::size_t action =
      greedy ? math::ArgMax(probs) : math::SampleCategorical(probs, rng);
  record->user = user;
  record->action = action;
  return action;
}

void CraftingPolicy::AccumulateGradients(const CraftStepRecord& record,
                                         double advantage) {
  CA_CHECK_NE(record.user, data::kNoUser);
  nn::MlpContext ctx;
  std::vector<float> probs = mlp_->Forward(StateVector(record.user), &ctx);
  math::SoftmaxInPlace(probs);
  std::vector<float> dlogits =
      nn::PolicyGradientLogits(probs, record.action, advantage);
  nn::AddEntropyBonusGrad(probs, config_.entropy_beta,
                          std::vector<bool>(probs.size(), true), dlogits);
  mlp_->Backward(ctx, dlogits, nullptr);
}

void CraftingPolicy::ApplyUpdates(float learning_rate, float clip_norm) {
  nn::Sgd optimizer(learning_rate, clip_norm);
  optimizer.Step(mlp_->Parameters());
}

}  // namespace copyattack::core
