#include "core/flat_policy.h"

#include <istream>
#include <ostream>

#include "core/crafting.h"
#include "math/sampling.h"
#include "math/vector_ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/check.h"

namespace copyattack::core {

FlatPolicyNetwork::FlatPolicyNetwork(const data::CrossDomainDataset* dataset,
                                     const math::Matrix* user_embeddings,
                                     const math::Matrix* item_embeddings,
                                     const Config& config,
                                     std::uint64_t seed)
    : dataset_(dataset),
      user_embeddings_(user_embeddings),
      item_embeddings_(item_embeddings),
      config_(config),
      baseline_(config.baseline_momentum) {
  CA_CHECK(dataset != nullptr);
  CA_CHECK(user_embeddings != nullptr);
  CA_CHECK(item_embeddings != nullptr);
  CA_CHECK_EQ(user_embeddings->rows(), dataset->source.num_users());

  config_.crafting.entropy_beta = config.entropy_beta;
  util::Rng init_rng(seed);
  const std::size_t state_dim =
      item_embeddings->cols() + config.rnn_hidden_dim;
  rnn_ = std::make_unique<nn::RnnEncoder>("flat/rnn",
                                          user_embeddings->cols(),
                                          config.rnn_hidden_dim, init_rng,
                                          config.init_stddev);
  mlp_ = std::make_unique<nn::Mlp>(
      "flat/mlp",
      std::vector<std::size_t>{state_dim, config.mlp_hidden_dim,
                               dataset->source.num_users()},
      init_rng, nn::Activation::kRelu, config.init_stddev);
  crafting_ = std::make_unique<CraftingPolicy>(
      user_embeddings, item_embeddings, config_.crafting, init_rng);
}

void FlatPolicyNetwork::BeginTargetItem(data::ItemId target_item) {
  target_item_ = target_item;
  baseline_ = nn::MovingBaseline(config_.baseline_momentum);
  static_user_mask_.assign(dataset_->source.num_users(), false);
  for (const data::UserId user : dataset_->SourceHolders(target_item)) {
    static_user_mask_[user] = true;
  }
  crafting_->SetTargetItem(target_item);
}

std::vector<float> FlatPolicyNetwork::StateVector(
    const std::vector<data::UserId>& selected,
    nn::RnnContext* rnn_ctx) const {
  std::vector<float> state;
  const std::size_t embed_dim = item_embeddings_->cols();
  state.reserve(embed_dim + config_.rnn_hidden_dim);
  const float* q = item_embeddings_->Row(target_item_);
  state.insert(state.end(), q, q + embed_dim);

  std::vector<std::vector<float>> sequence;
  sequence.reserve(selected.size());
  const std::size_t user_dim = user_embeddings_->cols();
  for (const data::UserId user : selected) {
    const float* row = user_embeddings_->Row(user);
    sequence.emplace_back(row, row + user_dim);
  }
  const std::vector<float> hidden = rnn_->Forward(sequence, rnn_ctx);
  state.insert(state.end(), hidden.begin(), hidden.end());
  return state;
}

double FlatPolicyNetwork::RunEpisode(AttackEnvironment& env,
                                     util::Rng& rng) {
  CA_CHECK_NE(target_item_, data::kNoItem);
  CA_CHECK_EQ(env.target_item(), target_item_);

  std::vector<bool> mask = static_user_mask_;
  std::vector<StepRecord> trajectory;
  std::vector<data::UserId> selected_order;
  double last_reward = 0.0;
  double previous_query_hr = 0.0;
  bool first_action = true;

  while (!env.done()) {
    bool any = false;
    for (std::size_t u = 0; u < mask.size() && !any; ++u) any = mask[u];
    if (!any) break;

    StepRecord step;
    data::UserId user = data::kNoUser;
    if (first_action) {
      // Uniform seed action over the masked candidates, as in CopyAttack.
      std::vector<data::UserId> pool;
      for (std::size_t u = 0; u < mask.size(); ++u) {
        if (mask[u]) pool.push_back(static_cast<data::UserId>(u));
      }
      user = pool[rng.UniformUint64(pool.size())];
      first_action = false;
    } else {
      nn::RnnContext rnn_ctx;
      nn::MlpContext mlp_ctx;
      std::vector<float> probs =
          mlp_->Forward(StateVector(selected_order, &rnn_ctx), &mlp_ctx);
      math::MaskedSoftmaxInPlace(probs, mask);
      user = static_cast<data::UserId>(
          eval_mode_ ? math::ArgMax(probs)
                     : math::SampleCategorical(probs, rng));
      step.has_selection = true;
      step.selected_prefix = selected_order;
      step.action = user;
      step.user_mask = mask;
    }

    CraftStepRecord craft_record;
    const std::size_t level =
        crafting_->SampleLevel(user, rng, &craft_record, eval_mode_);
    step.crafting = craft_record;
    data::Profile profile = ClipProfileAroundTarget(
        dataset_->source.UserProfile(user), target_item_,
        kCraftLevels[level]);

    if (config_.exclude_selected) mask[user] = false;
    selected_order.push_back(user);

    const auto result = env.Step(std::move(profile));
    if (result.queried) {
      last_reward = result.reward;
      // Delta shaping, matching CopyAttack's default (see RewardShaping).
      step.reward = result.reward - previous_query_hr;
      previous_query_hr = result.reward;
    }
    trajectory.push_back(std::move(step));
  }

  if (!eval_mode_) {
    UpdatePolicies(trajectory);
  }
  return last_reward;
}

void FlatPolicyNetwork::UpdatePolicies(
    const std::vector<StepRecord>& trajectory) {
  if (trajectory.empty()) return;
  std::vector<double> rewards;
  rewards.reserve(trajectory.size());
  for (const StepRecord& step : trajectory) rewards.push_back(step.reward);
  const std::vector<double> returns =
      nn::DiscountedReturns(rewards, config_.gamma);

  const double baseline_value = baseline_.value();
  baseline_.Update(returns.front());

  const std::size_t embed_dim = item_embeddings_->cols();
  for (std::size_t t = 0; t < trajectory.size(); ++t) {
    const double advantage = returns[t] - baseline_value;
    if (advantage == 0.0) continue;  // lint:allow(float-eq): zero-advantage skip
    const StepRecord& step = trajectory[t];
    if (step.has_selection) {
      nn::RnnContext rnn_ctx;
      nn::MlpContext mlp_ctx;
      std::vector<float> probs =
          mlp_->Forward(StateVector(step.selected_prefix, &rnn_ctx),
                        &mlp_ctx);
      math::MaskedSoftmaxInPlace(probs, step.user_mask);
      std::vector<float> dlogits = nn::PolicyGradientLogits(
          probs, step.action, advantage, step.user_mask);
      nn::AddEntropyBonusGrad(probs, config_.entropy_beta, step.user_mask,
                              dlogits);
      std::vector<float> dstate;
      mlp_->Backward(mlp_ctx, dlogits, &dstate);
      std::vector<float> dhidden(config_.rnn_hidden_dim);
      for (std::size_t h = 0; h < config_.rnn_hidden_dim; ++h) {
        dhidden[h] = dstate[embed_dim + h];
      }
      rnn_->Backward(rnn_ctx, dhidden);
    }
    if (step.crafting.has_value()) {
      crafting_->AccumulateGradients(*step.crafting, advantage);
    }
  }

  nn::ParameterList params = mlp_->Parameters();
  nn::AppendParameters(params, rnn_->Parameters());
  nn::Sgd optimizer(config_.learning_rate, config_.clip_norm);
  optimizer.Step(params);
  crafting_->ApplyUpdates(config_.learning_rate, config_.clip_norm);
}

bool FlatPolicyNetwork::SaveState(std::ostream& out) {
  nn::ParameterList params = mlp_->Parameters();
  nn::AppendParameters(params, rnn_->Parameters());
  nn::AppendParameters(params, crafting_->Parameters());
  if (!nn::SaveParameters(params, out)) return false;
  const nn::MovingBaseline::State baseline = baseline_.SaveState();
  out.write(reinterpret_cast<const char*>(&baseline.value),
            sizeof(baseline.value));
  const std::uint8_t initialized = baseline.initialized ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&initialized),
            sizeof(initialized));
  return static_cast<bool>(out);
}

bool FlatPolicyNetwork::LoadState(std::istream& in) {
  nn::ParameterList params = mlp_->Parameters();
  nn::AppendParameters(params, rnn_->Parameters());
  nn::AppendParameters(params, crafting_->Parameters());
  if (!nn::LoadParameters(params, in)) return false;
  nn::MovingBaseline::State baseline;
  std::uint8_t initialized = 0;
  in.read(reinterpret_cast<char*>(&baseline.value),
          sizeof(baseline.value));
  in.read(reinterpret_cast<char*>(&initialized), sizeof(initialized));
  if (!in) return false;
  baseline.initialized = initialized != 0;
  baseline_.RestoreState(baseline);
  return true;
}

std::size_t FlatPolicyNetwork::DecisionCost() const {
  // One decision evaluates the full MLP: state->hidden plus
  // hidden->n_B logits (the dominant term).
  const std::size_t state_dim =
      item_embeddings_->cols() + config_.rnn_hidden_dim;
  return state_dim * config_.mlp_hidden_dim +
         config_.mlp_hidden_dim * dataset_->source.num_users();
}

}  // namespace copyattack::core
