#ifndef COPYATTACK_CORE_CHECKPOINT_H_
#define COPYATTACK_CORE_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/environment.h"
#include "data/io.h"
#include "rec/evaluator.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace copyattack::core {

/// Per-target-item outcome of a campaign, exactly what `RunCampaign`
/// aggregates into a Table-2 row. Serializable so completed targets
/// survive a crash.
struct TargetOutcomeState CA_CHECKPOINTED(WriteOutcome, ReadOutcome) {
  rec::MetricsByK metrics;
  double items_per_profile = 0.0;
  double profiles_injected = 0.0;
  double query_rounds = 0.0;
  double final_reward = 0.0;
};

/// Identity of a campaign. A checkpoint written by one campaign must
/// never be resumed into a differently configured one — the mismatch
/// would silently produce garbage, so the loader rejects it.
struct CampaignFingerprint CA_CHECKPOINTED(SerializePayload,
                                           DeserializePayload) {
  std::string method;
  std::uint64_t seed = 0;
  std::size_t episodes = 0;
  std::size_t num_targets = 0;
  std::size_t env_budget = 0;

  bool Matches(const CampaignFingerprint& other) const {
    return method == other.method && seed == other.seed &&
           episodes == other.episodes && num_targets == other.num_targets &&
           env_budget == other.env_budget;
  }
};

/// Mid-target progress: which target, how many episodes are done, and the
/// exact RL state needed to play episode `episodes_done` next — the
/// episode RNG stream, the environment's cross-episode counters/streams,
/// and the strategy's opaque state blob (policy parameters + baseline,
/// see AttackStrategy::SaveState).
struct InProgressTarget CA_CHECKPOINTED(SerializePayload,
                                        DeserializePayload) {
  bool active = false;
  std::size_t target_index = 0;
  std::size_t episodes_done = 0;
  util::RngState episode_rng;
  AttackEnvironment::ResumeState env;
  std::string strategy_blob;
};

/// Everything `RunCampaign` needs to continue after a crash.
struct CampaignCheckpoint CA_CHECKPOINTED(SerializePayload,
                                          DeserializePayload) {
  CampaignFingerprint fingerprint;
  /// Outcomes of targets `[0, completed.size())`, in target order.
  std::vector<TargetOutcomeState> completed;
  InProgressTarget in_progress;
};

/// Checkpoint file layout (DESIGN.md §11): little-endian
///   magic u32 | version u32 | payload_size u64 | crc32(payload) u32 |
///   payload bytes
/// The trailer-less fixed header lets the loader detect truncation before
/// reading the payload; the CRC detects torn or bit-rotten payloads.
inline constexpr std::uint32_t kCheckpointMagic = 0xCA9C4A17U;
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Paths inside a checkpoint directory: the current checkpoint, the
/// previous good one (rotation happens on every successful save), and
/// the in-flight temp file a crash mid-save can orphan.
std::string CheckpointPath(const std::string& dir);
std::string CheckpointFallbackPath(const std::string& dir);
std::string CheckpointTempPath(const std::string& dir);

/// Atomically persists `checkpoint` into `dir` (created if needed):
/// serialize to `campaign.ckpt.tmp`, rotate the existing
/// `campaign.ckpt` to `campaign.ckpt.prev`, then rename the temp file
/// into place — a crash at any point (including between the two
/// renames; every phase carries a `CA_CRASH_POINT`, see DESIGN.md §16)
/// leaves a loadable file behind. Returns false on I/O failure.
bool SaveCampaignCheckpoint(const CampaignCheckpoint& checkpoint,
                            const std::string& dir);

/// Where a loaded checkpoint came from.
enum class CheckpointSource {
  kNone,        ///< nothing loadable (or fingerprint mismatch everywhere)
  kPrimary,     ///< campaign.ckpt
  kFallback,    ///< campaign.ckpt was corrupt; campaign.ckpt.prev loaded
  /// campaign.ckpt was missing/corrupt but a fully-written, CRC-valid
  /// `campaign.ckpt.tmp` survived — the crash happened after the temp
  /// write but before the rename landed, so the orphan is the NEWEST
  /// state on disk and is preferred over `.prev`.
  kTempOrphan,
};

/// Loads the freshest valid checkpoint from `dir`: tries the primary
/// file, then a complete `.tmp` orphan, then the previous good file —
/// strictly newest-first, so double faults (e.g. a torn primary AND a
/// torn temp) still recover the best surviving state. Recovery is
/// read-only: the next successful save rewrites and rotates as usual.
/// `expected` guards against resuming a different campaign. On kNone
/// with `error` non-null, `error->message` explains why every candidate
/// was rejected (distinguishing "nothing there yet" from corruption).
CheckpointSource LoadCampaignCheckpoint(const std::string& dir,
                                        const CampaignFingerprint& expected,
                                        CampaignCheckpoint* out,
                                        data::IoError* error = nullptr);

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_CHECKPOINT_H_
