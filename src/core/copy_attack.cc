#include "core/copy_attack.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "core/crafting.h"
#include "core/proxy.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::core {

CopyAttack::CopyAttack(const data::CrossDomainDataset* dataset,
                       const cluster::HierarchicalTree* tree,
                       const math::Matrix* user_embeddings,
                       const math::Matrix* item_embeddings,
                       const CopyAttackConfig& config, std::uint64_t seed)
    : dataset_(dataset),
      tree_(tree),
      config_(config),
      baseline_(config.baseline_momentum) {
  CA_CHECK(dataset != nullptr);
  CA_CHECK(tree != nullptr);
  config_.selection.entropy_beta = config.entropy_beta;
  config_.crafting.entropy_beta = config.entropy_beta;
  util::Rng init_rng(seed);
  selection_ = std::make_unique<HierarchicalSelectionPolicy>(
      tree, user_embeddings, item_embeddings, config_.selection, init_rng);
  crafting_ = std::make_unique<CraftingPolicy>(
      user_embeddings, item_embeddings, config_.crafting, init_rng);
}

std::string CopyAttack::name() const {
  if (!config_.use_masking) return "CopyAttack-Masking";
  if (!config_.use_crafting) return "CopyAttack-Length";
  return "CopyAttack";
}

void CopyAttack::BeginTargetItem(data::ItemId target_item) {
  target_item_ = target_item;
  baseline_ = nn::MovingBaseline(config_.baseline_momentum);

  // Proxy extension: when the target item cannot be anchored in the
  // source domain, select and craft around its most co-occurring
  // overlapping item instead (paper §6 future work).
  anchor_item_ = target_item;
  if (config_.allow_proxy &&
      dataset_->SourceHolders(target_item).empty()) {
    anchor_item_ = FindProxyItem(*dataset_, dataset_->target, target_item);
    if (anchor_item_ == data::kNoItem) {
      // Fallback: the most popular attackable overlapping item.
      std::size_t best_popularity = 0;
      for (const data::ItemId item : dataset_->OverlapItems()) {
        if (dataset_->SourceHolders(item).empty()) continue;
        const std::size_t popularity =
            dataset_->target.ItemPopularity(item);
        if (anchor_item_ == data::kNoItem ||
            popularity > best_popularity) {
          anchor_item_ = item;
          best_popularity = popularity;
        }
      }
    }
    CA_CHECK_NE(anchor_item_, data::kNoItem)
        << "no attackable overlapping item exists";
  }

  const auto& source = dataset_->source;
  candidates_.clear();
  if (config_.use_masking) {
    candidates_ = dataset_->SourceHolders(anchor_item_);
  } else {
    candidates_.reserve(source.num_users());
    for (data::UserId u = 0; u < source.num_users(); ++u) {
      candidates_.push_back(u);
    }
  }

  // Static node mask: with masking, only leaves whose profile contains the
  // target item stay selectable (paper §4.3.2); without it, all leaves do.
  std::vector<bool> static_mask;
  if (config_.use_masking) {
    static_mask = tree_->ComputeMask([&](std::size_t user) {
      return dataset_->source.HasInteraction(
          static_cast<data::UserId>(user), anchor_item_);
    });
  } else {
    static_mask.assign(tree_->num_nodes(), true);
  }
  selection_->SetTargetItem(anchor_item_, std::move(static_mask));
  crafting_->SetTargetItem(anchor_item_);
}

double CopyAttack::RunEpisode(AttackEnvironment& env, util::Rng& rng) {
  OBS_SPAN("attack.episode");
  OBS_COUNTER_INC("attack.episodes");
  CA_CHECK_NE(target_item_, data::kNoItem);
  CA_CHECK_EQ(env.target_item(), target_item_)
      << "environment was reset for a different target item";

  selection_->ResetEpisodeMask();
  selected_this_episode_.clear();

  std::vector<TrajectoryStep> trajectory;
  std::vector<data::UserId> selected_order;
  double last_reward = 0.0;
  double previous_query_hr = 0.0;
  bool first_action = true;

  while (!env.done()) {
    TrajectoryStep step;
    data::UserId user = data::kNoUser;

    if (first_action) {
      // Seed action a_0 is uniform random (paper §4.3.3): the RNN state is
      // empty and carries no signal yet. No selection gradient for it.
      user = SampleSeedUser(rng);
      first_action = false;
    } else if (selection_->AnyAvailable()) {
      SelectionStepRecord record;
      user = selection_->SampleUser(selected_order, rng, &record,
                                    eval_mode_);
      step.selection = std::move(record);
    }
    if (user == data::kNoUser) {
      break;  // candidate pool exhausted (few source holders, large budget)
    }

    data::Profile profile = BuildProfile(user, rng, &step);

    if (config_.exclude_selected) {
      selection_->MarkUserSelected(user);
      selected_this_episode_.insert(user);
    }
    selected_order.push_back(user);

    const AttackEnvironment::StepResult result =
        env.Step(std::move(profile));
    if (result.queried) {
      last_reward = result.reward;
      step.reward =
          config_.reward_shaping == RewardShaping::kDeltaHitRatio
              ? result.reward - previous_query_hr
              : result.reward;
      previous_query_hr = result.reward;
    }
    trajectory.push_back(std::move(step));
  }

  if (!eval_mode_) {
    UpdatePolicies(trajectory);
  }
  OBS_UNIT_HIST_OBSERVE("attack.episode_reward", last_reward);
  return last_reward;
}

data::UserId CopyAttack::SampleSeedUser(util::Rng& rng) {
  if (candidates_.empty()) return data::kNoUser;
  for (std::size_t attempt = 0; attempt < 8 * candidates_.size() + 16;
       ++attempt) {
    const data::UserId user =
        candidates_[rng.UniformUint64(candidates_.size())];
    if (!config_.exclude_selected ||
        selected_this_episode_.find(user) == selected_this_episode_.end()) {
      return user;
    }
  }
  return data::kNoUser;
}

data::Profile CopyAttack::BuildProfile(data::UserId user, util::Rng& rng,
                                       TrajectoryStep* step) {
  const data::Profile& raw = dataset_->source.UserProfile(user);
  CA_CHECK(!raw.empty());
  data::Profile profile;
  if (!config_.use_crafting || !config_.use_masking) {
    // CopyAttack-Length injects raw profiles; CopyAttack-Masking also
    // disables crafting because selected profiles mostly lack the target
    // item (paper §5.1.4).
    profile = raw;
  } else {
    CraftStepRecord record;
    const std::size_t level =
        crafting_->SampleLevel(user, rng, &record, eval_mode_);
    step->crafting = record;
    OBS_UNIT_HIST_OBSERVE("attack.clip_ratio", kCraftLevels[level]);
    profile =
        ClipProfileAroundTarget(raw, anchor_item_, kCraftLevels[level]);
  }
  if (anchor_item_ != target_item_) {
    profile = SpliceTargetIntoProfile(std::move(profile), anchor_item_,
                                      target_item_);
  }
  return profile;
}

bool CopyAttack::SaveCheckpoint(const std::string& path) {
  nn::ParameterList params = selection_->AllParameters();
  nn::AppendParameters(params, crafting_->Parameters());
  return nn::SaveParameters(params, path);
}

bool CopyAttack::LoadCheckpoint(const std::string& path) {
  nn::ParameterList params = selection_->AllParameters();
  nn::AppendParameters(params, crafting_->Parameters());
  return nn::LoadParameters(params, path);
}

bool CopyAttack::SaveState(std::ostream& out) {
  nn::ParameterList params = selection_->AllParameters();
  nn::AppendParameters(params, crafting_->Parameters());
  if (!nn::SaveParameters(params, out)) return false;
  const nn::MovingBaseline::State baseline = baseline_.SaveState();
  out.write(reinterpret_cast<const char*>(&baseline.value),
            sizeof(baseline.value));
  const std::uint8_t initialized = baseline.initialized ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&initialized),
            sizeof(initialized));
  return static_cast<bool>(out);
}

bool CopyAttack::LoadState(std::istream& in) {
  nn::ParameterList params = selection_->AllParameters();
  nn::AppendParameters(params, crafting_->Parameters());
  if (!nn::LoadParameters(params, in)) return false;
  nn::MovingBaseline::State baseline;
  std::uint8_t initialized = 0;
  in.read(reinterpret_cast<char*>(&baseline.value),
          sizeof(baseline.value));
  in.read(reinterpret_cast<char*>(&initialized), sizeof(initialized));
  if (!in) return false;
  baseline.initialized = initialized != 0;
  baseline_.RestoreState(baseline);
  return true;
}

void CopyAttack::UpdatePolicies(
    const std::vector<TrajectoryStep>& trajectory) {
  if (trajectory.empty()) return;
  std::vector<double> rewards;
  rewards.reserve(trajectory.size());
  for (const TrajectoryStep& step : trajectory) {
    rewards.push_back(step.reward);
  }
  const std::vector<double> returns =
      nn::DiscountedReturns(rewards, config_.gamma);

  const double baseline_value = baseline_.value();
  baseline_.Update(returns.front());

  for (std::size_t t = 0; t < trajectory.size(); ++t) {
    const double advantage = returns[t] - baseline_value;
    if (advantage == 0.0) continue;  // lint:allow(float-eq): zero-advantage skip
    if (trajectory[t].selection.has_value()) {
      selection_->AccumulateGradients(*trajectory[t].selection, advantage);
    }
    if (trajectory[t].crafting.has_value()) {
      crafting_->AccumulateGradients(*trajectory[t].crafting, advantage);
    }
  }
  OBS_SPAN("attack.policy_update");
  selection_->ApplyUpdates(config_.learning_rate, config_.clip_norm);
  crafting_->ApplyUpdates(config_.learning_rate, config_.clip_norm);
}

}  // namespace copyattack::core
