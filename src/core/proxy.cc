#include "core/proxy.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace copyattack::core {

data::ItemId FindProxyItem(const data::CrossDomainDataset& dataset,
                           const data::Dataset& reference,
                           data::ItemId target_item) {
  CA_CHECK_LT(target_item, reference.num_items());
  const auto& target_users = reference.ItemProfile(target_item);
  if (target_users.empty()) return data::kNoItem;

  // Co-occurrence counts with every other item through the target's users.
  std::unordered_map<data::ItemId, std::size_t> co_occurrence;
  for (const data::UserId user : target_users) {
    for (const data::ItemId item : reference.UserProfile(user)) {
      if (item != target_item) ++co_occurrence[item];
    }
  }

  data::ItemId best = data::kNoItem;
  double best_jaccard = 0.0;
  for (const auto& [item, shared] : co_occurrence) {
    if (!dataset.overlap[item]) continue;
    if (dataset.SourceHolders(item).empty()) continue;
    const std::size_t union_size = target_users.size() +
                                   reference.ItemPopularity(item) - shared;
    const double jaccard =
        union_size == 0
            ? 0.0
            : static_cast<double>(shared) / static_cast<double>(union_size);
    if (jaccard > best_jaccard ||
        (jaccard == best_jaccard && best != data::kNoItem && item < best)) {
      best_jaccard = jaccard;
      best = item;
    }
  }
  return best;
}

double EstimateRewardWithoutQueries(const data::Dataset& polluted,
                                    data::ItemId target_item,
                                    std::size_t reward_k,
                                    std::size_t num_candidates) {
  if (target_item >= polluted.num_items()) return 0.0;
  const double target_pop =
      static_cast<double>(polluted.ItemPopularity(target_item));
  const double mean_pop =
      polluted.num_items() == 0
          ? 0.0
          : static_cast<double>(polluted.num_interactions()) /
                static_cast<double>(polluted.num_items());
  const double estimate =
      target_pop * static_cast<double>(reward_k) /
      ((mean_pop + 1.0) * (static_cast<double>(num_candidates) + 1.0));
  return std::min(1.0, estimate);
}

data::Profile SpliceTargetIntoProfile(data::Profile window,
                                      data::ItemId anchor_item,
                                      data::ItemId target_item) {
  if (std::find(window.begin(), window.end(), target_item) != window.end()) {
    return window;
  }
  auto anchor_it =
      std::find(window.begin(), window.end(), anchor_item);
  if (anchor_it == window.end()) {
    window.push_back(target_item);
  } else {
    window.insert(anchor_it + 1, target_item);
  }
  return window;
}

}  // namespace copyattack::core
