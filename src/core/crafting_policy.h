#ifndef COPYATTACK_CORE_CRAFTING_POLICY_H_
#define COPYATTACK_CORE_CRAFTING_POLICY_H_

#include <memory>

#include "core/crafting.h"
#include "data/types.h"
#include "math/matrix.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace copyattack::core {

/// Record of one crafting decision for the episode-end policy update.
struct CraftStepRecord {
  data::UserId user = data::kNoUser;
  std::size_t action = 0;  ///< index into kCraftLevels
};

/// The second-step policy gradient network (paper §4.4): given the state
/// [p^B_{u} ⊕ q^B_{v*}] of the just-selected user and the target item, it
/// chooses a clip level w ∈ {10%, ..., 100%} deciding how much of the raw
/// profile to keep around the target item.
class CraftingPolicy {
 public:
  struct Config {
    std::size_t mlp_hidden_dim = 16;
    float init_stddev = 0.1f;
    double entropy_beta = 0.01;
  };

  /// Embeddings are the frozen pre-trained source-domain MF factors
  /// (borrowed; must outlive the policy).
  CraftingPolicy(const math::Matrix* user_embeddings,
                 const math::Matrix* item_embeddings, const Config& config,
                 util::Rng& rng);

  /// Installs the target item.
  void SetTargetItem(data::ItemId item) { target_item_ = item; }

  /// Samples a clip-level index for `user` and fills `record`. With
  /// `greedy` the argmax level is taken (evaluation mode).
  std::size_t SampleLevel(data::UserId user, util::Rng& rng,
                          CraftStepRecord* record, bool greedy = false);

  /// Accumulates REINFORCE gradients for a recorded decision.
  void AccumulateGradients(const CraftStepRecord& record, double advantage);

  /// Applies one SGD step and clears gradients.
  void ApplyUpdates(float learning_rate, float clip_norm);

  /// Learnable parameters (for checkpointing).
  nn::ParameterList Parameters() { return mlp_->Parameters(); }

 private:
  std::vector<float> StateVector(data::UserId user) const;

  const math::Matrix* user_embeddings_;
  const math::Matrix* item_embeddings_;
  Config config_;
  std::unique_ptr<nn::Mlp> mlp_;
  data::ItemId target_item_ = data::kNoItem;
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_CRAFTING_POLICY_H_
