#ifndef COPYATTACK_CORE_PARALLEL_RUNNER_H_
#define COPYATTACK_CORE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/runner.h"
#include "data/cross_domain.h"
#include "data/dataset.h"
#include "util/annotations.h"

namespace copyattack::core {

/// Options of the sharded campaign runner.
struct ParallelRunnerOptions {
  /// Worker threads (>= 1). `--jobs` on the CLI.
  std::size_t jobs = 1;
  /// Shards to split the target list into; 0 = one per job. Results are
  /// bit-identical for every shard count (see class comment), so the
  /// shard count only tunes checkpoint granularity and load balancing.
  std::size_t shards = 0;
  /// Route every query round through the `rec::BatchedBlackBox`
  /// decorator (one blocked scoring call per round instead of one oracle
  /// round-trip per pretend user). Payload-equivalent either way.
  bool batched_queries = true;
  /// Per-shard crash safety: with a non-empty `dir`, shard s of S
  /// persists its progress under `<dir>/shard_<s>_of_<S>` using the
  /// standard campaign checkpoint format, fingerprinted with the shard's
  /// stream seed so a checkpoint never resumes into a different shard
  /// layout. `abort_after_episodes` counts episodes across ALL shards.
  CampaignCheckpointOptions checkpoint;
  /// Cooperative cancellation: polled at every shard boundary and every
  /// episode boundary (the natural yield points — checkpoints are
  /// already flushed there). When it returns true the run aborts like
  /// `abort_after_episodes`: completed work stays checkpointed and the
  /// result's `aggregate.aborted` flag is set, so a resume continues
  /// bit-identically. Called from worker threads; must be thread-safe.
  /// The attack server's watchdog deadline and SIGTERM drain both ride
  /// this hook. Null = never cancel.
  std::function<bool()> cancel;
};

/// Per-shard execution record. Round-trips through the shard-stats CSV
/// (`WriteShardStatsCsv` / `ParseShardStatsCsv`) so campaign-scaling runs
/// can archive and re-ingest per-shard records across invocations.
struct ShardStats CA_CHECKPOINTED(WriteShardStatsCsv, ParseShardStatsCsv) {
  std::size_t shard = 0;
  std::size_t total_shards = 1;
  /// Target items owned by this shard (round-robin: global indices
  /// shard, shard + S, shard + 2S, ...).
  std::size_t num_items = 0;
  /// Golden-ratio stream split of the campaign seed
  /// (`util::DeriveStreamSeed`), mixing in both the shard index and the
  /// shard count; identifies the shard's checkpoints.
  std::uint64_t stream_seed = 0;
  std::size_t episodes_played = 0;
  std::size_t checkpoint_saves = 0;
  CheckpointSource resumed_from = CheckpointSource::kNone;
  double wall_seconds = 0.0;
};

/// Writes one CSV row per shard record (header first). Round-trips with
/// `ParseShardStatsCsv`; the scaling perf gate archives these so a later
/// run can compare per-shard load balance against an earlier one.
void WriteShardStatsCsv(const std::vector<ShardStats>& shards,
                        std::ostream& out);

/// Parses the CSV written by `WriteShardStatsCsv`. On malformed input
/// returns false with a line-numbered message in `*error`.
bool ParseShardStatsCsv(std::istream& in, std::vector<ShardStats>* shards,
                        std::string* error);

/// Outcome of one sharded campaign run.
struct ParallelCampaignResult {
  /// The Table-2 aggregate over all completed target items, merged in
  /// global target order (so it is invariant to shard/thread count).
  CampaignResult aggregate;
  /// Per-item outcomes in target-list order. On an aborted run only
  /// entries whose `completed` flag is set are valid.
  std::vector<TargetOutcomeState> outcomes;
  std::vector<std::uint8_t> completed;
  std::vector<ShardStats> shards;
  /// Completed target items per wall-clock second of this run — the
  /// quantity the campaign-scaling perf gate tracks.
  double campaigns_per_sec = 0.0;
};

/// Campaign-parallel sharded attack runner: splits the target items of a
/// promotion campaign round-robin over S shards and drives the shards
/// concurrently on the shared `util::ThreadPool`.
///
/// Determinism contract: every target item is played by
/// `PlayTargetItem` with its GLOBAL index, so its seed, its model clone,
/// its environment (own serving/rollback checkpoints, own fault
/// injector and circuit breaker) and hence its outcome are the same no
/// matter which shard or thread runs it. The aggregate is merged in
/// global target order. Together that makes the result bit-identical to
/// the sequential `RunCampaign` under `jobs = 1` and invariant to the
/// shard count — the property the shard-determinism tests pin down.
///
/// Each shard additionally owns a golden-ratio `util::Rng` stream seed
/// (`util::DeriveStreamSeed(campaign_seed, shard ⊕ shard-count)`) that
/// fingerprints its crash-safety checkpoints; shard-local randomness
/// must come from that stream, never from the campaign seed directly,
/// so adding shard-local decisions later cannot perturb item outcomes.
class ParallelCampaignRunner {
 public:
  /// Factories are copied; `dataset`/`target_train` are borrowed and
  /// must outlive the runner.
  ParallelCampaignRunner(const data::CrossDomainDataset& dataset,
                         const data::Dataset& target_train,
                         ModelFactory model_factory,
                         StrategyFactory strategy_factory,
                         const ParallelRunnerOptions& options);

  /// Runs the campaign over `targets`. `config.num_threads` and
  /// `config.checkpoint` are ignored — `options` govern both.
  ParallelCampaignResult Run(const std::vector<data::ItemId>& targets,
                             const CampaignConfig& config) const;

  const ParallelRunnerOptions& options() const { return options_; }

 private:
  const data::CrossDomainDataset& dataset_;
  const data::Dataset& target_train_;
  ModelFactory model_factory_;
  StrategyFactory strategy_factory_;
  ParallelRunnerOptions options_;
};

}  // namespace copyattack::core

#endif  // COPYATTACK_CORE_PARALLEL_RUNNER_H_
