#ifndef COPYATTACK_OBS_METRICS_H_
#define COPYATTACK_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.h"

namespace copyattack::obs {

/// Index of the calling thread into the fixed shard arrays below. Assigned
/// once per thread from a process-global counter, so threads spread across
/// shards instead of hashing onto the same slot.
std::size_t ThreadShardIndex();

/// Number of shards per metric. Increments from up to this many threads
/// proceed without cache-line contention; more threads share slots (still
/// correct, just occasionally bouncing a line).
inline constexpr std::size_t kMetricShards = 16;

/// One cache-line-padded atomic cell so neighbouring shards never share a
/// line (the whole point of sharding).
struct alignas(64) MetricShard {
  std::atomic<std::uint64_t> value CA_ATOMIC_ONLY{0};
};

/// Monotonic event counter. The hot-path `Add` is a single relaxed
/// fetch-add on the calling thread's shard; `Value` merges shards on read.
/// All accesses are atomic, so concurrent increments are TSan-clean and
/// sum exactly.
class Counter {
 public:
  void Add(std::uint64_t amount = 1) {
    shards_[ThreadShardIndex() % kMetricShards].value.fetch_add(
        amount, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const MetricShard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard (snapshot epochs in tests/benches).
  void Reset() {
    for (MetricShard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  MetricShard shards_[kMetricShards];
};

/// Last-writer-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_ CA_ATOMIC_ONLY{0};
};

/// Read-side view of a histogram: cumulative-style fixed buckets plus
/// sum/count, with interpolated percentile estimation. `counts[i]` holds
/// observations `v <= bounds[i]`; the final entry (`counts[bounds.size()]`)
/// is the overflow bucket.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  std::uint64_t count = 0;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Estimated quantile for `q` in (0, 1], linearly interpolated inside the
  /// containing bucket (lower edge 0 for the first bucket — observations
  /// are assumed non-negative). Overflow-bucket hits clamp to the last
  /// finite bound. Returns 0 when empty.
  double Percentile(double q) const;
};

/// Fixed-bucket histogram with sharded atomic bucket counters: `Observe`
/// costs one branchless bucket search plus three relaxed atomic adds on the
/// calling thread's shard. Bucket bounds are fixed at construction.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void Observe(double value);

  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Zeroes every bucket (snapshot epochs in tests/benches).
  void Reset();

 private:
  /// Per-shard payload: one atomic per bucket plus sum/count. The shard
  /// struct is padded so two shards never share a cache line.
  struct alignas(64) HistShard {
    std::vector<std::atomic<std::uint64_t>> buckets CA_ATOMIC_ONLY;
    std::atomic<std::uint64_t> count CA_ATOMIC_ONLY{0};
    /// Stored as a CAS loop over the bit pattern (portable pre-C++20
    /// floating fetch_add behaviour across toolchains).
    std::atomic<double> sum CA_ATOMIC_ONLY{0.0};
  };

  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<HistShard> shards_;
};

/// Default latency buckets in microseconds: roughly logarithmic from
/// sub-microsecond kernels to second-scale campaign stages.
const std::vector<double>& DefaultLatencyBucketsUs();

/// Buckets for unit-interval quantities (rewards, clip ratios).
const std::vector<double>& UnitIntervalBuckets();

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Owner of all named metrics. Registration (first `Get*` for a name)
/// takes a mutex; returned references are stable for the registry's
/// lifetime, so instrumented call sites cache them in function-local
/// statics and never touch the lock again. Instantiable for tests;
/// production code uses the process-wide `Global()` instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);

  /// Returns the histogram registered under `name`, creating it with
  /// `bucket_bounds` on first use. Later callers get the existing
  /// instance regardless of the bounds they pass.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bucket_bounds);

  /// Histogram with `DefaultLatencyBucketsUs()` bounds.
  Histogram& GetLatencyHistogram(const std::string& name);

  /// Histogram with `UnitIntervalBuckets()` bounds.
  Histogram& GetUnitHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (names and handles stay valid).
  void ResetAll();

 private:
  /// Leaf lock: registration holds it only around map insertion (zero-arg
  /// annotation = tracked in the lock-order graph).
  mutable std::mutex mutex_ CA_ACQUIRED_BEFORE();
  // std::map keeps snapshot/export ordering deterministic by name.
  // Registration is guarded; the returned Counter/Gauge/Histogram handles
  // are themselves lock-free (sharded atomics) and outlive the lock.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      CA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CA_GUARDED_BY(mutex_);
};

}  // namespace copyattack::obs

#endif  // COPYATTACK_OBS_METRICS_H_
