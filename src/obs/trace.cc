#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"

namespace copyattack::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Per-thread span nesting depth (depth-aware recording: every event
/// carries the depth it ran at, so exporters can reconstruct the stack
/// even after ring wrap-around loses enclosing spans).
thread_local std::uint32_t t_span_depth = 0;

/// Cache of the calling thread's buffer, keyed by recorder so a test's
/// local recorder does not alias the global one.
struct BufferCache {
  const void* recorder = nullptr;
  void* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint32_t CurrentSpanDepth() { return t_span_depth; }

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const recorder =
      new TraceRecorder();  // lint:allow(raw-new): process-lifetime singleton
  return *recorder;
}

TraceRecorder::~TraceRecorder() {
  // Drop this thread's cache so a later recorder allocated at the same
  // address (stack-local recorders in sequential tests) cannot alias the
  // freed buffer. Other threads must not outlive a non-global recorder.
  if (t_buffer_cache.recorder == this) t_buffer_cache = {nullptr, nullptr};
}

TraceRecorder::ThreadBuffer& TraceRecorder::BufferForThisThread() {
  if (t_buffer_cache.recorder == this) {
    return *static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->capacity = ring_capacity_;
  // Pre-publication init: the buffer is not yet in buffers_, so no other
  // thread can reach it, and the registry lock held here orders the write
  // before any reader.
  buffer->ring.reserve(ring_capacity_);
  buffer->index = static_cast<std::uint32_t>(buffers_.size());
  buffers_.push_back(std::move(buffer));
  t_buffer_cache = {this, buffers_.back().get()};
  return *buffers_.back();
}

void TraceRecorder::Record(const TraceEvent& event) {
  ThreadBuffer& buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  TraceEvent stamped = event;
  stamped.thread_index = buffer.index;
  const std::size_t capacity = buffer.capacity;
  if (capacity == 0) return;
  if (buffer.ring.size() < capacity) {
    buffer.ring.push_back(stamped);
  } else {
    buffer.ring[buffer.next] = stamped;  // wrap: overwrite the oldest
  }
  buffer.next = (buffer.next + 1) % capacity;
  ++buffer.total;
}

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

std::uint64_t TraceRecorder::overwritten() const {
  std::uint64_t lost = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    if (buffer->total > buffer->ring.size()) {
      lost += buffer->total - buffer->ring.size();
    }
  }
  return lost;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->total = 0;
  }
}

void TraceRecorder::SetRingCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = std::max<std::size_t>(1, capacity);
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name), start_ns_(0), depth_(0), active_(Enabled()) {
  if (!active_) return;
  depth_ = ++t_span_depth;
  start_ns_ = MonotonicNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = MonotonicNanos() - start_ns_;
  event.depth = depth_;
  TraceRecorder::Global().Record(event);
}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (histogram_ == nullptr) return;
  histogram_->Observe(
      static_cast<double>(MonotonicNanos() - start_ns_) * 1e-3);
}

}  // namespace copyattack::obs
