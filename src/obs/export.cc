#include "obs/export.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string_view>

namespace copyattack::obs {

namespace {

/// Shortest-exact double formatting: 17 significant digits round-trip any
/// IEEE double, which is what makes the CSV/JSON exporters loss-free.
std::string FormatDouble(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

std::string EscapeJsonString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

// --- Minimal JSON reader -------------------------------------------------
//
// Just enough of a recursive-descent parser to read back what
// MetricsToJson emits (objects, arrays, strings without exotic escapes,
// numbers, bools, null). Exists so the exporter round-trip is testable
// without taking on a JSON dependency the container does not have.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Vector-of-pairs keeps source order; our schemas have no duplicates.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWhitespace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    const std::size_t n = std::string_view(literal).size();
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: c = esc;  // \" \\ \/ and anything else verbatim
        }
      }
      out->push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return ConsumeLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return ConsumeLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ConsumeLiteral("null");
    }
    // Number.
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(begin, &end);
    if (end == begin) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      SkipWhitespace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string MetricsToCsv(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "name,kind,key,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << name << ",counter,," << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << name << ",gauge,," << value << '\n';
  }
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      out << hist.name << ",hist_bucket,"
          << (i < hist.bounds.size() ? FormatDouble(hist.bounds[i])
                                     : std::string("inf"))
          << ',' << hist.counts[i] << '\n';
    }
    out << hist.name << ",hist_sum,," << FormatDouble(hist.sum) << '\n';
    out << hist.name << ",hist_count,," << hist.count << '\n';
  }
  return out.str();
}

bool WriteMetricsCsv(const MetricsSnapshot& snapshot,
                     const std::string& path) {
  return WriteFile(path, MetricsToCsv(snapshot));
}

bool ReadMetricsCsv(const std::string& path, MetricsSnapshot* snapshot) {
  std::ifstream in(path);
  if (!in) return false;
  *snapshot = MetricsSnapshot();
  std::string line;
  if (!std::getline(in, line)) return false;  // header
  // Histograms arrive as contiguous row groups in export order.
  HistogramSnapshot* hist = nullptr;
  const auto hist_for = [&](const std::string& name) -> HistogramSnapshot* {
    if (hist == nullptr || hist->name != name) {
      snapshot->histograms.emplace_back();
      hist = &snapshot->histograms.back();
      hist->name = name;
    }
    return hist;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 4) return false;
    const std::string& name = fields[0];
    const std::string& kind = fields[1];
    const std::string& key = fields[2];
    const std::string& value = fields[3];
    if (kind == "counter") {
      snapshot->counters.emplace_back(
          name, static_cast<std::uint64_t>(std::strtoull(
                    value.c_str(), nullptr, 10)));
    } else if (kind == "gauge") {
      snapshot->gauges.emplace_back(
          name, static_cast<std::int64_t>(std::strtoll(
                    value.c_str(), nullptr, 10)));
    } else if (kind == "hist_bucket") {
      HistogramSnapshot* h = hist_for(name);
      if (key != "inf") {
        h->bounds.push_back(std::strtod(key.c_str(), nullptr));
      }
      h->counts.push_back(static_cast<std::uint64_t>(
          std::strtoull(value.c_str(), nullptr, 10)));
    } else if (kind == "hist_sum") {
      hist_for(name)->sum = std::strtod(value.c_str(), nullptr);
    } else if (kind == "hist_count") {
      hist_for(name)->count = static_cast<std::uint64_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else {
      return false;
    }
  }
  return true;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << EscapeJsonString(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "}" : "\n  }");
  out << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << EscapeJsonString(snapshot.gauges[i].first)
        << "\": " << snapshot.gauges[i].second;
  }
  out << (snapshot.gauges.empty() ? "}" : "\n  }");
  out << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& hist = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << EscapeJsonString(hist.name) << "\": {\n      \"bounds\": [";
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << FormatDouble(hist.bounds[b]);
    }
    out << "],\n      \"counts\": [";
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << hist.counts[b];
    }
    out << "],\n      \"sum\": " << FormatDouble(hist.sum)
        << ",\n      \"count\": " << hist.count
        << ",\n      \"mean\": " << FormatDouble(hist.Mean())
        << ",\n      \"p50\": " << FormatDouble(hist.Percentile(0.50))
        << ",\n      \"p95\": " << FormatDouble(hist.Percentile(0.95))
        << ",\n      \"p99\": " << FormatDouble(hist.Percentile(0.99))
        << "\n    }";
  }
  out << (snapshot.histograms.empty() ? "}" : "\n  }");
  out << "\n}\n";
  return out.str();
}

bool WriteMetricsJson(const MetricsSnapshot& snapshot,
                      const std::string& path) {
  return WriteFile(path, MetricsToJson(snapshot));
}

bool ParseMetricsJson(const std::string& json, MetricsSnapshot* snapshot) {
  JsonValue root;
  if (!JsonParser(json).Parse(&root) ||
      root.kind != JsonValue::Kind::kObject) {
    return false;
  }
  *snapshot = MetricsSnapshot();
  if (const JsonValue* counters = root.Find("counters")) {
    for (const auto& [name, value] : counters->object) {
      snapshot->counters.emplace_back(
          name, static_cast<std::uint64_t>(value.number));
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    for (const auto& [name, value] : gauges->object) {
      snapshot->gauges.emplace_back(
          name, static_cast<std::int64_t>(value.number));
    }
  }
  if (const JsonValue* histograms = root.Find("histograms")) {
    for (const auto& [name, value] : histograms->object) {
      HistogramSnapshot hist;
      hist.name = name;
      if (const JsonValue* bounds = value.Find("bounds")) {
        for (const JsonValue& b : bounds->array) {
          hist.bounds.push_back(b.number);
        }
      }
      if (const JsonValue* counts = value.Find("counts")) {
        for (const JsonValue& c : counts->array) {
          hist.counts.push_back(static_cast<std::uint64_t>(c.number));
        }
      }
      if (const JsonValue* sum = value.Find("sum")) hist.sum = sum->number;
      if (const JsonValue* count = value.Find("count")) {
        hist.count = static_cast<std::uint64_t>(count->number);
      }
      snapshot->histograms.push_back(std::move(hist));
    }
  }
  return true;
}

std::string EventsToChromeTrace(const std::vector<TraceEvent>& events) {
  std::int64_t base_ns = 0;
  for (const TraceEvent& event : events) {
    if (base_ns == 0 || event.start_ns < base_ns) base_ns = event.start_ns;
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"name\": \""
        << EscapeJsonString(event.name != nullptr ? event.name : "?")
        << "\", \"cat\": \"obs\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << event.thread_index << ", \"ts\": "
        << FormatDouble(static_cast<double>(event.start_ns - base_ns) *
                        1e-3)
        << ", \"dur\": "
        << FormatDouble(static_cast<double>(event.duration_ns) * 1e-3)
        << ", \"args\": {\"depth\": " << event.depth << "}}";
  }
  out << (events.empty() ? "]" : "\n]") << "}\n";
  return out.str();
}

bool WriteChromeTrace(const std::vector<TraceEvent>& events,
                      const std::string& path) {
  return WriteFile(path, EventsToChromeTrace(events));
}

bool ExportAll(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  const std::filesystem::path base(dir);
  return WriteMetricsCsv(snapshot, (base / "metrics.csv").string()) &&
         WriteMetricsJson(snapshot, (base / "summary.json").string()) &&
         WriteChromeTrace(events, (base / "trace.json").string());
}

}  // namespace copyattack::obs
