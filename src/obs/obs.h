#ifndef COPYATTACK_OBS_OBS_H_
#define COPYATTACK_OBS_OBS_H_

/// Umbrella header of the observability subsystem: include this (only
/// this) from instrumented code and use the OBS_* macros below.
///
/// Layering: src/obs depends on nothing but the standard library, so even
/// the lowest layers (util/thread_pool) can be instrumented without a
/// dependency cycle.
///
/// Cost model:
///  * compile-time off (`cmake -DCOPYATTACK_OBS=OFF`, which defines
///    COPYATTACK_OBS_DISABLED): every macro expands to `((void)0)` — the
///    subsystem vanishes from the hot paths entirely;
///  * runtime off (the default; see obs::SetEnabled): one relaxed atomic
///    load and a predictable branch per site — measured at well under 1%
///    of the per-injection episode cost (bench_results/obs_overhead.csv);
///  * runtime on: counters are one relaxed fetch-add on a per-thread
///    shard; spans add two clock reads and a push into a per-thread ring.
///
/// Naming convention (DESIGN.md §9): `<layer>.<noun>[_<unit>]`, e.g.
/// `env.inject_us`, `blackbox.queries`, `pool.tasks_executed`. Latency
/// histograms are microseconds and end in `_us`; unit-interval histograms
/// (rewards, ratios) carry no suffix.

#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(COPYATTACK_OBS_DISABLED)

#define OBS_SPAN(name) ((void)0)
#define OBS_COUNTER_INC(name) ((void)0)
#define OBS_COUNTER_ADD(name, amount) ((void)0)
#define OBS_GAUGE_SET(name, value) ((void)0)
#define OBS_HIST_OBSERVE(name, value) ((void)0)
#define OBS_UNIT_HIST_OBSERVE(name, value) ((void)0)
#define OBS_SCOPED_TIMER_US(name) ((void)0)

#else  // observability compiled in

#define OBS_INTERNAL_CONCAT2(a, b) a##b
#define OBS_INTERNAL_CONCAT(a, b) OBS_INTERNAL_CONCAT2(a, b)

/// Scoped tracing span; `name` must be a string literal (or otherwise have
/// static storage duration). Use at block scope.
#define OBS_SPAN(name)                                      \
  ::copyattack::obs::ScopedSpan OBS_INTERNAL_CONCAT(        \
      ca_obs_span_, __LINE__)(name)

/// The counter/gauge/histogram macros resolve the named metric once per
/// call site (function-local static reference; the registry mutex is only
/// ever taken on the first execution) and guard the actual mutation on the
/// runtime flag.
#define OBS_COUNTER_ADD(name, amount)                                     \
  do {                                                                    \
    static ::copyattack::obs::Counter& ca_obs_counter =                   \
        ::copyattack::obs::MetricsRegistry::Global().GetCounter(name);    \
    if (::copyattack::obs::Enabled()) ca_obs_counter.Add(amount);         \
  } while (0)

#define OBS_COUNTER_INC(name) OBS_COUNTER_ADD(name, 1)

#define OBS_GAUGE_SET(name, value)                                        \
  do {                                                                    \
    static ::copyattack::obs::Gauge& ca_obs_gauge =                       \
        ::copyattack::obs::MetricsRegistry::Global().GetGauge(name);      \
    if (::copyattack::obs::Enabled())                                     \
      ca_obs_gauge.Set(static_cast<std::int64_t>(value));                 \
  } while (0)

/// Observation into a latency histogram (microsecond buckets).
#define OBS_HIST_OBSERVE(name, value)                                     \
  do {                                                                    \
    static ::copyattack::obs::Histogram& ca_obs_hist =                    \
        ::copyattack::obs::MetricsRegistry::Global().GetLatencyHistogram( \
            name);                                                        \
    if (::copyattack::obs::Enabled())                                     \
      ca_obs_hist.Observe(static_cast<double>(value));                    \
  } while (0)

/// Observation into a unit-interval histogram (rewards, clip ratios).
#define OBS_UNIT_HIST_OBSERVE(name, value)                                \
  do {                                                                    \
    static ::copyattack::obs::Histogram& ca_obs_hist =                    \
        ::copyattack::obs::MetricsRegistry::Global().GetUnitHistogram(    \
            name);                                                        \
    if (::copyattack::obs::Enabled())                                     \
      ca_obs_hist.Observe(static_cast<double>(value));                    \
  } while (0)

/// Scoped latency timer: observes the enclosing scope's duration (µs) into
/// the latency histogram `name`. Expands to two declarations — use at
/// block scope, never as the body of an unbraced `if`.
#define OBS_SCOPED_TIMER_US(name)                                          \
  static ::copyattack::obs::Histogram& OBS_INTERNAL_CONCAT(                \
      ca_obs_timer_hist_, __LINE__) =                                      \
      ::copyattack::obs::MetricsRegistry::Global().GetLatencyHistogram(    \
          name);                                                           \
  ::copyattack::obs::ScopedHistogramTimer OBS_INTERNAL_CONCAT(             \
      ca_obs_timer_, __LINE__)(                                            \
      ::copyattack::obs::Enabled()                                         \
          ? &OBS_INTERNAL_CONCAT(ca_obs_timer_hist_, __LINE__)             \
          : nullptr)

#endif  // COPYATTACK_OBS_DISABLED

#endif  // COPYATTACK_OBS_OBS_H_
