#ifndef COPYATTACK_OBS_TIME_H_
#define COPYATTACK_OBS_TIME_H_

#include <chrono>
#include <cstdint>

namespace copyattack::obs {

/// The repository's single monotonic time source. All timing — spans,
/// histogram timers, wall-clock stopwatches — flows through here so the
/// lint wall can ban ad-hoc `steady_clock::now()` calls in the core/rec
/// layers (rule `raw-clock`) without losing any capability.
inline std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic-clock stopwatch for wall-clock reporting. Replaces the old
/// `util::Stopwatch` (which remains as a compatibility alias).
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNanos()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ns_ = MonotonicNanos(); }

  /// Returns the elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9;
  }

  /// Returns the elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::int64_t start_ns_;
};

}  // namespace copyattack::obs

#endif  // COPYATTACK_OBS_TIME_H_
