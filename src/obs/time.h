#ifndef COPYATTACK_OBS_TIME_H_
#define COPYATTACK_OBS_TIME_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace copyattack::obs {

/// Test hook: when non-null, replaces the steady-clock read below. Lets
/// tests drive time-dependent logic (retry backoff deadlines, circuit
/// breaker cool-down) through a fake clock deterministically.
using MonotonicSourceFn = std::int64_t (*)();
inline std::atomic<MonotonicSourceFn> g_monotonic_source_for_test{nullptr};

/// Installs (or, with nullptr, removes) a fake monotonic time source.
/// Tests only; not thread-safe against in-flight timing reads that
/// straddle the swap, so install before starting any timed work.
inline void SetMonotonicSourceForTest(MonotonicSourceFn fn) {
  g_monotonic_source_for_test.store(fn, std::memory_order_relaxed);
}

/// The repository's single monotonic time source. All timing — spans,
/// histogram timers, wall-clock stopwatches — flows through here so the
/// lint wall can ban ad-hoc `steady_clock::now()` calls in the core/rec
/// layers (rule `raw-clock`) without losing any capability.
inline std::int64_t MonotonicNanos() {
  const MonotonicSourceFn fn =
      g_monotonic_source_for_test.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic-clock stopwatch for wall-clock reporting. Replaces the old
/// `util::Stopwatch` (which remains as a compatibility alias).
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNanos()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ns_ = MonotonicNanos(); }

  /// Returns the elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9;
  }

  /// Returns the elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::int64_t start_ns_;
};

}  // namespace copyattack::obs

#endif  // COPYATTACK_OBS_TIME_H_
