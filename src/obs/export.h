#ifndef COPYATTACK_OBS_EXPORT_H_
#define COPYATTACK_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace copyattack::obs {

/// CSV snapshot. One row per scalar fact, schema `name,kind,key,value`:
///   counter      key empty, value = count
///   gauge        key empty, value = gauge
///   hist_bucket  key = bucket upper bound ("inf" for overflow),
///                value = bucket count
///   hist_sum     key empty, value = sum of observations
///   hist_count   key empty, value = observation count
/// Metric names never contain commas/quotes, so the format needs no
/// escaping and `ReadMetricsCsv` round-trips bit-exactly (doubles are
/// written with 17 significant digits).
std::string MetricsToCsv(const MetricsSnapshot& snapshot);
bool WriteMetricsCsv(const MetricsSnapshot& snapshot,
                     const std::string& path);
bool ReadMetricsCsv(const std::string& path, MetricsSnapshot* snapshot);

/// JSON summary — the machine-readable campaign telemetry fed into
/// `bench_results/*.json` trajectory files:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"bounds": [...], "counts": [...],
///                            "sum": s, "count": n,
///                            "mean": m, "p50": ..., "p95": ..., "p99": ...}}}
/// The percentile fields are derived (recomputed on parse, not read back).
std::string MetricsToJson(const MetricsSnapshot& snapshot);
bool WriteMetricsJson(const MetricsSnapshot& snapshot,
                      const std::string& path);
bool ParseMetricsJson(const std::string& json, MetricsSnapshot* snapshot);

/// Chrome-trace (chrome://tracing / Perfetto "Trace Event Format") dump:
/// one complete ("ph":"X") event per span, timestamps in microseconds
/// rebased to the earliest span, thread index as tid, span depth in args.
std::string EventsToChromeTrace(const std::vector<TraceEvent>& events);
bool WriteChromeTrace(const std::vector<TraceEvent>& events,
                      const std::string& path);

/// Writes the three standard exports of the *global* registry/recorder
/// into `dir` (created if missing): metrics.csv, summary.json, trace.json.
/// Returns false if the directory or any file cannot be written.
bool ExportAll(const std::string& dir);

}  // namespace copyattack::obs

#endif  // COPYATTACK_OBS_EXPORT_H_
