#include "obs/metrics.h"

#include <algorithm>

namespace copyattack::obs {

std::size_t ThreadShardIndex() {
  static std::atomic<std::size_t> next_index{0};
  thread_local const std::size_t index =
      next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no upper edge to interpolate against.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double fraction =
        (target - static_cast<double>(before)) /
        static_cast<double>(counts[i]);
    return lo + fraction * (hi - lo);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), shards_(kMetricShards) {
  std::sort(bounds_.begin(), bounds_.end());
  for (HistShard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<std::uint64_t>>(
        bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  HistShard& shard = shards_[ThreadShardIndex() % kMetricShards];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double expected = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(expected, expected + value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const HistShard& shard : shards_) {
    for (std::size_t i = 0; i < shard.buckets.size(); ++i) {
      snapshot.counts[i] +=
          shard.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  for (HistShard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& DefaultLatencyBucketsUs() {
  static const std::vector<double> buckets = {
      0.1,   0.2,   0.5,    1.0,    2.0,    5.0,     10.0,    20.0,
      50.0,  100.0, 200.0,  500.0,  1e3,    2e3,     5e3,     1e4,
      2e4,   5e4,   1e5,    2e5,    5e5,    1e6,     2e6,     5e6};
  return buckets;
}

const std::vector<double>& UnitIntervalBuckets() {
  static const std::vector<double> buckets = {
      0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5,
      0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0};
  return buckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry =
      new MetricsRegistry();  // lint:allow(raw-new): process-lifetime singleton
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& bucket_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bucket_bounds);
  return *slot;
}

Histogram& MetricsRegistry::GetLatencyHistogram(const std::string& name) {
  return GetHistogram(name, DefaultLatencyBucketsUs());
}

Histogram& MetricsRegistry::GetUnitHistogram(const std::string& name) {
  return GetHistogram(name, UnitIntervalBuckets());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace copyattack::obs
