#ifndef COPYATTACK_OBS_TRACE_H_
#define COPYATTACK_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/time.h"
#include "util/annotations.h"

namespace copyattack::obs {

/// Whether telemetry is currently being recorded. Off by default: with the
/// flag down a span costs one relaxed load and a branch, so instrumented
/// hot paths keep their PR-1 numbers. Enabled by `--telemetry_out`, bench
/// telemetry scopes, and tests.
bool Enabled();
void SetEnabled(bool enabled);

/// One completed span. `name` must be a string with static storage
/// duration (the OBS_SPAN macro passes literals), so recording never
/// copies or allocates.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  std::uint32_t thread_index = 0;  ///< recorder-assigned, stable per thread
  std::uint32_t depth = 0;         ///< span nesting depth at entry (1-based)
};

/// Collects spans into fixed-capacity per-thread ring buffers. The owning
/// thread appends under an uncontended per-buffer mutex (no allocation,
/// no global lock); when a ring wraps, the oldest events are overwritten
/// and counted in `overwritten()`. `Collect` merges every thread's ring
/// into one start-ordered vector for export.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  /// Must outlive every thread that recorded into it (trivially true for
  /// the Global() instance; test-local recorders are used single-threaded).
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  /// Appends one event to the calling thread's ring.
  void Record(const TraceEvent& event);

  /// Merged copy of all rings, ordered by start time.
  std::vector<TraceEvent> Collect() const;

  /// Events lost to ring wrap-around across all threads.
  std::uint64_t overwritten() const;

  /// Empties every ring and the overwrite counters (buffers stay
  /// registered, so thread-index assignments are stable).
  void Clear();

  /// Ring capacity, in events, for threads that register after this call.
  void SetRingCapacity(std::size_t capacity);

 private:
  struct ThreadBuffer {
    /// Leaf lock, nested inside the registry lock by Collect/Clear (the
    /// reverse nesting would deadlock against Record).
    mutable std::mutex mutex CA_ACQUIRED_BEFORE();
    std::vector<TraceEvent> ring CA_GUARDED_BY(mutex);
    std::size_t capacity = 0;   ///< fixed at registration (pre-publication)
    std::size_t next CA_GUARDED_BY(mutex) = 0;   ///< ring write position
    std::uint64_t total CA_GUARDED_BY(mutex) = 0; ///< events ever recorded
    std::uint32_t index = 0;    ///< thread_index stamped into events
  };

  ThreadBuffer& BufferForThisThread();

  /// Guards `buffers_` and `ring_capacity_`. Acquired before any
  /// per-buffer lock (Collect/Clear iterate buffers under it).
  mutable std::mutex mutex_ CA_ACQUIRED_BEFORE(ThreadBuffer::mutex);
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ CA_GUARDED_BY(mutex_);
  std::size_t ring_capacity_ CA_GUARDED_BY(mutex_) = 8192;
};

/// Current span nesting depth of the calling thread (for tests).
std::uint32_t CurrentSpanDepth();

/// RAII span: records a TraceEvent covering its lifetime into the global
/// recorder. When telemetry is disabled at construction the destructor is
/// a branch on a bool — no clocks, no recording.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  const char* name_;
  std::int64_t start_ns_;
  std::uint32_t depth_;
  bool active_;
};

/// RAII histogram timer: observes its lifetime in microseconds into
/// `histogram`. Pass nullptr (the macros do, when telemetry is disabled)
/// for a no-op.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(class Histogram* histogram)
      : histogram_(histogram),
        start_ns_(histogram ? MonotonicNanos() : 0) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer();

 private:
  class Histogram* histogram_;
  std::int64_t start_ns_;
};

}  // namespace copyattack::obs

#endif  // COPYATTACK_OBS_TRACE_H_
