#include "attack/surrogate.h"

#include "obs/obs.h"
#include "util/check.h"
#include "util/rng.h"

namespace copyattack::attack {

namespace {

rec::MfConfig MakeMfConfig(const SurrogateConfig& config) {
  rec::MfConfig mf_config;
  mf_config.embedding_dim = config.embedding_dim;
  return mf_config;
}

}  // namespace

TargetSurrogate::TargetSurrogate(const data::Dataset& observable,
                                 const SurrogateConfig& config)
    : mf_(MakeMfConfig(config)) {
  OBS_SPAN("attack.surrogate_train");
  CA_CHECK_GT(observable.num_users(), 0U)
      << "surrogate needs observable interactions to train on";
  util::Rng rng(config.seed);
  mf_.InitTraining(observable, rng);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    mf_.TrainEpoch(observable, rng);
    OBS_COUNTER_INC("attack.surrogate_epochs");
  }

  const math::Matrix& users = mf_.user_embeddings();
  mean_user_embedding_.assign(users.cols(), 0.0f);
  for (std::size_t r = 0; r < users.rows(); ++r) {
    const float* row = users.Row(r);
    for (std::size_t c = 0; c < users.cols(); ++c) {
      mean_user_embedding_[c] += row[c];
    }
  }
  for (float& v : mean_user_embedding_) {
    v /= static_cast<float>(users.rows());
  }
}

std::vector<float> TargetSurrogate::FoldInProfile(
    const data::Profile& profile) const {
  const math::Matrix& items = mf_.item_embeddings();
  std::vector<float> embedding(items.cols(), 0.0f);
  if (profile.empty()) return embedding;
  for (const data::ItemId item : profile) {
    const float* row = items.Row(item);
    for (std::size_t c = 0; c < items.cols(); ++c) embedding[c] += row[c];
  }
  for (float& v : embedding) v /= static_cast<float>(profile.size());
  return embedding;
}

float TargetSurrogate::Score(const std::vector<float>& user_vec,
                             data::ItemId item) const {
  const math::Matrix& items = mf_.item_embeddings();
  CA_CHECK_EQ(user_vec.size(), items.cols());
  const float* row = items.Row(item);
  float dot = 0.0f;
  for (std::size_t c = 0; c < items.cols(); ++c) dot += user_vec[c] * row[c];
  return dot;
}

}  // namespace copyattack::attack
