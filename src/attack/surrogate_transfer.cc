#include "attack/surrogate_transfer.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::attack {

namespace {

float Dot(const std::vector<float>& u, const float* v) {
  float dot = 0.0f;
  for (std::size_t c = 0; c < u.size(); ++c) dot += u[c] * v[c];
  return dot;
}

}  // namespace

SurrogateTransferAttack::SurrogateTransferAttack(
    const data::CrossDomainDataset* dataset,
    std::shared_ptr<const TargetSurrogate> surrogate,
    const SurrogateTransferConfig& config, std::uint64_t seed)
    : dataset_(dataset),
      surrogate_(std::move(surrogate)),
      config_(config),
      ascent_rng_(seed) {
  CA_CHECK(dataset_ != nullptr);
  CA_CHECK(surrogate_ != nullptr);
  CA_CHECK_GT(config_.profile_length, 1U);
  CA_CHECK_GT(config_.ascent_steps, 0U);
  CA_CHECK_EQ(surrogate_->num_items(), dataset_->target.num_items());
}

void SurrogateTransferAttack::BeginTargetItem(data::ItemId target_item) {
  target_item_ = target_item;
  popular_items_.clear();
  for (const data::ItemId item : dataset_->target.ItemsByPopularity()) {
    if (item == target_item_) continue;
    popular_items_.push_back(item);
    if (popular_items_.size() >= config_.popular_negatives) break;
  }
  CA_CHECK(!popular_items_.empty())
      << "surrogate-transfer needs popular items to rank the target against";
}

data::Profile SurrogateTransferAttack::CraftProfile(data::UserId seed_user,
                                                    util::Rng& rng) {
  const math::Matrix& items = surrogate_->item_embeddings();
  const std::size_t dim = items.cols();

  // Virtual user: the seed user's fold-in embedding plus a small jitter so
  // the budget's profiles explore distinct ascent basins.
  std::vector<float> anchor =
      surrogate_->FoldInProfile(dataset_->target.UserProfile(seed_user));
  std::vector<float> u = anchor;
  for (float& v : u) v += 0.05f * static_cast<float>(rng.Normal());

  // BPR-style ascent: push the target item's score above the popular
  // items', anchored to the genuine embedding.
  const float* q_target = items.Row(target_item_);
  const float step =
      config_.step_size * static_cast<float>(step_scale_);
  std::vector<float> grad(dim);
  for (std::size_t s = 0; s < config_.ascent_steps; ++s) {
    std::fill(grad.begin(), grad.end(), 0.0f);
    const float target_score = Dot(u, q_target);
    for (const data::ItemId popular : popular_items_) {
      const float* q_popular = items.Row(popular);
      const float margin = target_score - Dot(u, q_popular);
      const float weight = 1.0f / (1.0f + std::exp(margin));
      for (std::size_t c = 0; c < dim; ++c) {
        grad[c] += weight * (q_target[c] - q_popular[c]);
      }
    }
    const float scale = 1.0f / static_cast<float>(popular_items_.size());
    for (std::size_t c = 0; c < dim; ++c) {
      grad[c] = grad[c] * scale -
                2.0f * config_.anchor_weight * (u[c] - anchor[c]);
      u[c] += step * grad[c];
    }
  }
  OBS_COUNTER_ADD("attack.ascent_steps", config_.ascent_steps);

  // Discretize: the target item plus the optimized embedding's nearest
  // items (ties on item id so the profile is platform-independent).
  const std::size_t num_items = dataset_->target.num_items();
  std::vector<std::pair<float, data::ItemId>> scored;
  scored.reserve(num_items - 1);
  for (data::ItemId item = 0; item < num_items; ++item) {
    if (item == target_item_) continue;
    scored.emplace_back(Dot(u, items.Row(item)), item);
  }
  const std::size_t keep =
      std::min(config_.profile_length - 1, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  data::Profile profile;
  profile.reserve(keep + 1);
  for (std::size_t i = 0; i < keep; ++i) profile.push_back(scored[i].second);
  profile.insert(
      profile.begin() + static_cast<std::ptrdiff_t>(profile.size() / 2),
      target_item_);
  return profile;
}

double SurrogateTransferAttack::RunEpisode(core::AttackEnvironment& env,
                                           util::Rng& rng) {
  (void)rng;  // all stochastic choices come from the checkpointed stream
  CA_CHECK_NE(target_item_, data::kNoItem);
  OBS_SPAN("attack.surrogate_transfer_episode");

  const std::size_t num_users = dataset_->target.num_users();
  data::UserId episode_seed_user;
  if (eval_mode_ && best_seed_user_ != data::kNoUser) {
    episode_seed_user = best_seed_user_;
  } else {
    episode_seed_user =
        static_cast<data::UserId>(ascent_rng_.UniformUint64(num_users));
  }

  double last_reward = 0.0;
  while (!env.done()) {
    data::Profile profile = CraftProfile(episode_seed_user, ascent_rng_);
    const auto result = env.Step(std::move(profile));
    if (result.queried) {
      last_reward = result.reward;
      OBS_COUNTER_INC("attack.transfer_queries");
    }
  }

  ++episodes_run_;
  if (!eval_mode_) {
    if (last_reward > best_reward_) {
      best_reward_ = last_reward;
      best_seed_user_ = episode_seed_user;
    } else {
      step_scale_ =
          std::max(config_.min_step_scale, step_scale_ * config_.step_decay);
    }
  }
  return last_reward;
}

bool SurrogateTransferAttack::SaveState(std::ostream& out) {
  out.write(reinterpret_cast<const char*>(&step_scale_),
            sizeof(step_scale_));
  out.write(reinterpret_cast<const char*>(&best_reward_),
            sizeof(best_reward_));
  out.write(reinterpret_cast<const char*>(&best_seed_user_),
            sizeof(best_seed_user_));
  out.write(reinterpret_cast<const char*>(&episodes_run_),
            sizeof(episodes_run_));
  const util::RngState rng_state = ascent_rng_.SaveState();
  out.write(reinterpret_cast<const char*>(rng_state.words),
            sizeof(rng_state.words));
  const std::uint8_t has_normal = rng_state.has_cached_normal ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&has_normal), sizeof(has_normal));
  out.write(reinterpret_cast<const char*>(&rng_state.cached_normal),
            sizeof(rng_state.cached_normal));
  return static_cast<bool>(out);
}

bool SurrogateTransferAttack::LoadState(std::istream& in) {
  in.read(reinterpret_cast<char*>(&step_scale_), sizeof(step_scale_));
  in.read(reinterpret_cast<char*>(&best_reward_), sizeof(best_reward_));
  in.read(reinterpret_cast<char*>(&best_seed_user_),
          sizeof(best_seed_user_));
  in.read(reinterpret_cast<char*>(&episodes_run_), sizeof(episodes_run_));
  util::RngState rng_state;
  std::uint8_t has_normal = 0;
  in.read(reinterpret_cast<char*>(rng_state.words),
          sizeof(rng_state.words));
  in.read(reinterpret_cast<char*>(&has_normal), sizeof(has_normal));
  in.read(reinterpret_cast<char*>(&rng_state.cached_normal),
          sizeof(rng_state.cached_normal));
  if (!in) return false;
  rng_state.has_cached_normal = has_normal != 0;
  ascent_rng_.RestoreState(rng_state);
  return true;
}

}  // namespace copyattack::attack
