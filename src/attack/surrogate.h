#ifndef COPYATTACK_ATTACK_SURROGATE_H_
#define COPYATTACK_ATTACK_SURROGATE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/types.h"
#include "math/matrix.h"
#include "rec/matrix_factorization.h"

namespace copyattack::attack {

/// Training budget of the attacker's local surrogate. The surrogate is
/// trained once per (dataset, config) from a fixed seed, so every shard of
/// a sharded campaign — and every resume of a checkpointed one — derives
/// the identical model; attack outcomes stay bit-identical across shard
/// counts and kill-and-resume without the surrogate ever being part of a
/// checkpoint.
struct SurrogateConfig {
  std::size_t embedding_dim = 8;
  /// BPR epochs over the observable interactions. Deliberately small: the
  /// surrogate only has to rank items roughly like the target model does,
  /// and its cost is pure attacker overhead (`attack.surrogate_epochs`
  /// counts it toward --telemetry_out).
  std::size_t epochs = 12;
  /// Fixed training seed — NOT derived from the campaign seed, see above.
  std::uint64_t seed = 0x5A11E27ULL;
};

/// The attacker's local stand-in for the black-box target recommender
/// (arXiv:2008.04876's "surrogate then transfer" setup): a BPR matrix
/// factorization fitted on the target-domain interactions the attacker can
/// scrape from the platform. Strategies craft or rank profiles against
/// this model and only spend real oracle queries on the transfer.
///
/// Read-only after construction; one instance is shared by every
/// per-target strategy the factory creates.
class TargetSurrogate {
 public:
  /// Trains the surrogate on `observable` (the attacker's scrape of the
  /// target domain).
  TargetSurrogate(const data::Dataset& observable,
                  const SurrogateConfig& config);

  const math::Matrix& item_embeddings() const {
    return mf_.item_embeddings();
  }
  const math::Matrix& user_embeddings() const {
    return mf_.user_embeddings();
  }
  std::size_t embedding_dim() const { return mf_.embedding_dim(); }
  std::size_t num_items() const { return item_embeddings().rows(); }

  /// Fold-in embedding of an arbitrary profile (mean of its items'
  /// embeddings — the same fold-in the MF model applies to new users).
  std::vector<float> FoldInProfile(const data::Profile& profile) const;

  /// Surrogate preference score of a virtual user vector for `item`.
  float Score(const std::vector<float>& user_vec, data::ItemId item) const;

  /// Mean user embedding over the trained (genuine) users — the rank-one
  /// summary the influence estimate projects candidate profiles onto.
  const std::vector<float>& mean_user_embedding() const {
    return mean_user_embedding_;
  }

 private:
  rec::MatrixFactorization mf_;
  std::vector<float> mean_user_embedding_;
};

}  // namespace copyattack::attack

#endif  // COPYATTACK_ATTACK_SURROGATE_H_
