#ifndef COPYATTACK_ATTACK_SURROGATE_TRANSFER_H_
#define COPYATTACK_ATTACK_SURROGATE_TRANSFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/surrogate.h"
#include "core/attack_strategy.h"
#include "data/cross_domain.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace copyattack::attack {

/// Hyper-parameters of the surrogate-transfer attacker.
struct SurrogateTransferConfig {
  /// Gradient-ascent steps per crafted profile.
  std::size_t ascent_steps = 24;
  /// Base step size of the ascent (scaled by the learned step scale).
  float step_size = 0.35f;
  /// L2 pull toward the genuine seed embedding — keeps the virtual user on
  /// the data manifold so the discretized profile stays plausible.
  float anchor_weight = 0.08f;
  /// Items per crafted profile, including the target item.
  std::size_t profile_length = 16;
  /// Popular items the target must outrank in the BPR-style objective.
  std::size_t popular_negatives = 32;
  /// Multiplied into the step scale after an episode that fails to improve
  /// the best reward (simulated-annealing style refinement).
  double step_decay = 0.7;
  double min_step_scale = 0.05;
};

/// Surrogate-then-transfer adversarial injection (after arXiv:2008.04876):
/// the attacker trains a local MF surrogate on the observable
/// target-domain data, crafts each injected profile by gradient ascent of
/// a virtual user embedding on the surrogate's target-item promotion
/// objective, discretizes the optimized embedding to a concrete profile
/// (target item + nearest items), and transfers the profiles through the
/// real black-box oracle. Episodes adapt two things from transfer
/// feedback: the ascent step scale (decayed when an episode fails to beat
/// the best reward so far) and the genuine seed user the eval-mode episode
/// anchors on.
class SurrogateTransferAttack
    CA_CHECKPOINTED(SurrogateTransferAttack::SaveState,
                    SurrogateTransferAttack::LoadState)
    final : public core::AttackStrategy {
 public:
  /// `dataset` is borrowed and must outlive the strategy; the surrogate is
  /// shared read-only between every per-target instance of a campaign.
  SurrogateTransferAttack(const data::CrossDomainDataset* dataset,
                          std::shared_ptr<const TargetSurrogate> surrogate,
                          const SurrogateTransferConfig& config,
                          std::uint64_t seed);

  std::string name() const override { return "SurrogateTransfer"; }
  void BeginTargetItem(data::ItemId target_item) override;
  double RunEpisode(core::AttackEnvironment& env, util::Rng& rng) override;
  void SetEvalMode(bool eval_mode) override { eval_mode_ = eval_mode; }

  /// Cross-episode mutable state: the adaptive step scale, the best
  /// transfer reward observed, the seed user that achieved it, the episode
  /// counter, and the crafting RNG stream.
  bool SaveState(std::ostream& out) override;
  bool LoadState(std::istream& in) override;

  /// Current ascent step scale (exposed for tests).
  double step_scale() const { return step_scale_; }

 private:
  /// Optimizes a virtual user embedding from `seed_user`'s fold-in and
  /// discretizes it into an injectable profile containing the target item.
  data::Profile CraftProfile(data::UserId seed_user, util::Rng& rng);

  const data::CrossDomainDataset* dataset_
      CA_NOT_CHECKPOINTED("borrowed pointer, rebound at construction");
  std::shared_ptr<const TargetSurrogate> surrogate_ CA_NOT_CHECKPOINTED(
      "shared read-only model, deterministically retrained at construction");
  SurrogateTransferConfig config_ CA_NOT_CHECKPOINTED(
      "configuration, part of the campaign fingerprint, not mutable state");

  double step_scale_ = 1.0;
  double best_reward_ = -1.0;
  data::UserId best_seed_user_ = data::kNoUser;
  std::uint64_t episodes_run_ = 0;
  util::Rng ascent_rng_;

  data::ItemId target_item_
      CA_NOT_CHECKPOINTED("per-target, reset by BeginTargetItem") =
          data::kNoItem;
  /// Head of the popularity ranking the target must outrank; derived in
  /// BeginTargetItem, deterministic in (dataset, config).
  std::vector<data::ItemId> popular_items_
      CA_NOT_CHECKPOINTED("per-target, derived in BeginTargetItem");
  bool eval_mode_ CA_NOT_CHECKPOINTED("transient evaluation toggle") = false;
};

}  // namespace copyattack::attack

#endif  // COPYATTACK_ATTACK_SURROGATE_TRANSFER_H_
