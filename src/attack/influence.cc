#include "attack/influence.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <utility>

#include "core/crafting.h"
#include "obs/obs.h"
#include "util/check.h"

namespace copyattack::attack {

InfluenceAttack::InfluenceAttack(
    const data::CrossDomainDataset* dataset,
    std::shared_ptr<const TargetSurrogate> surrogate,
    const InfluenceConfig& config, std::uint64_t seed)
    : dataset_(dataset), surrogate_(std::move(surrogate)), config_(config) {
  (void)seed;  // the analytic pick is deterministic; kept for factory parity
  CA_CHECK(dataset_ != nullptr);
  CA_CHECK(surrogate_ != nullptr);
  CA_CHECK_GT(config_.keep_fraction, 0.0);
  CA_CHECK_LE(config_.keep_fraction, 1.0);
  CA_CHECK_EQ(surrogate_->num_items(), dataset_->target.num_items());
}

void InfluenceAttack::BeginTargetItem(data::ItemId target_item) {
  OBS_SPAN("attack.influence_rank");
  target_item_ = target_item;
  std::vector<data::UserId> candidates = dataset_->SourceHolders(target_item);
  CA_CHECK(!candidates.empty())
      << "target item " << target_item << " has no source holders";
  if (config_.max_candidates > 0 &&
      candidates.size() > config_.max_candidates) {
    candidates.resize(config_.max_candidates);
  }

  // Score each candidate by the influence estimate ⟨v̄, μ_P⟩ of its
  // *crafted* profile (the window actually injected), then rank
  // descending; ties break on user id so the ranking is
  // platform-independent.
  const std::vector<float>& mean_user = surrogate_->mean_user_embedding();
  std::vector<std::pair<double, data::UserId>> scored;
  scored.reserve(candidates.size());
  for (const data::UserId user : candidates) {
    const data::Profile window = core::ClipProfileAroundTarget(
        dataset_->source.UserProfile(user), target_item_,
        config_.keep_fraction);
    const std::vector<float> fold_in = surrogate_->FoldInProfile(window);
    double influence = 0.0;
    for (std::size_t c = 0; c < fold_in.size(); ++c) {
      influence += static_cast<double>(mean_user[c]) *
                   static_cast<double>(fold_in[c]);
    }
    scored.emplace_back(influence, user);
    ++influence_evals_;
    OBS_COUNTER_INC("attack.influence_evals");
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  ranked_.clear();
  ranked_.reserve(scored.size());
  for (const auto& [influence, user] : scored) ranked_.push_back(user);
}

double InfluenceAttack::RunEpisode(core::AttackEnvironment& env,
                                   util::Rng& rng) {
  (void)rng;  // the pick is analytic; nothing to sample
  CA_CHECK_NE(target_item_, data::kNoItem);
  OBS_SPAN("attack.influence_episode");

  double last_reward = 0.0;
  std::size_t position = cursor_;
  while (!env.done()) {
    const data::UserId user = ranked_[position % ranked_.size()];
    ++position;
    data::Profile crafted = core::ClipProfileAroundTarget(
        dataset_->source.UserProfile(user), target_item_,
        config_.keep_fraction);
    const auto result = env.Step(std::move(crafted));
    if (result.queried) {
      last_reward = result.reward;
      OBS_COUNTER_INC("attack.transfer_queries");
    }
  }

  ++episodes_run_;
  if (!eval_mode_) {
    if (last_reward > best_reward_) {
      best_reward_ = last_reward;
    } else {
      // The head of the window underperformed: slide one position down the
      // influence ranking for the next episode.
      cursor_ = (cursor_ + 1) % ranked_.size();
    }
  }
  return last_reward;
}

bool InfluenceAttack::SaveState(std::ostream& out) {
  const std::uint64_t cursor = cursor_;
  out.write(reinterpret_cast<const char*>(&cursor), sizeof(cursor));
  out.write(reinterpret_cast<const char*>(&best_reward_),
            sizeof(best_reward_));
  out.write(reinterpret_cast<const char*>(&episodes_run_),
            sizeof(episodes_run_));
  out.write(reinterpret_cast<const char*>(&influence_evals_),
            sizeof(influence_evals_));
  return static_cast<bool>(out);
}

bool InfluenceAttack::LoadState(std::istream& in) {
  std::uint64_t cursor = 0;
  in.read(reinterpret_cast<char*>(&cursor), sizeof(cursor));
  cursor_ = static_cast<std::size_t>(cursor);
  in.read(reinterpret_cast<char*>(&best_reward_), sizeof(best_reward_));
  in.read(reinterpret_cast<char*>(&episodes_run_), sizeof(episodes_run_));
  in.read(reinterpret_cast<char*>(&influence_evals_),
          sizeof(influence_evals_));
  return static_cast<bool>(in);
}

}  // namespace copyattack::attack
