#ifndef COPYATTACK_ATTACK_INFLUENCE_H_
#define COPYATTACK_ATTACK_INFLUENCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/surrogate.h"
#include "core/attack_strategy.h"
#include "data/cross_domain.h"
#include "util/annotations.h"

namespace copyattack::attack {

/// Hyper-parameters of the influence-function attacker.
struct InfluenceConfig {
  /// Fraction of each candidate profile kept around the target item when
  /// crafting the injected window (cf. TargetAttack's keep fraction).
  double keep_fraction = 0.7;
  /// Cap on the candidate source holders scored per target item (0 = all).
  std::size_t max_candidates = 512;
};

/// Influence-function profile selection (after arXiv:2002.08025): instead
/// of learning which cross-domain profiles to copy, rank every candidate
/// by a first-order estimate of its effect on the target item's exposure
/// under the local surrogate, and inject the top of the ranking.
///
/// The influence approximation is deliberately closed-form: injecting
/// profile P perturbs the target item's embedding toward P's fold-in mean
/// μ_P (the surrogate's update direction for a user who interacted with
/// the target), so the first-order change of the population score
/// Σ_v ⟨v, q_t⟩ is proportional to ⟨v̄, μ_P⟩ with v̄ the mean genuine user
/// embedding. Ranking candidates by that inner product is one dot product
/// per profile — a one-shot analytic pick replacing CopyAttack's learned
/// selection.
///
/// Episodes refine the pick greedily from transfer feedback: an episode
/// that fails to improve the best reward advances the injection window one
/// position down the ranking.
class InfluenceAttack CA_CHECKPOINTED(InfluenceAttack::SaveState,
                                      InfluenceAttack::LoadState)
    final : public core::AttackStrategy {
 public:
  /// `dataset` is borrowed and must outlive the strategy; the surrogate is
  /// shared read-only between every per-target instance of a campaign.
  InfluenceAttack(const data::CrossDomainDataset* dataset,
                  std::shared_ptr<const TargetSurrogate> surrogate,
                  const InfluenceConfig& config, std::uint64_t seed);

  std::string name() const override { return "Influence"; }
  void BeginTargetItem(data::ItemId target_item) override;
  double RunEpisode(core::AttackEnvironment& env, util::Rng& rng) override;
  void SetEvalMode(bool eval_mode) override { eval_mode_ = eval_mode; }

  /// Cross-episode mutable state: the ranking cursor, the best transfer
  /// reward, and the episode/evaluation counters.
  bool SaveState(std::ostream& out) override;
  bool LoadState(std::istream& in) override;

  /// The influence-ranked candidate source users for the current target
  /// (exposed for tests).
  const std::vector<data::UserId>& ranked_candidates() const {
    return ranked_;
  }
  std::size_t cursor() const { return cursor_; }

 private:
  const data::CrossDomainDataset* dataset_
      CA_NOT_CHECKPOINTED("borrowed pointer, rebound at construction");
  std::shared_ptr<const TargetSurrogate> surrogate_ CA_NOT_CHECKPOINTED(
      "shared read-only model, deterministically retrained at construction");
  InfluenceConfig config_ CA_NOT_CHECKPOINTED(
      "configuration, part of the campaign fingerprint, not mutable state");

  std::size_t cursor_ = 0;
  double best_reward_ = -1.0;
  std::uint64_t episodes_run_ = 0;
  std::uint64_t influence_evals_ = 0;

  data::ItemId target_item_
      CA_NOT_CHECKPOINTED("per-target, reset by BeginTargetItem") =
          data::kNoItem;
  std::vector<data::UserId> ranked_ CA_NOT_CHECKPOINTED(
      "per-target, deterministically derived in BeginTargetItem");
  bool eval_mode_ CA_NOT_CHECKPOINTED("transient evaluation toggle") = false;
};

}  // namespace copyattack::attack

#endif  // COPYATTACK_ATTACK_INFLUENCE_H_
