#include "serve/job_queue.h"

#include <iterator>
#include <set>
#include <utility>

#include "util/check.h"
#include "util/string_utils.h"

namespace copyattack::serve {

namespace {

bool ValidJobId(const std::string& id) {
  if (id.empty()) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool RowError(std::size_t line, const std::string& what,
              std::string* error) {
  *error = "jobs csv line " + std::to_string(line) + ": " + what;
  return false;
}

}  // namespace

bool ParseJobsCsv(std::istream& in, std::vector<PromotionJob>* jobs,
                  std::string* error) {
  CA_CHECK(jobs != nullptr);
  CA_CHECK(error != nullptr);
  std::string line;
  std::size_t line_number = 0;
  std::set<std::string> seen_ids;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> fields = util::Split(trimmed, ',');
    if (util::Trim(fields.front()) == "id") continue;  // header row
    if (fields.size() != 6) {
      return RowError(line_number,
                      "expected 6 fields (id,method,targets,budget,"
                      "episodes,seed), got " +
                          std::to_string(fields.size()),
                      error);
    }
    PromotionJob job;
    job.id = std::string(util::Trim(fields[0]));
    if (job.id.empty()) {
      return RowError(line_number,
                      "job id must not be blank or whitespace-only",
                      error);
    }
    if (!ValidJobId(job.id)) {
      return RowError(line_number,
                      "job id must match [A-Za-z0-9_-]+, got '" + job.id +
                          "'",
                      error);
    }
    // A duplicate id would collide on `checkpoint_root/job_<id>`: the
    // second job would silently resume the first one's checkpoint.
    if (!seen_ids.insert(job.id).second) {
      return RowError(line_number, "duplicate job id '" + job.id + "'",
                      error);
    }
    job.method = std::string(util::Trim(fields[1]));
    if (job.method.empty()) {
      return RowError(line_number, "method must not be empty", error);
    }
    struct NumField {
      const char* name;
      std::size_t index;
      std::size_t* out;
      bool positive;
    };
    std::size_t seed_value = 0;
    const NumField numbers[] = {
        {"targets", 2, &job.num_targets, true},
        {"budget", 3, &job.budget, true},
        {"episodes", 4, &job.episodes, true},
        {"seed", 5, &seed_value, false},
    };
    for (const NumField& field : numbers) {
      if (!util::ParseSizeT(util::Trim(fields[field.index]), field.out) ||
          (field.positive && *field.out == 0)) {
        return RowError(line_number,
                        std::string(field.name) +
                            " must be a positive integer, got '" +
                            std::string(util::Trim(fields[field.index])) +
                            "'",
                        error);
      }
    }
    job.seed = static_cast<std::uint64_t>(seed_value);
    jobs->push_back(std::move(job));
  }
  return true;
}

void WriteJobsCsv(const std::vector<PromotionJob>& jobs, std::ostream& out) {
  out << "id,method,targets,budget,episodes,seed\n";
  for (const PromotionJob& job : jobs) {
    out << job.id << ',' << job.method << ',' << job.num_targets << ','
        << job.budget << ',' << job.episodes << ',' << job.seed << '\n';
  }
}

void JobQueue::Push(PromotionJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CA_CHECK(!closed_) << "JobQueue::Push after Close";
    jobs_.push_back(std::move(job));
  }
  job_available_.notify_one();
}

void JobQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  job_available_.notify_all();
}

bool JobQueue::Pop(PromotionJob* job) {
  CA_CHECK(job != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  job_available_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return false;  // closed and drained
  *job = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

std::size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::vector<PromotionJob> JobQueue::TakeRemaining() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PromotionJob> remaining(
      std::make_move_iterator(jobs_.begin()),
      std::make_move_iterator(jobs_.end()));
  jobs_.clear();
  return remaining;
}

}  // namespace copyattack::serve
