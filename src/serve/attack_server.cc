#include "serve/attack_server.h"

#include <memory>
#include <utility>

#include "attack/influence.h"
#include "attack/surrogate.h"
#include "attack/surrogate_transfer.h"
#include "core/baselines.h"
#include "core/copy_attack.h"
#include "core/flat_policy.h"
#include "data/target_items.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace copyattack::serve {

const std::vector<std::string>& RegisteredMethods() {
  static const std::vector<std::string> methods = {
      "RandomAttack",       "TargetAttack40",
      "TargetAttack70",     "TargetAttack100",
      "PolicyNetwork",      "CopyAttack",
      "CopyAttack-Masking", "CopyAttack-Length",
      "SurrogateTransfer",  "Influence"};
  return methods;
}

StrategySpec MakeStrategyFactory(const data::CrossDomainDataset& dataset,
                                 const core::SourceArtifacts& artifacts,
                                 const std::string& method) {
  StrategySpec spec;
  if (method == "RandomAttack") {
    spec.learns = false;
    spec.factory = [&dataset](std::uint64_t) {
      return std::make_unique<core::RandomAttack>(dataset);
    };
  } else if (method == "TargetAttack40" || method == "TargetAttack70" ||
             method == "TargetAttack100") {
    spec.learns = false;
    const double keep = method == "TargetAttack40"   ? 0.4
                        : method == "TargetAttack70" ? 0.7
                                                     : 1.0;
    spec.factory = [&dataset, keep](std::uint64_t) {
      return std::make_unique<core::TargetAttack>(dataset, keep);
    };
  } else if (method == "PolicyNetwork") {
    spec.factory = [&dataset, &artifacts](std::uint64_t seed) {
      return std::make_unique<core::FlatPolicyNetwork>(
          &dataset, &artifacts.mf.user_embeddings(),
          &artifacts.mf.item_embeddings(),
          core::FlatPolicyNetwork::Config{}, seed);
    };
  } else if (method == "CopyAttack" || method == "CopyAttack-Masking" ||
             method == "CopyAttack-Length") {
    core::CopyAttackConfig config;
    config.use_masking = method != "CopyAttack-Masking";
    config.use_crafting = method != "CopyAttack-Length";
    spec.factory = [&dataset, &artifacts, config](std::uint64_t seed) {
      return std::make_unique<core::CopyAttack>(
          &dataset, &artifacts.tree, &artifacts.mf.user_embeddings(),
          &artifacts.mf.item_embeddings(), config, seed);
    };
  } else if (method == "SurrogateTransfer" ||
             method == "surrogate_transfer") {
    // The surrogate trains here, once, from a fixed seed (attack/
    // surrogate.h): every per-target strategy of the campaign — on every
    // shard, and again after a resume — shares the identical read-only
    // model, so the method stays bit-identical across shard counts and
    // kill-and-resume.
    auto surrogate = std::make_shared<const attack::TargetSurrogate>(
        dataset.target, attack::SurrogateConfig{});
    spec.factory = [&dataset, surrogate](std::uint64_t seed) {
      return std::make_unique<attack::SurrogateTransferAttack>(
          &dataset, surrogate, attack::SurrogateTransferConfig{}, seed);
    };
  } else if (method == "Influence" || method == "influence") {
    auto surrogate = std::make_shared<const attack::TargetSurrogate>(
        dataset.target, attack::SurrogateConfig{});
    spec.factory = [&dataset, surrogate](std::uint64_t seed) {
      return std::make_unique<attack::InfluenceAttack>(
          &dataset, surrogate, attack::InfluenceConfig{}, seed);
    };
  }
  if (!spec.factory) {
    spec.error = "unknown --method '" + method + "'; registered methods:";
    for (const std::string& name : RegisteredMethods()) {
      spec.error += ' ' + name;
    }
  }
  return spec;
}

AttackServer::AttackServer(const data::CrossDomainDataset& dataset,
                           const data::Dataset& target_train,
                           core::ModelFactory model_factory,
                           const core::SourceArtifacts& artifacts,
                           const ServerConfig& config)
    : dataset_(dataset),
      target_train_(target_train),
      model_factory_(std::move(model_factory)),
      artifacts_(artifacts),
      config_(config) {
  CA_CHECK(model_factory_ != nullptr);
  CA_CHECK_GT(config_.runner.jobs, 0U)
      << "--jobs must be a positive integer";
}

JobReport AttackServer::RunJob(const PromotionJob& job) {
  OBS_SPAN("server.job");
  JobReport report;
  report.job = job;

  const StrategySpec spec =
      MakeStrategyFactory(dataset_, artifacts_, job.method);
  if (!spec.factory) {
    report.error = spec.error;
    ++jobs_failed_;
    OBS_COUNTER_INC("server.job_failures");
    CA_LOG(Warning) << "server: job " << job.id << " rejected: "
                    << report.error;
    return report;
  }

  util::Rng target_rng(job.seed);
  const std::vector<data::ItemId> targets = data::SampleColdTargetItems(
      dataset_, job.num_targets, config_.cold_max_interactions,
      target_rng);

  core::CampaignConfig campaign;
  campaign.env.budget = job.budget;
  campaign.episodes = spec.learns ? job.episodes : 1;
  campaign.seed = job.seed;

  core::ParallelRunnerOptions options = config_.runner;
  options.checkpoint = core::CampaignCheckpointOptions{};
  // The simulated-crash hook passes through so tests can kill a job
  // mid-campaign and resume it.
  options.checkpoint.abort_after_episodes =
      config_.runner.checkpoint.abort_after_episodes;
  if (!config_.checkpoint_root.empty()) {
    options.checkpoint.dir = config_.checkpoint_root + "/job_" + job.id;
    options.checkpoint.resume = config_.resume;
    options.checkpoint.every_episodes = config_.checkpoint_every;
  }

  const core::ParallelCampaignRunner runner(dataset_, target_train_,
                                            model_factory_, spec.factory,
                                            options);
  report.result = runner.Run(targets, campaign);
  report.ok = true;
  ++jobs_run_;
  OBS_COUNTER_INC("server.jobs");
  CA_LOG(Info) << "server: job " << job.id << " (" << job.method << ", "
               << targets.size() << " targets) done";
  return report;
}

std::vector<JobReport> AttackServer::Drain(JobQueue* queue) {
  CA_CHECK(queue != nullptr);
  std::vector<JobReport> reports;
  PromotionJob job;
  while (queue->Pop(&job)) {
    OBS_GAUGE_SET("server.queue_depth",
                  static_cast<double>(queue->pending()));
    reports.push_back(RunJob(job));
  }
  return reports;
}

}  // namespace copyattack::serve
