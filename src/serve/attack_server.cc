#include "serve/attack_server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>

#include "attack/influence.h"
#include "attack/surrogate.h"
#include "attack/surrogate_transfer.h"
#include "core/baselines.h"
#include "core/copy_attack.h"
#include "core/flat_policy.h"
#include "data/target_items.h"
#include "fault/crash_point.h"
#include "obs/obs.h"
#include "obs/time.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace copyattack::serve {

namespace {

/// Set from the SIGTERM/SIGINT handler: a lock-free atomic store is the
/// whole async-signal-safe surface. Everything else (persisting the
/// remaining queue, flushing checkpoints) happens on the serving thread
/// once it observes the flag at a yield point.
std::atomic<bool> g_drain_requested{false};

void DrainSignalHandler(int /*signum*/) {
  g_drain_requested.store(true, std::memory_order_relaxed);
}

/// CSV-safe single field: commas and newlines in free-text error
/// messages would break the quarantine CSV's row structure.
std::string CsvSanitize(std::string text) {
  for (char& c : text) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return text;
}

std::size_t ReadAttempts(const std::string& job_dir) {
  if (job_dir.empty()) return 0;
  std::ifstream in(AttemptsPath(job_dir));
  if (!in) return 0;
  std::string text;
  std::getline(in, text);
  std::size_t attempts = 0;
  if (!util::ParseSizeT(util::Trim(text), &attempts)) return 0;
  return attempts;
}

void WriteAttempts(const std::string& job_dir, std::size_t attempts) {
  if (job_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(job_dir, ec);  // best effort
  std::ofstream out(AttemptsPath(job_dir), std::ios::trunc);
  if (out) out << attempts << '\n';
}

void ClearAttempts(const std::string& job_dir) {
  if (job_dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove(AttemptsPath(job_dir), ec);
}

/// Appends one quarantine row (header on first write).
void AppendQuarantineRow(const std::string& checkpoint_root,
                         const PromotionJob& job, std::size_t attempts,
                         const std::string& last_error) {
  if (checkpoint_root.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(checkpoint_root, ec);
  const std::string path = QuarantinePath(checkpoint_root);
  const bool fresh = !std::filesystem::exists(path, ec);
  std::ofstream out(path, std::ios::app);
  if (!out) {
    CA_LOG(Warning) << "server: cannot append to quarantine file " << path;
    return;
  }
  if (fresh) {
    out << "id,method,targets,budget,episodes,seed,attempts,last_error\n";
  }
  out << job.id << ',' << job.method << ',' << job.num_targets << ','
      << job.budget << ',' << job.episodes << ',' << job.seed << ','
      << attempts << ',' << CsvSanitize(last_error) << '\n';
}

}  // namespace

void RequestDrain() {
  g_drain_requested.store(true, std::memory_order_relaxed);
}

bool DrainRequested() {
  return g_drain_requested.load(std::memory_order_relaxed);
}

void ResetDrainForTest() {
  g_drain_requested.store(false, std::memory_order_relaxed);
}

void InstallDrainSignalHandlers() {
  std::signal(SIGTERM, DrainSignalHandler);
  std::signal(SIGINT, DrainSignalHandler);
}

std::string QuarantinePath(const std::string& checkpoint_root) {
  return (std::filesystem::path(checkpoint_root) / "quarantine.csv")
      .string();
}

std::string RemainingJobsPath(const std::string& checkpoint_root) {
  return (std::filesystem::path(checkpoint_root) / "remaining_jobs.csv")
      .string();
}

std::string AttemptsPath(const std::string& job_dir) {
  return (std::filesystem::path(job_dir) / "attempts.count").string();
}

const std::vector<std::string>& RegisteredMethods() {
  static const std::vector<std::string> methods = {
      "RandomAttack",       "TargetAttack40",
      "TargetAttack70",     "TargetAttack100",
      "PolicyNetwork",      "CopyAttack",
      "CopyAttack-Masking", "CopyAttack-Length",
      "SurrogateTransfer",  "Influence"};
  return methods;
}

StrategySpec MakeStrategyFactory(const data::CrossDomainDataset& dataset,
                                 const core::SourceArtifacts& artifacts,
                                 const std::string& method) {
  StrategySpec spec;
  if (method == "RandomAttack") {
    spec.learns = false;
    spec.factory = [&dataset](std::uint64_t) {
      return std::make_unique<core::RandomAttack>(dataset);
    };
  } else if (method == "TargetAttack40" || method == "TargetAttack70" ||
             method == "TargetAttack100") {
    spec.learns = false;
    const double keep = method == "TargetAttack40"   ? 0.4
                        : method == "TargetAttack70" ? 0.7
                                                     : 1.0;
    spec.factory = [&dataset, keep](std::uint64_t) {
      return std::make_unique<core::TargetAttack>(dataset, keep);
    };
  } else if (method == "PolicyNetwork") {
    spec.factory = [&dataset, &artifacts](std::uint64_t seed) {
      return std::make_unique<core::FlatPolicyNetwork>(
          &dataset, &artifacts.mf.user_embeddings(),
          &artifacts.mf.item_embeddings(),
          core::FlatPolicyNetwork::Config{}, seed);
    };
  } else if (method == "CopyAttack" || method == "CopyAttack-Masking" ||
             method == "CopyAttack-Length") {
    core::CopyAttackConfig config;
    config.use_masking = method != "CopyAttack-Masking";
    config.use_crafting = method != "CopyAttack-Length";
    spec.factory = [&dataset, &artifacts, config](std::uint64_t seed) {
      return std::make_unique<core::CopyAttack>(
          &dataset, &artifacts.tree, &artifacts.mf.user_embeddings(),
          &artifacts.mf.item_embeddings(), config, seed);
    };
  } else if (method == "SurrogateTransfer" ||
             method == "surrogate_transfer") {
    // The surrogate trains here, once, from a fixed seed (attack/
    // surrogate.h): every per-target strategy of the campaign — on every
    // shard, and again after a resume — shares the identical read-only
    // model, so the method stays bit-identical across shard counts and
    // kill-and-resume.
    auto surrogate = std::make_shared<const attack::TargetSurrogate>(
        dataset.target, attack::SurrogateConfig{});
    spec.factory = [&dataset, surrogate](std::uint64_t seed) {
      return std::make_unique<attack::SurrogateTransferAttack>(
          &dataset, surrogate, attack::SurrogateTransferConfig{}, seed);
    };
  } else if (method == "Influence" || method == "influence") {
    auto surrogate = std::make_shared<const attack::TargetSurrogate>(
        dataset.target, attack::SurrogateConfig{});
    spec.factory = [&dataset, surrogate](std::uint64_t seed) {
      return std::make_unique<attack::InfluenceAttack>(
          &dataset, surrogate, attack::InfluenceConfig{}, seed);
    };
  }
  if (!spec.factory) {
    spec.error = "unknown --method '" + method + "'; registered methods:";
    for (const std::string& name : RegisteredMethods()) {
      spec.error += ' ' + name;
    }
  }
  return spec;
}

AttackServer::AttackServer(const data::CrossDomainDataset& dataset,
                           const data::Dataset& target_train,
                           core::ModelFactory model_factory,
                           const core::SourceArtifacts& artifacts,
                           const ServerConfig& config)
    : dataset_(dataset),
      target_train_(target_train),
      model_factory_(std::move(model_factory)),
      artifacts_(artifacts),
      config_(config) {
  CA_CHECK(model_factory_ != nullptr);
  CA_CHECK_GT(config_.runner.jobs, 0U)
      << "--jobs must be a positive integer";
}

JobReport AttackServer::RunJob(const PromotionJob& job) {
  OBS_SPAN("server.job");
  JobReport report;
  report.job = job;

  const StrategySpec spec =
      MakeStrategyFactory(dataset_, artifacts_, job.method);
  if (!spec.factory) {
    report.error = spec.error;
    ++jobs_failed_;
    OBS_COUNTER_INC("server.job_failures");
    CA_LOG(Warning) << "server: job " << job.id << " rejected: "
                    << report.error;
    return report;
  }

  util::Rng target_rng(job.seed);
  const std::vector<data::ItemId> targets = data::SampleColdTargetItems(
      dataset_, job.num_targets, config_.cold_max_interactions,
      target_rng);

  core::CampaignConfig campaign;
  campaign.env.budget = job.budget;
  campaign.episodes = spec.learns ? job.episodes : 1;
  campaign.seed = job.seed;

  const std::string job_dir =
      config_.checkpoint_root.empty()
          ? std::string()
          : config_.checkpoint_root + "/job_" + job.id;

  // Attempts already burned by crashed prior processes: the counter is
  // bumped on disk BEFORE each attempt runs and cleared only on success,
  // so a hard kill mid-attempt still counts against `max_attempts`.
  report.attempts = ReadAttempts(job_dir);
  const auto exhausted = [this](std::size_t attempts) {
    return config_.max_attempts > 0 && attempts >= config_.max_attempts;
  };
  if (exhausted(report.attempts)) {
    report.error = "quarantined before start: " +
                   std::to_string(report.attempts) +
                   " prior attempt(s) crashed or timed out";
    report.quarantined = true;
    ++jobs_failed_;
    OBS_COUNTER_INC("server.job_failures");
    OBS_COUNTER_INC("server.quarantined");
    AppendQuarantineRow(config_.checkpoint_root, job, report.attempts,
                        report.error);
    CA_LOG(Warning) << "server: job " << job.id << " " << report.error;
    return report;
  }

  const auto now_seconds = [this] {
    return static_cast<double>(config_.now_ns ? config_.now_ns()
                                              : obs::MonotonicNanos()) *
           1e-9;
  };

  // Retry loop: each attempt resumes from the job's last checkpoint (the
  // watchdog kill happens at an episode boundary, where the checkpoint
  // is already flushed — rollback and retry are the same operation).
  bool resume = config_.resume;
  while (true) {
    CA_CRASH_POINT("serve.job_begin");
    ++report.attempts;
    WriteAttempts(job_dir, report.attempts);

    core::ParallelRunnerOptions options = config_.runner;
    options.checkpoint = core::CampaignCheckpointOptions{};
    // The simulated-crash hook passes through so tests can kill a job
    // mid-campaign and resume it.
    options.checkpoint.abort_after_episodes =
        config_.runner.checkpoint.abort_after_episodes;
    if (!job_dir.empty()) {
      options.checkpoint.dir = job_dir;
      options.checkpoint.resume = resume;
      options.checkpoint.every_episodes = config_.checkpoint_every;
    }

    // Watchdog + drain, enforced cooperatively at episode boundaries.
    const double deadline = config_.job_deadline_seconds;
    const double started = deadline > 0.0 ? now_seconds() : 0.0;
    std::atomic<bool> deadline_hit{false};
    options.cancel = [this, deadline, started, &deadline_hit,
                      &now_seconds] {
      if (DrainRequested()) return true;
      if (deadline > 0.0 && now_seconds() - started > deadline) {
        deadline_hit.store(true, std::memory_order_relaxed);
        return true;
      }
      return deadline_hit.load(std::memory_order_relaxed);
    };

    const core::ParallelCampaignRunner runner(dataset_, target_train_,
                                              model_factory_,
                                              spec.factory, options);
    report.result = runner.Run(targets, campaign);

    if (deadline_hit.load(std::memory_order_relaxed)) {
      report.timed_out = true;
      report.error = "deadline exceeded (" +
                     std::to_string(report.attempts) + " attempt(s), " +
                     std::to_string(deadline) +
                     "s each); rolled back to last checkpoint";
      OBS_COUNTER_INC("server.watchdog_timeouts");
      CA_LOG(Warning) << "server: job " << job.id
                      << " deadline-killed on attempt " << report.attempts;
      if (exhausted(report.attempts)) {
        report.quarantined = true;
        ++jobs_failed_;
        OBS_COUNTER_INC("server.job_failures");
        OBS_COUNTER_INC("server.quarantined");
        AppendQuarantineRow(config_.checkpoint_root, job, report.attempts,
                            report.error);
        CA_LOG(Warning) << "server: job " << job.id << " quarantined";
        return report;
      }
      // Backoff, then retry from the checkpoint the killed attempt left.
      if (config_.retry_backoff_seconds > 0.0) {
        double backoff = config_.retry_backoff_seconds;
        for (std::size_t k = 1; k + 1 < report.attempts; ++k) {
          backoff *= 2.0;
        }
        if (config_.sleep_seconds) {
          config_.sleep_seconds(backoff);
        } else {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff));
        }
      }
      resume = !job_dir.empty();
      OBS_COUNTER_INC("server.retries");
      continue;
    }

    if (report.result.aggregate.aborted && DrainRequested()) {
      // Not a failure: the drain cut the job short at a checkpointed
      // boundary. Roll the attempt back so the restart doesn't pay for
      // our shutdown, and leave the checkpoint for `--resume`.
      report.drained = true;
      report.error = "drained before completion (checkpoint flushed)";
      if (report.attempts > 0) WriteAttempts(job_dir, report.attempts - 1);
      CA_LOG(Info) << "server: job " << job.id << " drained mid-run";
      return report;
    }

    // Success (or a simulated-crash abort from the test hook, which the
    // caller resumes explicitly). Crash point BEFORE the attempt counter
    // clears: a kill here must leave the job resumable, not quarantined
    // — the completed-targets checkpoint makes the rerun cheap.
    CA_CRASH_POINT("serve.job_commit");
    ClearAttempts(job_dir);
    report.ok = true;
    ++jobs_run_;
    OBS_COUNTER_INC("server.jobs");
    CA_LOG(Info) << "server: job " << job.id << " (" << job.method << ", "
                 << targets.size() << " targets) done on attempt "
                 << report.attempts;
    return report;
  }
}

std::vector<JobReport> AttackServer::Drain(JobQueue* queue) {
  CA_CHECK(queue != nullptr);
  std::vector<JobReport> reports;
  PromotionJob job;
  while (!DrainRequested() && queue->Pop(&job)) {
    OBS_GAUGE_SET("server.queue_depth",
                  static_cast<double>(queue->pending()));
    reports.push_back(RunJob(job));
  }
  if (DrainRequested()) {
    // Persist what we never got to run so the operator can restart with
    // `--queue remaining_jobs.csv --resume=1` and lose nothing. A job the
    // drain cut short mid-run goes back on the list first: its checkpoint
    // makes the rerun resume where the drain stopped it.
    std::vector<PromotionJob> remaining = queue->TakeRemaining();
    if (!reports.empty() && reports.back().drained) {
      remaining.insert(remaining.begin(), reports.back().job);
    }
    if (!config_.checkpoint_root.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config_.checkpoint_root, ec);
      std::ofstream out(RemainingJobsPath(config_.checkpoint_root),
                        std::ios::trunc);
      if (out) WriteJobsCsv(remaining, out);
    }
    CA_LOG(Info) << "server: drain requested; " << remaining.size()
                 << " queued job(s) persisted, exiting gracefully";
  }
  return reports;
}

}  // namespace copyattack::serve
