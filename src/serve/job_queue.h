#ifndef COPYATTACK_SERVE_JOB_QUEUE_H_
#define COPYATTACK_SERVE_JOB_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/annotations.h"

namespace copyattack::serve {

/// One queued promotion campaign: which attack method to run, how many
/// cold target items to promote, and with what budget. Jobs arrive on the
/// attack server's queue from a CSV file or stdin.
struct PromotionJob CA_CHECKPOINTED(WriteJobsCsv, ParseJobsCsv) {
  /// Job name, `[A-Za-z0-9_-]+`; also names the job's checkpoint
  /// directory (`<root>/job_<id>`), hence the restricted charset.
  std::string id;
  /// Attack method (`serve::MakeStrategyFactory` names).
  std::string method = "CopyAttack";
  /// Cold target items to sample (seeded by `seed`).
  std::size_t num_targets = 5;
  /// Profile budget Δ per episode.
  std::size_t budget = 30;
  /// Training episodes per target (forced to 1 for non-learning methods).
  std::size_t episodes = 5;
  /// Seed of the job's campaign (target sampling + per-item streams).
  std::uint64_t seed = 7;
};

/// Parses the attack-server job CSV: one `id,method,targets,budget,
/// episodes,seed` row per line. Blank lines and `#` comments are skipped,
/// as is an optional header row starting with `id`. Job ids must be
/// non-blank, match `[A-Za-z0-9_-]+`, and be unique across the file — a
/// duplicate would silently collide on `checkpoint_root/job_<id>` and the
/// second job would resume the first one's checkpoint. Returns false and
/// sets `*error` (with a line number) on the first malformed row; `*jobs`
/// then holds the rows parsed so far.
bool ParseJobsCsv(std::istream& in, std::vector<PromotionJob>* jobs,
                  std::string* error);

/// Writes jobs back out in the exact format `ParseJobsCsv` accepts
/// (header row included) — the round-trip half that lets a server persist
/// its remaining queue on shutdown.
void WriteJobsCsv(const std::vector<PromotionJob>& jobs, std::ostream& out);

/// Thread-safe FIFO of promotion jobs feeding the attack server. Any
/// thread may push; consumers block in `Pop` until a job arrives or the
/// queue is closed and drained — the standard producer/consumer shutdown
/// handshake, so a server draining a closed queue exits cleanly.
class JobQueue {
 public:
  /// Enqueues a job. Must not be called after `Close`.
  void Push(PromotionJob job);

  /// Closes the queue: pending jobs still drain, then `Pop` returns
  /// false forever. Idempotent.
  void Close();

  /// Blocks until a job is available (true, job moved into `*job`) or
  /// the queue is closed and empty (false).
  bool Pop(PromotionJob* job);

  /// Jobs currently queued (instantaneous, advisory).
  std::size_t pending() const;
  bool closed() const;

  /// Removes and returns every queued job without waiting — the drain
  /// path: a server shutting down on SIGTERM persists what it never got
  /// to run (`WriteJobsCsv`) instead of dropping it on the floor.
  std::vector<PromotionJob> TakeRemaining();

 private:
  /// Leaf lock: nothing else is acquired while it is held (the zero-arg
  /// annotation enters it into the lock-order graph with no out-edges).
  mutable std::mutex mutex_ CA_ACQUIRED_BEFORE();
  std::condition_variable job_available_;
  std::deque<PromotionJob> jobs_ CA_GUARDED_BY(mutex_);
  bool closed_ CA_GUARDED_BY(mutex_) = false;
};

}  // namespace copyattack::serve

#endif  // COPYATTACK_SERVE_JOB_QUEUE_H_
