#ifndef COPYATTACK_SERVE_ATTACK_SERVER_H_
#define COPYATTACK_SERVE_ATTACK_SERVER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "core/runner.h"
#include "data/cross_domain.h"
#include "data/dataset.h"
#include "serve/job_queue.h"

namespace copyattack::serve {

/// A named attack method resolved to its strategy factory.
struct StrategySpec {
  /// Null when the method name is unknown.
  core::StrategyFactory factory;
  /// False for the non-learning baselines (RandomAttack, TargetAttack*):
  /// they play exactly one episode per target.
  bool learns = true;
  /// Set when the method name is unknown: names the offender and lists
  /// every registered method so the caller's error is actionable.
  std::string error;
};

/// The method names `MakeStrategyFactory` resolves, in registry order.
/// Snake-case aliases ("surrogate_transfer", "influence") are accepted by
/// the factory but not listed twice.
const std::vector<std::string>& RegisteredMethods();

/// Resolves an attack-method name ("CopyAttack", "CopyAttack-Masking",
/// "CopyAttack-Length", "PolicyNetwork", "RandomAttack",
/// "TargetAttack40/70/100", "SurrogateTransfer"/"surrogate_transfer",
/// "Influence"/"influence") to its strategy factory over the shared
/// per-dataset artifacts — the single dispatch table behind both the
/// `attack` CLI command and the attack server. `dataset` and `artifacts`
/// are captured by reference and must outlive the returned factory. The
/// surrogate-based methods train the attacker's local model here, once,
/// from a fixed seed; every per-target strategy shares it read-only. On an
/// unknown name the returned spec has a null factory and `error` lists the
/// registered methods.
StrategySpec MakeStrategyFactory(const data::CrossDomainDataset& dataset,
                                 const core::SourceArtifacts& artifacts,
                                 const std::string& method);

/// Attack-server configuration (one per process lifetime).
struct ServerConfig {
  /// Sharding/batching of each job's campaign. `runner.checkpoint` is
  /// ignored — per-job crash safety is derived from the fields below.
  core::ParallelRunnerOptions runner;
  /// Root of the per-job checkpoint tree: job `id` persists under
  /// `<checkpoint_root>/job_<id>`. Empty disables crash safety.
  std::string checkpoint_root;
  /// Resume each job from its checkpoint directory when present.
  bool resume = false;
  /// Episodes between mid-target checkpoints.
  std::size_t checkpoint_every = 1;
  /// Items with at most this many interactions count as cold targets.
  std::size_t cold_max_interactions = 10;
};

/// Outcome of one served job.
struct JobReport {
  PromotionJob job;
  bool ok = false;
  std::string error;  ///< set when !ok (e.g. unknown method)
  core::ParallelCampaignResult result;  ///< valid when ok
};

/// The long-running promotion service (ISSUE 6 tentpole): consumes
/// `PromotionJob`s from a queue and runs each as one sharded campaign on
/// the shared thread pool via `core::ParallelCampaignRunner`, with
/// per-job checkpoint/resume. Jobs execute one at a time in arrival
/// order — each job already owns the configured `--jobs` worth of
/// parallelism, so running jobs concurrently would only oversubscribe
/// the pool — while producers keep feeding the queue concurrently.
class AttackServer {
 public:
  /// `dataset`, `target_train` and `artifacts` are borrowed and must
  /// outlive the server; the factories are copied.
  AttackServer(const data::CrossDomainDataset& dataset,
               const data::Dataset& target_train,
               core::ModelFactory model_factory,
               const core::SourceArtifacts& artifacts,
               const ServerConfig& config);

  /// Runs one job to completion (synchronously).
  JobReport RunJob(const PromotionJob& job);

  /// Serves `queue` until it is closed and drained; returns the reports
  /// in completion order.
  std::vector<JobReport> Drain(JobQueue* queue);

  std::size_t jobs_run() const { return jobs_run_; }
  std::size_t jobs_failed() const { return jobs_failed_; }
  const ServerConfig& config() const { return config_; }

 private:
  const data::CrossDomainDataset& dataset_;
  const data::Dataset& target_train_;
  core::ModelFactory model_factory_;
  const core::SourceArtifacts& artifacts_;
  ServerConfig config_;
  std::size_t jobs_run_ = 0;
  std::size_t jobs_failed_ = 0;
};

}  // namespace copyattack::serve

#endif  // COPYATTACK_SERVE_ATTACK_SERVER_H_
