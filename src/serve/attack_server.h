#ifndef COPYATTACK_SERVE_ATTACK_SERVER_H_
#define COPYATTACK_SERVE_ATTACK_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "core/runner.h"
#include "data/cross_domain.h"
#include "data/dataset.h"
#include "serve/job_queue.h"

namespace copyattack::serve {

/// A named attack method resolved to its strategy factory.
struct StrategySpec {
  /// Null when the method name is unknown.
  core::StrategyFactory factory;
  /// False for the non-learning baselines (RandomAttack, TargetAttack*):
  /// they play exactly one episode per target.
  bool learns = true;
  /// Set when the method name is unknown: names the offender and lists
  /// every registered method so the caller's error is actionable.
  std::string error;
};

/// The method names `MakeStrategyFactory` resolves, in registry order.
/// Snake-case aliases ("surrogate_transfer", "influence") are accepted by
/// the factory but not listed twice.
const std::vector<std::string>& RegisteredMethods();

/// Resolves an attack-method name ("CopyAttack", "CopyAttack-Masking",
/// "CopyAttack-Length", "PolicyNetwork", "RandomAttack",
/// "TargetAttack40/70/100", "SurrogateTransfer"/"surrogate_transfer",
/// "Influence"/"influence") to its strategy factory over the shared
/// per-dataset artifacts — the single dispatch table behind both the
/// `attack` CLI command and the attack server. `dataset` and `artifacts`
/// are captured by reference and must outlive the returned factory. The
/// surrogate-based methods train the attacker's local model here, once,
/// from a fixed seed; every per-target strategy shares it read-only. On an
/// unknown name the returned spec has a null factory and `error` lists the
/// registered methods.
StrategySpec MakeStrategyFactory(const data::CrossDomainDataset& dataset,
                                 const core::SourceArtifacts& artifacts,
                                 const std::string& method);

/// Attack-server configuration (one per process lifetime).
struct ServerConfig {
  /// Sharding/batching of each job's campaign. `runner.checkpoint` is
  /// ignored — per-job crash safety is derived from the fields below.
  core::ParallelRunnerOptions runner;
  /// Root of the per-job checkpoint tree: job `id` persists under
  /// `<checkpoint_root>/job_<id>`. Empty disables crash safety.
  std::string checkpoint_root;
  /// Resume each job from its checkpoint directory when present.
  bool resume = false;
  /// Episodes between mid-target checkpoints.
  std::size_t checkpoint_every = 1;
  /// Items with at most this many interactions count as cold targets.
  std::size_t cold_max_interactions = 10;

  // --- Supervision (ISSUE 10): watchdog, retries, quarantine. ---

  /// Per-job wall-clock deadline in seconds; 0 disables the watchdog.
  /// Enforced cooperatively through the runner's `cancel` hook at
  /// episode boundaries — the last checkpoint is already flushed there,
  /// so a deadline kill IS the rollback: the retry resumes from it.
  double job_deadline_seconds = 0.0;
  /// Total attempts (first run + retries) a job gets before it is parked
  /// in `<checkpoint_root>/quarantine.csv`. Counts BOTH in-process
  /// watchdog kills and process crashes (the per-job attempt counter is
  /// persisted next to the job's checkpoints). 0 = unlimited — what the
  /// chaos soak uses, so scheduled crashes never quarantine a job.
  std::size_t max_attempts = 3;
  /// Exponential retry backoff: attempt k (k >= 2) sleeps
  /// `retry_backoff_seconds * 2^(k-2)` first. 0 disables sleeping.
  double retry_backoff_seconds = 0.0;
  /// Clock behind the deadline watchdog; tests install a fake to wedge a
  /// job deterministically. Null = `obs::MonotonicNanos`.
  std::function<std::int64_t()> now_ns;
  /// Sleeper behind the retry backoff; tests install a no-op recorder.
  /// Null = real `std::this_thread::sleep_for`.
  std::function<void(double)> sleep_seconds;
};

/// Process-wide graceful-drain flag (SIGTERM/SIGINT). Once requested,
/// `AttackServer::Drain` stops popping jobs, the running job aborts at
/// its next episode boundary (checkpoint already flushed), and the
/// un-run remainder of the queue is persisted to
/// `<checkpoint_root>/remaining_jobs.csv`. Async-signal-safe: the flag
/// is a lock-free atomic store.
void RequestDrain();
bool DrainRequested();
/// Clears the flag — tests only (the flag is process-global).
void ResetDrainForTest();
/// Installs `RequestDrain` as the SIGTERM and SIGINT handler.
void InstallDrainSignalHandlers();

/// Sidecar files under the checkpoint root / the per-job directory.
std::string QuarantinePath(const std::string& checkpoint_root);
std::string RemainingJobsPath(const std::string& checkpoint_root);
std::string AttemptsPath(const std::string& job_dir);

/// Outcome of one served job.
struct JobReport {
  PromotionJob job;
  bool ok = false;
  std::string error;  ///< set when !ok (e.g. unknown method)
  core::ParallelCampaignResult result;  ///< valid when ok
  /// Attempts this job has consumed, including crashed prior processes.
  std::size_t attempts = 0;
  /// The watchdog deadline-killed at least one attempt.
  bool timed_out = false;
  /// Attempts exhausted `max_attempts`; the job was parked in
  /// `quarantine.csv` with `error` as its last error.
  bool quarantined = false;
  /// The run was cut short by a drain request (not a failure: completed
  /// work is checkpointed and the job can resume).
  bool drained = false;
};

/// The long-running promotion service (ISSUE 6 tentpole): consumes
/// `PromotionJob`s from a queue and runs each as one sharded campaign on
/// the shared thread pool via `core::ParallelCampaignRunner`, with
/// per-job checkpoint/resume. Jobs execute one at a time in arrival
/// order — each job already owns the configured `--jobs` worth of
/// parallelism, so running jobs concurrently would only oversubscribe
/// the pool — while producers keep feeding the queue concurrently.
class AttackServer {
 public:
  /// `dataset`, `target_train` and `artifacts` are borrowed and must
  /// outlive the server; the factories are copied.
  AttackServer(const data::CrossDomainDataset& dataset,
               const data::Dataset& target_train,
               core::ModelFactory model_factory,
               const core::SourceArtifacts& artifacts,
               const ServerConfig& config);

  /// Runs one job to completion (synchronously), under supervision:
  /// deadline watchdog, bounded retries with backoff, quarantine after
  /// `max_attempts` failures (see ServerConfig).
  JobReport RunJob(const PromotionJob& job);

  /// Serves `queue` until it is closed and drained, or until a graceful
  /// drain (`RequestDrain`) interrupts it — then the remaining queue is
  /// persisted to `RemainingJobsPath(checkpoint_root)`. Returns the
  /// reports in completion order.
  std::vector<JobReport> Drain(JobQueue* queue);

  std::size_t jobs_run() const { return jobs_run_; }
  std::size_t jobs_failed() const { return jobs_failed_; }
  const ServerConfig& config() const { return config_; }

 private:
  const data::CrossDomainDataset& dataset_;
  const data::Dataset& target_train_;
  core::ModelFactory model_factory_;
  const core::SourceArtifacts& artifacts_;
  ServerConfig config_;
  std::size_t jobs_run_ = 0;
  std::size_t jobs_failed_ = 0;
};

}  // namespace copyattack::serve

#endif  // COPYATTACK_SERVE_ATTACK_SERVER_H_
