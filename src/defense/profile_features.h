#ifndef COPYATTACK_DEFENSE_PROFILE_FEATURES_H_
#define COPYATTACK_DEFENSE_PROFILE_FEATURES_H_

#include <array>
#include <cstddef>

#include "data/dataset.h"
#include "data/types.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace copyattack::defense {

/// Number of detectability features extracted per profile.
inline constexpr std::size_t kNumProfileFeatures = 6;

/// A profile's detectability feature vector.
using ProfileFeatures = std::array<double, kNumProfileFeatures>;

/// Names of the features, index-aligned with `ProfileFeatures`.
const char* ProfileFeatureName(std::size_t index);

/// Extracts the statistical fingerprints shilling-detection work uses to
/// separate fake from genuine profiles (cf. Chen et al. 2018, Cai & Zhang
/// 2019 — the defense literature the paper cites as its motivation):
///
///   0. log profile length
///   1. mean log-popularity of the profile's items
///   2. std-dev of the items' log-popularity
///   3. intra-profile coherence (mean pairwise cosine of item embeddings)
///   4. fraction of items from the most popular decile
///   5. embedding dispersion (mean squared distance to the profile's
///      centroid in embedding space)
///
/// Popularity comes from `reference` (the platform's clean interaction
/// data) and item embeddings from a model the platform trained itself.
class ProfileFeatureExtractor {
 public:
  /// Both references are borrowed and must outlive the extractor.
  ProfileFeatureExtractor(const data::Dataset* reference,
                          const math::Matrix* item_embeddings);

  /// Computes the feature vector of one profile. Pairwise statistics use
  /// at most `max_pairs_sample` items (deterministic in `rng`).
  ProfileFeatures Extract(const data::Profile& profile, util::Rng& rng,
                          std::size_t max_pairs_sample = 16) const;

 private:
  const data::Dataset* reference_;
  const math::Matrix* item_embeddings_;
  std::size_t head_popularity_threshold_;
};

}  // namespace copyattack::defense

#endif  // COPYATTACK_DEFENSE_PROFILE_FEATURES_H_
