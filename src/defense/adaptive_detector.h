#ifndef COPYATTACK_DEFENSE_ADAPTIVE_DETECTOR_H_
#define COPYATTACK_DEFENSE_ADAPTIVE_DETECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "defense/detectors.h"
#include "defense/profile_features.h"

namespace copyattack::defense {

/// Training budget of the adaptive detector's logistic regression.
struct AdaptiveDetectorConfig {
  std::size_t epochs = 200;
  double learning_rate = 0.5;
  double l2 = 1e-3;
};

/// Supervised arms-race detector: a logistic regression over the
/// standardized profile features, retrained per attacker on that
/// attacker's *actual injected profiles* (labeled positives) mixed with
/// genuine ones. This models the defender's second move — once an attack
/// campaign is observed, its output distribution is training data — and is
/// the detector the HR@k-vs-detectability frontier (bench_arms_race) pits
/// each strategy against.
///
/// Training is deterministic (full-batch gradient descent from a zero
/// initialization; no RNG), so the frontier CSV reproduces bit-for-bit.
/// Through the unsupervised `Fit(genuine)` entry point — before any attack
/// profiles have been observed — it degrades to the z-score detector's
/// scoring rule.
class AdaptiveDetector final : public AnomalyDetector {
 public:
  explicit AdaptiveDetector(
      const AdaptiveDetectorConfig& config = AdaptiveDetectorConfig());

  /// Unsupervised fallback: fits the standardization only. `Score` then
  /// behaves like `ZScoreDetector` until `FitAdaptive` supplies labels.
  void Fit(const std::vector<ProfileFeatures>& genuine) override;

  /// The arms-race move: fits standardization on `genuine` and the
  /// logistic weights on genuine (label 0) vs `attack` (label 1).
  void FitAdaptive(const std::vector<ProfileFeatures>& genuine,
                   const std::vector<ProfileFeatures>& attack);

  /// Supervised: P(attack | features); fallback: mean squared z.
  double Score(const ProfileFeatures& features) const override;

  std::string name() const override { return "Adaptive"; }

  /// Whether `FitAdaptive` has trained the logistic weights.
  bool supervised() const { return supervised_; }

  /// Learned weights over standardized features (exposed for tests).
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  AdaptiveDetectorConfig config_;
  ProfileFeatures mean_{};
  ProfileFeatures stddev_{};
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
  bool supervised_ = false;
};

}  // namespace copyattack::defense

#endif  // COPYATTACK_DEFENSE_ADAPTIVE_DETECTOR_H_
