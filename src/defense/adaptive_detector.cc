#include "defense/adaptive_detector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace copyattack::defense {

namespace {

/// Per-feature mean/stddev of a population (stddev floored; mirrors the
/// unsupervised detectors' standardization).
void FitMoments(const std::vector<ProfileFeatures>& population,
                ProfileFeatures* mean, ProfileFeatures* stddev) {
  CA_CHECK(!population.empty());
  mean->fill(0.0);
  stddev->fill(0.0);
  for (const ProfileFeatures& f : population) {
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      (*mean)[i] += f[i];
    }
  }
  for (double& m : *mean) m /= static_cast<double>(population.size());
  for (const ProfileFeatures& f : population) {
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      const double d = f[i] - (*mean)[i];
      (*stddev)[i] += d * d;
    }
  }
  for (double& s : *stddev) {
    s = std::sqrt(s / static_cast<double>(population.size()));
    s = std::max(s, 1e-9);
  }
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

AdaptiveDetector::AdaptiveDetector(const AdaptiveDetectorConfig& config)
    : config_(config), weights_(kNumProfileFeatures, 0.0) {
  CA_CHECK_GT(config_.epochs, 0U);
  CA_CHECK_GT(config_.learning_rate, 0.0);
}

void AdaptiveDetector::Fit(const std::vector<ProfileFeatures>& genuine) {
  FitMoments(genuine, &mean_, &stddev_);
  std::fill(weights_.begin(), weights_.end(), 0.0);
  bias_ = 0.0;
  fitted_ = true;
  supervised_ = false;
}

void AdaptiveDetector::FitAdaptive(
    const std::vector<ProfileFeatures>& genuine,
    const std::vector<ProfileFeatures>& attack) {
  CA_CHECK(!attack.empty());
  Fit(genuine);

  // Standardized design matrix: genuine first (label 0), attack after
  // (label 1). Full-batch gradient descent from zero is deterministic —
  // no shuffling, no initialization noise — so retraining the detector on
  // the same campaign output always yields the same frontier point.
  std::vector<ProfileFeatures> examples;
  std::vector<double> labels;
  examples.reserve(genuine.size() + attack.size());
  labels.reserve(genuine.size() + attack.size());
  for (const ProfileFeatures& f : genuine) {
    ProfileFeatures z{};
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      z[i] = (f[i] - mean_[i]) / stddev_[i];
    }
    examples.push_back(z);
    labels.push_back(0.0);
  }
  for (const ProfileFeatures& f : attack) {
    ProfileFeatures z{};
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      z[i] = (f[i] - mean_[i]) / stddev_[i];
    }
    examples.push_back(z);
    labels.push_back(1.0);
  }

  const double n = static_cast<double>(examples.size());
  std::vector<double> grad(kNumProfileFeatures);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (std::size_t e = 0; e < examples.size(); ++e) {
      double logit = bias_;
      for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
        logit += weights_[i] * examples[e][i];
      }
      const double residual = Sigmoid(logit) - labels[e];
      for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
        grad[i] += residual * examples[e][i];
      }
      grad_bias += residual;
    }
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      weights_[i] -= config_.learning_rate *
                     (grad[i] / n + config_.l2 * weights_[i]);
    }
    bias_ -= config_.learning_rate * grad_bias / n;
  }
  supervised_ = true;
}

double AdaptiveDetector::Score(const ProfileFeatures& features) const {
  CA_CHECK(fitted_) << "Fit must be called before Score";
  ProfileFeatures z{};
  for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
    z[i] = (features[i] - mean_[i]) / stddev_[i];
  }
  if (!supervised_) {
    // Unsupervised fallback: the z-score detector's rule.
    double sum_sq = 0.0;
    for (const double v : z) sum_sq += v * v;
    return sum_sq / static_cast<double>(kNumProfileFeatures);
  }
  double logit = bias_;
  for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
    logit += weights_[i] * z[i];
  }
  return Sigmoid(logit);
}

}  // namespace copyattack::defense
