#ifndef COPYATTACK_DEFENSE_DETECTORS_H_
#define COPYATTACK_DEFENSE_DETECTORS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "defense/profile_features.h"

namespace copyattack::defense {

/// Interface of an unsupervised shilling-profile detector: fit on genuine
/// profiles' features, then score suspicion of unseen profiles (higher =
/// more suspicious). Thresholding is left to the evaluator.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Fits the detector on genuine profiles' feature vectors.
  virtual void Fit(const std::vector<ProfileFeatures>& genuine) = 0;

  /// Suspicion score of one profile (higher = more anomalous).
  virtual double Score(const ProfileFeatures& features) const = 0;

  virtual std::string name() const = 0;
};

/// Z-score detector: per-feature standardization against the genuine
/// population; suspicion = mean squared z across features. This is the
/// classic "statistical fingerprint" detector from the shilling-detection
/// literature the paper cites.
class ZScoreDetector final : public AnomalyDetector {
 public:
  void Fit(const std::vector<ProfileFeatures>& genuine) override;
  double Score(const ProfileFeatures& features) const override;
  std::string name() const override { return "ZScore"; }

 private:
  ProfileFeatures mean_{};
  ProfileFeatures stddev_{};
  bool fitted_ = false;
};

/// k-nearest-neighbor detector: suspicion = distance (in standardized
/// feature space) to the k-th nearest genuine profile. Catches anomalies
/// the marginal z-scores miss (off-manifold combinations of individually
/// plausible features).
class KnnDetector final : public AnomalyDetector {
 public:
  explicit KnnDetector(std::size_t k = 5) : k_(k) {}

  void Fit(const std::vector<ProfileFeatures>& genuine) override;
  double Score(const ProfileFeatures& features) const override;
  std::string name() const override { return "kNN"; }

 private:
  std::size_t k_;
  ProfileFeatures mean_{};
  ProfileFeatures stddev_{};
  std::vector<ProfileFeatures> standardized_reference_;
};

/// Outcome of evaluating a detector on genuine vs attack profiles.
struct DetectionReport {
  /// Area under the ROC curve (1.0 = perfectly separable attack profiles,
  /// 0.5 = indistinguishable from genuine ones).
  double auc = 0.0;
  /// Recall of attack profiles at the threshold that flags `fpr_budget`
  /// of genuine profiles (defender-side operating point).
  double recall_at_fpr = 0.0;
  /// The false-positive budget used for `recall_at_fpr`.
  double fpr_budget = 0.05;
};

/// Scores both populations with `detector` and summarizes separability.
DetectionReport EvaluateDetector(const AnomalyDetector& detector,
                                 const std::vector<ProfileFeatures>& genuine,
                                 const std::vector<ProfileFeatures>& attack,
                                 double fpr_budget = 0.05);

/// Rank-based ROC AUC of `positive` scores against `negative` scores
/// (ties count half). Exposed for tests.
double RocAuc(const std::vector<double>& negative,
              const std::vector<double>& positive);

}  // namespace copyattack::defense

#endif  // COPYATTACK_DEFENSE_DETECTORS_H_
