#include "defense/detectors.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace copyattack::defense {
namespace {

/// Per-feature mean and stddev of a population (stddev floored to avoid
/// division by zero on constant features).
void FitStandardization(const std::vector<ProfileFeatures>& population,
                        ProfileFeatures* mean, ProfileFeatures* stddev) {
  CA_CHECK(!population.empty());
  mean->fill(0.0);
  stddev->fill(0.0);
  for (const ProfileFeatures& f : population) {
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      (*mean)[i] += f[i];
    }
  }
  for (double& m : *mean) m /= static_cast<double>(population.size());
  for (const ProfileFeatures& f : population) {
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      const double d = f[i] - (*mean)[i];
      (*stddev)[i] += d * d;
    }
  }
  for (double& s : *stddev) {
    s = std::sqrt(s / static_cast<double>(population.size()));
    s = std::max(s, 1e-9);
  }
}

ProfileFeatures Standardize(const ProfileFeatures& features,
                            const ProfileFeatures& mean,
                            const ProfileFeatures& stddev) {
  ProfileFeatures z{};
  for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
    z[i] = (features[i] - mean[i]) / stddev[i];
  }
  return z;
}

}  // namespace

void ZScoreDetector::Fit(const std::vector<ProfileFeatures>& genuine) {
  FitStandardization(genuine, &mean_, &stddev_);
  fitted_ = true;
}

double ZScoreDetector::Score(const ProfileFeatures& features) const {
  CA_CHECK(fitted_) << "Fit must be called before Score";
  const ProfileFeatures z = Standardize(features, mean_, stddev_);
  double sum_sq = 0.0;
  for (const double v : z) sum_sq += v * v;
  return sum_sq / static_cast<double>(kNumProfileFeatures);
}

void KnnDetector::Fit(const std::vector<ProfileFeatures>& genuine) {
  CA_CHECK_GE(genuine.size(), k_ + 1);
  FitStandardization(genuine, &mean_, &stddev_);
  standardized_reference_.clear();
  standardized_reference_.reserve(genuine.size());
  for (const ProfileFeatures& f : genuine) {
    standardized_reference_.push_back(Standardize(f, mean_, stddev_));
  }
}

double KnnDetector::Score(const ProfileFeatures& features) const {
  CA_CHECK(!standardized_reference_.empty())
      << "Fit must be called before Score";
  const ProfileFeatures z = Standardize(features, mean_, stddev_);
  std::vector<double> distances;
  distances.reserve(standardized_reference_.size());
  for (const ProfileFeatures& ref : standardized_reference_) {
    double d2 = 0.0;
    for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
      const double d = z[i] - ref[i];
      d2 += d * d;
    }
    distances.push_back(d2);
  }
  std::nth_element(distances.begin(), distances.begin() + (k_ - 1),
                   distances.end());
  return std::sqrt(distances[k_ - 1]);
}

double RocAuc(const std::vector<double>& negative,
              const std::vector<double>& positive) {
  CA_CHECK(!negative.empty());
  CA_CHECK(!positive.empty());
  // AUC = P(pos > neg) + 0.5 P(pos == neg), via sorting the negatives and
  // binary-searching each positive.
  std::vector<double> sorted_negative = negative;
  std::sort(sorted_negative.begin(), sorted_negative.end());
  double total = 0.0;
  for (const double p : positive) {
    const auto lower = std::lower_bound(sorted_negative.begin(),
                                        sorted_negative.end(), p);
    const auto upper = std::upper_bound(sorted_negative.begin(),
                                        sorted_negative.end(), p);
    const double below =
        static_cast<double>(lower - sorted_negative.begin());
    const double ties = static_cast<double>(upper - lower);
    total += below + 0.5 * ties;
  }
  return total / (static_cast<double>(positive.size()) *
                  static_cast<double>(negative.size()));
}

DetectionReport EvaluateDetector(
    const AnomalyDetector& detector,
    const std::vector<ProfileFeatures>& genuine,
    const std::vector<ProfileFeatures>& attack, double fpr_budget) {
  DetectionReport report;
  report.fpr_budget = fpr_budget;

  std::vector<double> genuine_scores, attack_scores;
  genuine_scores.reserve(genuine.size());
  attack_scores.reserve(attack.size());
  for (const ProfileFeatures& f : genuine) {
    genuine_scores.push_back(detector.Score(f));
  }
  for (const ProfileFeatures& f : attack) {
    attack_scores.push_back(detector.Score(f));
  }

  report.auc = RocAuc(genuine_scores, attack_scores);

  // Threshold: the (1 - fpr_budget) quantile of genuine scores.
  std::vector<double> sorted = genuine_scores;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(static_cast<double>(sorted.size()) *
                               (1.0 - fpr_budget)));
  const double threshold = sorted[index];
  std::size_t caught = 0;
  for (const double s : attack_scores) {
    if (s > threshold) ++caught;
  }
  report.recall_at_fpr =
      static_cast<double>(caught) / static_cast<double>(attack.size());
  return report;
}

}  // namespace copyattack::defense
