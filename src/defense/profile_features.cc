#include "defense/profile_features.h"

#include <algorithm>
#include <cmath>

#include "math/vector_ops.h"
#include "util/check.h"

namespace copyattack::defense {

const char* ProfileFeatureName(std::size_t index) {
  static const char* const kNames[kNumProfileFeatures] = {
      "log_length",     "mean_log_popularity", "std_log_popularity",
      "coherence",      "head_fraction",       "embedding_dispersion"};
  CA_CHECK_LT(index, kNumProfileFeatures);
  return kNames[index];
}

ProfileFeatureExtractor::ProfileFeatureExtractor(
    const data::Dataset* reference, const math::Matrix* item_embeddings)
    : reference_(reference), item_embeddings_(item_embeddings) {
  CA_CHECK(reference != nullptr);
  CA_CHECK(item_embeddings != nullptr);
  CA_CHECK_EQ(item_embeddings->rows(), reference->num_items());

  // Popularity of the least popular item still inside the top decile.
  const auto by_popularity = reference_->ItemsByPopularity();
  const std::size_t head_size =
      std::max<std::size_t>(1, by_popularity.size() / 10);
  head_popularity_threshold_ =
      reference_->ItemPopularity(by_popularity[head_size - 1]);
}

ProfileFeatures ProfileFeatureExtractor::Extract(
    const data::Profile& profile, util::Rng& rng,
    std::size_t max_pairs_sample) const {
  ProfileFeatures features{};
  CA_CHECK(!profile.empty());
  const std::size_t n = profile.size();
  const std::size_t dim = item_embeddings_->cols();

  features[0] = std::log(static_cast<double>(n));

  // Popularity statistics.
  double pop_sum = 0.0, pop_sq_sum = 0.0;
  std::size_t head_count = 0;
  for (const data::ItemId item : profile) {
    const double log_pop =
        std::log1p(static_cast<double>(reference_->ItemPopularity(item)));
    pop_sum += log_pop;
    pop_sq_sum += log_pop * log_pop;
    if (reference_->ItemPopularity(item) >= head_popularity_threshold_) {
      ++head_count;
    }
  }
  const double pop_mean = pop_sum / static_cast<double>(n);
  features[1] = pop_mean;
  features[2] = std::sqrt(
      std::max(0.0, pop_sq_sum / static_cast<double>(n) -
                        pop_mean * pop_mean));
  features[4] = static_cast<double>(head_count) / static_cast<double>(n);

  // Embedding-based statistics over a bounded item sample.
  std::vector<data::ItemId> sample(profile.begin(), profile.end());
  rng.Shuffle(sample);
  if (sample.size() > max_pairs_sample) sample.resize(max_pairs_sample);

  // Coherence: mean pairwise cosine similarity.
  double cosine_sum = 0.0;
  std::size_t pairs = 0;
  std::vector<float> a(dim), b(dim);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    for (std::size_t j = i + 1; j < sample.size(); ++j) {
      std::copy_n(item_embeddings_->Row(sample[i]), dim, a.data());
      std::copy_n(item_embeddings_->Row(sample[j]), dim, b.data());
      math::NormalizeL2(a.data(), dim);
      math::NormalizeL2(b.data(), dim);
      cosine_sum += math::Dot(a.data(), b.data(), dim);
      ++pairs;
    }
  }
  features[3] = pairs > 0 ? cosine_sum / static_cast<double>(pairs) : 1.0;

  // Dispersion: mean squared distance to the sample centroid.
  std::vector<float> centroid(dim, 0.0f);
  for (const data::ItemId item : sample) {
    math::Axpy(1.0f / static_cast<float>(sample.size()),
               item_embeddings_->Row(item), centroid.data(), dim);
  }
  double dispersion = 0.0;
  for (const data::ItemId item : sample) {
    dispersion += math::SquaredDistance(item_embeddings_->Row(item),
                                        centroid.data(), dim);
  }
  features[5] = dispersion / static_cast<double>(sample.size());

  return features;
}

}  // namespace copyattack::defense
