#ifndef COPYATTACK_MATH_MATRIX_H_
#define COPYATTACK_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace copyattack::math {

/// Dense row-major matrix of floats. This is the single numeric container
/// used by the embedding models and the neural-network library; it favours
/// clarity and cache-friendly row access over BLAS-level tuning, which is
/// adequate for the paper's scale (embedding size 8, action size 8).
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a `rows` x `cols` matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    CA_CHECK_LT(r, rows_);
    CA_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    CA_CHECK_LT(r, rows_);
    CA_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Pointer to the beginning of row `r`.
  float* Row(std::size_t r) {
    CA_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(std::size_t r) const {
    CA_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// Fills with N(mean, stddev) deviates.
  void FillNormal(util::Rng& rng, float mean, float stddev);

  /// Fills with U[lo, hi) deviates.
  void FillUniform(util::Rng& rng, float lo, float hi);

  /// Resizes to `rows` x `cols`, discarding contents, filled with zero.
  void Resize(std::size_t rows, std::size_t cols);

  /// Number of rows the current allocation can hold without reallocating
  /// (0 for a column-less matrix).
  std::size_t row_capacity() const {
    return cols_ == 0 ? 0 : data_.capacity() / cols_;
  }

  /// Pre-allocates storage for at least `rows` rows (column count must be
  /// set). Existing contents are preserved; `rows()` is unchanged.
  void Reserve(std::size_t rows);

  /// Appends one zero-filled row and returns a pointer to it. Storage grows
  /// geometrically, so appending is O(cols) amortized — this is the
  /// injection-loop growth path (one row per injected profile).
  float* AppendRow();

  /// Grows to `rows` rows, preserving existing contents and zero-filling
  /// the new rows. No-op when `rows <= rows()`.
  void EnsureRows(std::size_t rows);

  /// Shrinks to `rows` rows in O(1), keeping the allocation (so a later
  /// regrowth to the old size reuses it). This is the serving-state
  /// rollback path: episode-injected rows are dropped without copying the
  /// surviving rows.
  void TruncateRows(std::size_t rows);

  /// Copies row `src_row` of `src` into row `dst_row` of this matrix.
  /// Column counts must match.
  void CopyRowFrom(const Matrix& src, std::size_t src_row,
                   std::size_t dst_row);

  /// this += alpha * other (shapes must match).
  void AddScaled(const Matrix& other, float alpha);

  /// Multiplies every element by `alpha`.
  void Scale(float alpha);

  /// Returns the sum of squares of all elements.
  double SquaredNorm() const;

  /// Returns C = A * B. A is (m x k), B is (k x n).
  static Matrix Multiply(const Matrix& a, const Matrix& b);

  /// Returns C = A * B^T. A is (m x k), B is (n x k).
  static Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b);

  /// Exact element-wise equality (used by serialization round-trip tests).
  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace copyattack::math

#endif  // COPYATTACK_MATH_MATRIX_H_
