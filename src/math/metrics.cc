#include "math/metrics.h"

#include <cmath>

namespace copyattack::math {

double HitRatioAtK(std::size_t rank, std::size_t k) {
  return rank < k ? 1.0 : 0.0;
}

double NdcgAtK(std::size_t rank, std::size_t k) {
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

}  // namespace copyattack::math
