#include "math/matrix.h"

#include <algorithm>
#include <cstring>

namespace copyattack::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::FillNormal(util::Rng& rng, float mean, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Normal(mean, stddev));
  }
}

void Matrix::FillUniform(util::Rng& rng, float lo, float hi) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.UniformDouble(lo, hi));
  }
}

void Matrix::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Reserve(std::size_t rows) {
  CA_CHECK_GT(cols_, 0U) << "Reserve requires a fixed column count";
  data_.reserve(rows * cols_);
}

float* Matrix::AppendRow() {
  CA_CHECK_GT(cols_, 0U) << "AppendRow requires a fixed column count";
  // std::vector::resize grows capacity geometrically, so repeated appends
  // are amortized O(cols) instead of O(rows * cols).
  data_.resize(data_.size() + cols_, 0.0f);
  ++rows_;
  return data_.data() + (rows_ - 1) * cols_;
}

void Matrix::EnsureRows(std::size_t rows) {
  if (rows <= rows_) return;
  CA_CHECK_GT(cols_, 0U) << "EnsureRows requires a fixed column count";
  data_.resize(rows * cols_, 0.0f);
  rows_ = rows;
}

void Matrix::TruncateRows(std::size_t rows) {
  CA_CHECK_LE(rows, rows_);
  data_.resize(rows * cols_);  // keeps capacity for the next episode
  rows_ = rows;
}

void Matrix::CopyRowFrom(const Matrix& src, std::size_t src_row,
                         std::size_t dst_row) {
  CA_CHECK_EQ(src.cols_, cols_);
  CA_CHECK_LT(src_row, src.rows_);
  CA_CHECK_LT(dst_row, rows_);
  std::memcpy(Row(dst_row), src.Row(src_row), cols_ * sizeof(float));
}

void Matrix::AddScaled(const Matrix& other, float alpha) {
  CA_CHECK_EQ(rows_, other.rows_);
  CA_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::Scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (const float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

Matrix Matrix::Multiply(const Matrix& a, const Matrix& b) {
  CA_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;  // lint:allow(float-eq): sparsity skip
      const float* brow = b.Row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
  return c;
}

Matrix Matrix::MultiplyTransposedB(const Matrix& a, const Matrix& b) {
  CA_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.Row(j);
      float dot = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        dot += arow[k] * brow[k];
      }
      crow[j] = dot;
    }
  }
  return c;
}

}  // namespace copyattack::math
