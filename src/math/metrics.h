#ifndef COPYATTACK_MATH_METRICS_H_
#define COPYATTACK_MATH_METRICS_H_

#include <cstddef>

namespace copyattack::math {

/// Hit Ratio @ k for a single (user, test item) pair: 1 if the test item's
/// 0-based `rank` is within the first `k` positions, else 0.
double HitRatioAtK(std::size_t rank, std::size_t k);

/// NDCG @ k for a single relevant test item at 0-based `rank`:
/// 1 / log2(rank + 2) if rank < k, else 0. With a single relevant item the
/// ideal DCG is 1, so DCG equals NDCG — the convention used by He et al.
/// (NCF) and adopted by the paper's evaluation protocol.
double NdcgAtK(std::size_t rank, std::size_t k);

}  // namespace copyattack::math

#endif  // COPYATTACK_MATH_METRICS_H_
