#ifndef COPYATTACK_MATH_TOP_K_H_
#define COPYATTACK_MATH_TOP_K_H_

#include <cstddef>
#include <vector>

namespace copyattack::math {

/// Returns the indices of the `k` largest scores, ordered from best to worst.
/// Ties break toward the lower index so the ranking is deterministic.
/// If `k >= scores.size()` the full argsort (descending) is returned.
std::vector<std::size_t> TopKIndices(const std::vector<float>& scores,
                                     std::size_t k);

/// Rank (0-based) of `index` when `scores` is sorted descending with
/// deterministic tie-breaking toward lower indices. This is what the
/// evaluator uses to decide whether a test item made the Top-k cut.
std::size_t RankOf(const std::vector<float>& scores, std::size_t index);

/// Full argsort of `scores` in descending order (deterministic ties).
std::vector<std::size_t> ArgSortDescending(const std::vector<float>& scores);

}  // namespace copyattack::math

#endif  // COPYATTACK_MATH_TOP_K_H_
