#ifndef COPYATTACK_MATH_TOP_K_H_
#define COPYATTACK_MATH_TOP_K_H_

#include <cstddef>
#include <vector>

namespace copyattack::math {

/// Returns the indices of the `k` largest scores, ordered from best to worst.
/// Ties break toward the lower index so the ranking is deterministic.
/// If `k >= scores.size()` the full argsort (descending) is returned.
///
/// Selection runs on a bounded partial heap of `k` entries (one pass over
/// the scores, O(n log k) worst case, O(k) extra memory) instead of
/// materializing and partially sorting an index array of all `n`
/// candidates — the Top-k serving hot path touches this on every oracle
/// query. Bit-identical to the sorted reference `TopKIndicesBySort`
/// (equivalence is enforced by tests).
std::vector<std::size_t> TopKIndices(const std::vector<float>& scores,
                                     std::size_t k);

/// Pointer form of `TopKIndices` for callers that keep many rows of
/// scores in one contiguous block (batched oracle queries): selects the
/// Top-k of `scores[0, n)` without copying the row into a vector.
std::vector<std::size_t> TopKIndices(const float* scores, std::size_t n,
                                     std::size_t k);

/// Reference implementation of `TopKIndices` via full index argsort
/// (std::partial_sort over all indices). Kept for the equivalence tests
/// and as documentation of the ranking contract; production callers use
/// the heap-based `TopKIndices`.
std::vector<std::size_t> TopKIndicesBySort(const std::vector<float>& scores,
                                           std::size_t k);

/// Selects the Top-k of every row of a dense row-major `rows x cols`
/// score block in one call (the batched-oracle form: one row per queried
/// user). Row `r`'s result occupies `out[r * k .. r * k + k)`, best
/// first, with the same deterministic tie-breaking as `TopKIndices`.
/// Requires `k <= cols`; `out` must hold `rows * k` entries.
void TopKPerRow(const float* scores, std::size_t rows, std::size_t cols,
                std::size_t k, std::size_t* out);

/// Rank (0-based) of `index` when `scores` is sorted descending with
/// deterministic tie-breaking toward lower indices. This is what the
/// evaluator uses to decide whether a test item made the Top-k cut.
std::size_t RankOf(const std::vector<float>& scores, std::size_t index);

/// Full argsort of `scores` in descending order (deterministic ties).
std::vector<std::size_t> ArgSortDescending(const std::vector<float>& scores);

}  // namespace copyattack::math

#endif  // COPYATTACK_MATH_TOP_K_H_
