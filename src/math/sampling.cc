#include "math/sampling.h"

#include <cmath>

#include "util/check.h"

namespace copyattack::math {

AliasTable::AliasTable(const std::vector<double>& weights) {
  CA_CHECK(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (const double w : weights) {
    CA_CHECK_GE(w, 0.0);
    total += w;
  }
  CA_CHECK_GT(total, 0.0);

  normalized_.resize(n);
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::size_t i : large) probability_[i] = 1.0;
  for (const std::size_t i : small) probability_[i] = 1.0;
}

std::size_t AliasTable::Sample(util::Rng& rng) const {
  const std::size_t bucket =
      static_cast<std::size_t>(rng.UniformUint64(probability_.size()));
  return rng.UniformDouble() < probability_[bucket] ? bucket
                                                    : alias_[bucket];
}

double AliasTable::ProbabilityOf(std::size_t i) const {
  CA_CHECK_LT(i, normalized_.size());
  return normalized_[i];
}

std::vector<double> ZipfWeights(std::size_t n, double exponent) {
  CA_CHECK_GT(n, 0U);
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return weights;
}

std::size_t SampleCategorical(const std::vector<float>& weights,
                              util::Rng& rng) {
  CA_CHECK(!weights.empty());
  double total = 0.0;
  for (const float w : weights) {
    CA_CHECK_GE(w, 0.0f);
    total += w;
  }
  CA_CHECK_GT(total, 0.0);
  double threshold = rng.UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    threshold -= weights[i];
    if (threshold < 0.0) return i;
  }
  // Floating-point slack: return the last category with positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0f) return i;
  }
  return weights.size() - 1;
}

}  // namespace copyattack::math
