#ifndef COPYATTACK_MATH_STATS_H_
#define COPYATTACK_MATH_STATS_H_

#include <cstddef>
#include <vector>

namespace copyattack::math {

/// Streaming mean/variance accumulator (Welford's algorithm). Used to
/// aggregate per-target-item attack metrics and for the REINFORCE
/// moving-average baseline diagnostics.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Number of observations so far.
  std::size_t count() const { return count_; }

  /// Mean of observations; 0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  double Variance() const;

  /// sqrt(Variance()).
  double StdDev() const;

  /// Smallest observation; 0 when empty.
  double Min() const { return count_ == 0 ? 0.0 : min_; }

  /// Largest observation; 0 when empty.
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// `q`-th quantile (0..1) of `values` by linear interpolation between order
/// statistics. `values` may be unsorted; it is copied. Empty input yields 0.
double Quantile(std::vector<double> values, double q);

/// Equal-width histogram over [min(values), max(values)] with `bins` bins.
/// Returns per-bin counts; empty input yields all-zero bins.
std::vector<std::size_t> Histogram(const std::vector<double>& values,
                                   std::size_t bins);

}  // namespace copyattack::math

#endif  // COPYATTACK_MATH_STATS_H_
