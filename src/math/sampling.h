#ifndef COPYATTACK_MATH_SAMPLING_H_
#define COPYATTACK_MATH_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace copyattack::math {

/// O(1) sampling from an arbitrary discrete distribution using Walker's
/// alias method. Used on the hot path of the synthetic data generator
/// (millions of interaction draws over thousands of items).
class AliasTable {
 public:
  /// Builds the table from non-negative weights (not necessarily
  /// normalized). At least one weight must be positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws one index with probability proportional to its weight.
  std::size_t Sample(util::Rng& rng) const;

  /// Number of categories.
  std::size_t size() const { return probability_.size(); }

  /// Normalized probability of category `i` (reconstructed from the table;
  /// exposed for tests).
  double ProbabilityOf(std::size_t i) const;

 private:
  std::vector<double> probability_;  // threshold within each bucket
  std::vector<std::size_t> alias_;   // fallback category per bucket
  std::vector<double> normalized_;   // original normalized weights
};

/// Zipf-like popularity weights: weight(i) = 1 / (i + 1)^exponent for
/// i in [0, n). This reproduces the long-tailed item popularity that both
/// MovieLens-style datasets exhibit and that Figure 4 sweeps over.
std::vector<double> ZipfWeights(std::size_t n, double exponent);

/// Samples one index from an explicit (unnormalized) weight vector by
/// linear scan; fine for small vectors like policy action distributions.
std::size_t SampleCategorical(const std::vector<float>& weights,
                              util::Rng& rng);

}  // namespace copyattack::math

#endif  // COPYATTACK_MATH_SAMPLING_H_
