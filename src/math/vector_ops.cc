#include "math/vector_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace copyattack::math {

float Dot(const float* a, const float* b, std::size_t n) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

float SquaredDistance(const float* a, const float* b, std::size_t n) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float EuclideanDistance(const float* a, const float* b, std::size_t n) {
  return std::sqrt(SquaredDistance(a, b, n));
}

void SoftmaxInPlace(std::vector<float>& values) {
  CA_CHECK(!values.empty());
  const float max_value = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (auto& v : values) {
    v = std::exp(v - max_value);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : values) v *= inv;
}

void MaskedSoftmaxInPlace(std::vector<float>& values,
                          const std::vector<bool>& mask) {
  CA_CHECK_EQ(values.size(), mask.size());
  float max_value = -std::numeric_limits<float>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (mask[i]) {
      any = true;
      max_value = std::max(max_value, values[i]);
    }
  }
  CA_CHECK(any) << "masked softmax requires at least one unmasked entry";
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (mask[i]) {
      values[i] = std::exp(values[i] - max_value);
      sum += values[i];
    } else {
      values[i] = 0.0f;
    }
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : values) v *= inv;
}

double LogSumExp(const std::vector<float>& values) {
  CA_CHECK(!values.empty());
  const float max_value = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (const float v : values) sum += std::exp(v - max_value);
  return max_value + std::log(sum);
}

std::size_t ArgMax(const std::vector<float>& values) {
  CA_CHECK(!values.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

void NormalizeL2(float* v, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += static_cast<double>(v[i]) * v[i];
  if (sum == 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(sum));
  for (std::size_t i = 0; i < n; ++i) v[i] *= inv;
}

}  // namespace copyattack::math
