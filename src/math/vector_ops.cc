#include "math/vector_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/annotations.h"
#include "util/check.h"

namespace copyattack::math {

// The three kernels below sit at the bottom of scoring, fold-in, BPR
// training, and k-means. They are written so the compiler auto-vectorizes
// them without -ffast-math: reductions use four independent accumulators
// (breaking the sequential float dependence chain into four lanes), and
// `__restrict` tells the optimizer the spans do not overlap. The summation
// order is fixed by the implementation, so results stay bit-deterministic
// run to run.

float Dot(const float* __restrict a, const float* __restrict b,
          std::size_t n) CA_HOT_PATH {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(float alpha, const float* __restrict x, float* __restrict y,
          std::size_t n) CA_HOT_PATH {
  // No reduction here; the restrict qualifiers alone let the compiler emit
  // packed fma/mul-add without a runtime overlap check.
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

float SquaredDistance(const float* __restrict a, const float* __restrict b,
                      std::size_t n) CA_HOT_PATH {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float EuclideanDistance(const float* a, const float* b, std::size_t n) {
  return std::sqrt(SquaredDistance(a, b, n));
}

void SoftmaxInPlace(std::vector<float>& values) {
  CA_CHECK(!values.empty());
  const float max_value = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (auto& v : values) {
    v = std::exp(v - max_value);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : values) v *= inv;
}

void MaskedSoftmaxInPlace(std::vector<float>& values,
                          const std::vector<bool>& mask) {
  CA_CHECK_EQ(values.size(), mask.size());
  float max_value = -std::numeric_limits<float>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (mask[i]) {
      any = true;
      max_value = std::max(max_value, values[i]);
    }
  }
  CA_CHECK(any) << "masked softmax requires at least one unmasked entry";
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (mask[i]) {
      values[i] = std::exp(values[i] - max_value);
      sum += values[i];
    } else {
      values[i] = 0.0f;
    }
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : values) v *= inv;
}

double LogSumExp(const std::vector<float>& values) {
  CA_CHECK(!values.empty());
  const float max_value = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (const float v : values) sum += std::exp(v - max_value);
  return max_value + std::log(sum);
}

std::size_t ArgMax(const std::vector<float>& values) {
  CA_CHECK(!values.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

void NormalizeL2(float* v, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += static_cast<double>(v[i]) * v[i];
  if (sum == 0.0) return;  // lint:allow(float-eq): nothing to normalize
  const float inv = static_cast<float>(1.0 / std::sqrt(sum));
  for (std::size_t i = 0; i < n; ++i) v[i] *= inv;
}

}  // namespace copyattack::math
