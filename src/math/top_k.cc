#include "math/top_k.h"

#include <algorithm>
#include <numeric>

#include "util/annotations.h"
#include "util/check.h"

namespace copyattack::math {
namespace {

/// Comparator: higher score first; on ties the lower index wins.
struct DescendingByScore {
  const std::vector<float>& scores;
  bool operator()(std::size_t a, std::size_t b) const {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  }
};

/// One kept candidate of the bounded-heap selection.
struct HeapEntry {
  float score;
  std::size_t index;
};

/// Strict "ranks better than" under the Top-k contract: higher score
/// first, lower index on ties. Used both as the heap comparator (the heap
/// root is then the *worst* kept entry) and for the final best-first sort.
inline bool RanksBetter(const HeapEntry& a, const HeapEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

std::vector<std::size_t> TopKIndices(const float* scores, std::size_t n,
                                     std::size_t k) CA_HOT_PATH {
  if (k >= n) {
    // Full argsort: the heap degenerates to a total sort anyway, and the
    // index-array path reuses the reference comparator directly.
    std::vector<std::size_t> indices(n);
    std::iota(indices.begin(), indices.end(), 0U);
    std::sort(indices.begin(), indices.end(),
              [scores](std::size_t a, std::size_t b) {
                if (scores[a] != scores[b]) return scores[a] > scores[b];
                return a < b;
              });
    return indices;
  }

  // Bounded partial heap: `heap` holds the k best seen so far as a
  // max-heap under RanksBetter, so the root is the worst kept entry and
  // one comparison decides whether a new candidate displaces it. Scanning
  // indices in ascending order makes tie handling free: an equal-score
  // candidate always has a larger index than everything already kept, so
  // it never ranks better than the root it would replace.
  std::vector<HeapEntry> heap;
  heap.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    const HeapEntry candidate{scores[i], i};
    if (heap.size() < k) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), RanksBetter);
    } else if (RanksBetter(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), RanksBetter);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), RanksBetter);
    }
  }
  std::sort(heap.begin(), heap.end(), RanksBetter);
  std::vector<std::size_t> result(heap.size());
  for (std::size_t i = 0; i < heap.size(); ++i) result[i] = heap[i].index;
  return result;
}

std::vector<std::size_t> TopKIndices(const std::vector<float>& scores,
                                     std::size_t k) CA_HOT_PATH {
  return TopKIndices(scores.data(), scores.size(), k);
}

std::vector<std::size_t> TopKIndicesBySort(const std::vector<float>& scores,
                                           std::size_t k) {
  std::vector<std::size_t> indices(scores.size());
  std::iota(indices.begin(), indices.end(), 0U);
  const DescendingByScore cmp{scores};
  if (k < indices.size()) {
    std::partial_sort(indices.begin(), indices.begin() + k, indices.end(),
                      cmp);
    indices.resize(k);
  } else {
    std::sort(indices.begin(), indices.end(), cmp);
  }
  return indices;
}

void TopKPerRow(const float* scores, std::size_t rows, std::size_t cols,
                std::size_t k, std::size_t* out) CA_HOT_PATH {
  CA_CHECK_LE(k, cols);
  CA_CHECK(out != nullptr);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::vector<std::size_t> top =
        TopKIndices(scores + r * cols, cols, k);
    std::copy(top.begin(), top.end(), out + r * k);
  }
}

std::size_t RankOf(const std::vector<float>& scores, std::size_t index) {
  CA_CHECK_LT(index, scores.size());
  const float score = scores[index];
  std::size_t rank = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > score || (scores[i] == score && i < index)) {
      ++rank;
    }
  }
  return rank;
}

std::vector<std::size_t> ArgSortDescending(const std::vector<float>& scores) {
  return TopKIndices(scores, scores.size());
}

}  // namespace copyattack::math
