#include "math/top_k.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace copyattack::math {
namespace {

/// Comparator: higher score first; on ties the lower index wins.
struct DescendingByScore {
  const std::vector<float>& scores;
  bool operator()(std::size_t a, std::size_t b) const {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  }
};

}  // namespace

std::vector<std::size_t> TopKIndices(const std::vector<float>& scores,
                                     std::size_t k) {
  std::vector<std::size_t> indices(scores.size());
  std::iota(indices.begin(), indices.end(), 0U);
  const DescendingByScore cmp{scores};
  if (k < indices.size()) {
    std::partial_sort(indices.begin(), indices.begin() + k, indices.end(),
                      cmp);
    indices.resize(k);
  } else {
    std::sort(indices.begin(), indices.end(), cmp);
  }
  return indices;
}

std::size_t RankOf(const std::vector<float>& scores, std::size_t index) {
  CA_CHECK_LT(index, scores.size());
  const float score = scores[index];
  std::size_t rank = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > score || (scores[i] == score && i < index)) {
      ++rank;
    }
  }
  return rank;
}

std::vector<std::size_t> ArgSortDescending(const std::vector<float>& scores) {
  return TopKIndices(scores, scores.size());
}

}  // namespace copyattack::math
