#ifndef COPYATTACK_MATH_VECTOR_OPS_H_
#define COPYATTACK_MATH_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace copyattack::math {

/// Dot product of two equal-length float spans. Accumulation order is
/// fixed (4-way unrolled lanes, then a tail) and deterministic.
float Dot(const float* a, const float* b, std::size_t n);

/// y += alpha * x, element-wise over `n` floats. `x` and `y` must not
/// overlap (the implementation is restrict-qualified so it vectorizes).
void Axpy(float alpha, const float* x, float* y, std::size_t n);

/// Euclidean (L2) distance between two equal-length float spans.
float EuclideanDistance(const float* a, const float* b, std::size_t n);

/// Squared Euclidean distance (avoids the sqrt in k-means inner loops).
float SquaredDistance(const float* a, const float* b, std::size_t n);

/// In-place numerically stable softmax over `values`.
void SoftmaxInPlace(std::vector<float>& values);

/// Numerically stable softmax respecting a mask: entries with
/// `mask[i] == false` receive probability exactly 0. At least one entry must
/// be unmasked.
void MaskedSoftmaxInPlace(std::vector<float>& values,
                          const std::vector<bool>& mask);

/// log(sum_i exp(values[i])), numerically stable.
double LogSumExp(const std::vector<float>& values);

/// Index of the maximum element; ties break to the lowest index.
/// `values` must be non-empty.
std::size_t ArgMax(const std::vector<float>& values);

/// L2-normalizes `v` in place; a zero vector is left unchanged.
void NormalizeL2(float* v, std::size_t n);

}  // namespace copyattack::math

#endif  // COPYATTACK_MATH_VECTOR_OPS_H_
