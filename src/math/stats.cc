#include "math/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace copyattack::math {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total =
      static_cast<double>(count_) + static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) *
                          static_cast<double>(other.count_) / total);
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  CA_CHECK_GE(q, 0.0);
  CA_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<std::size_t> Histogram(const std::vector<double>& values,
                                   std::size_t bins) {
  CA_CHECK_GT(bins, 0U);
  std::vector<std::size_t> counts(bins, 0);
  if (values.empty()) return counts;
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const double lo = *min_it;
  const double width = (*max_it - lo) / static_cast<double>(bins);
  for (const double v : values) {
    std::size_t bin =
        width == 0.0  // lint:allow(float-eq): degenerate-range sentinel
            ? 0
            : static_cast<std::size_t>((v - lo) / width);
    if (bin >= bins) bin = bins - 1;
    ++counts[bin];
  }
  return counts;
}

}  // namespace copyattack::math
