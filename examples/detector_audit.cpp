// Detector audit: a defender's-eye view of the attack. A platform fraud
// team fits unsupervised anomaly detectors on genuine user profiles and
// audits three suspicious account batches:
//
//   batch A — classic fabricated shilling accounts,
//   batch B — CopyAttack accounts (crafted copies of real cross-domain
//             profiles),
//   batch C — a control batch of genuinely new users.
//
// The audit reports, per batch and detector, how many accounts a 5%-FPR
// review queue would flag. It exercises the `defense::` public API
// (feature extraction, detectors, ROC evaluation).
//
// Run: ./build/examples/detector_audit

#include <cstdio>
#include <vector>

#include "core/crafting.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "defense/detectors.h"
#include "defense/profile_features.h"
#include "rec/matrix_factorization.h"
#include "util/rng.h"

namespace {

using namespace copyattack;

std::vector<defense::ProfileFeatures> Featurize(
    const defense::ProfileFeatureExtractor& extractor,
    const std::vector<data::Profile>& profiles, util::Rng& rng) {
  std::vector<defense::ProfileFeatures> features;
  for (const data::Profile& profile : profiles) {
    features.push_back(extractor.Extract(profile, rng));
  }
  return features;
}

}  // namespace

int main() {
  const data::SyntheticWorld world =
      data::GenerateSyntheticWorld(data::SyntheticConfig::SmallCross());
  util::Rng rng(42);

  // The fraud team's own item model (MF on the platform's data).
  rec::MatrixFactorization mf;
  util::Rng mf_rng(43);
  mf.Fit(world.dataset.target, 15, mf_rng);
  const defense::ProfileFeatureExtractor extractor(&world.dataset.target,
                                                   &mf.item_embeddings());

  // Reference: genuine profiles (training population of the detectors).
  std::vector<data::Profile> genuine;
  for (int i = 0; i < 600; ++i) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(world.dataset.target.num_users()));
    genuine.push_back(world.dataset.target.UserProfile(u));
  }
  const auto genuine_features = Featurize(extractor, genuine, rng);

  const auto targets =
      data::SampleColdTargetItems(world.dataset, 20, 10, rng);

  // Batch A: fabricated accounts (target + popular filler — a smarter
  // fabricator than random filler).
  std::vector<data::Profile> batch_a;
  const auto by_pop = world.dataset.target.ItemsByPopularity();
  for (int i = 0; i < 150; ++i) {
    data::Profile fake = {targets[rng.UniformUint64(targets.size())]};
    while (fake.size() < 22) {
      const data::ItemId item = by_pop[rng.UniformUint64(80)];
      bool dup = false;
      for (const data::ItemId existing : fake) dup = dup || existing == item;
      if (!dup) fake.push_back(item);
    }
    batch_a.push_back(std::move(fake));
  }

  // Batch B: CopyAttack accounts (40% crafted windows of real holders).
  std::vector<data::Profile> batch_b;
  for (const data::ItemId target : targets) {
    for (const data::UserId holder : world.dataset.SourceHolders(target)) {
      if (batch_b.size() >= 150) break;
      batch_b.push_back(core::ClipProfileAroundTarget(
          world.dataset.source.UserProfile(holder), target, 0.4));
    }
  }

  // Batch C: control — more genuine users, disjoint from the reference.
  std::vector<data::Profile> batch_c;
  for (int i = 0; i < 150; ++i) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(world.dataset.target.num_users()));
    batch_c.push_back(world.dataset.target.UserProfile(u));
  }

  defense::ZScoreDetector zscore;
  defense::KnnDetector knn(5);
  zscore.Fit(genuine_features);
  knn.Fit(genuine_features);

  std::printf("audit at a 5%% false-positive review budget\n\n");
  std::printf("%-26s %10s %14s %10s %14s\n", "batch", "z-AUC",
              "z-flagged", "knn-AUC", "knn-flagged");
  const struct {
    const char* name;
    const std::vector<data::Profile>* profiles;
  } batches[] = {{"A: fabricated shilling", &batch_a},
                 {"B: CopyAttack copies", &batch_b},
                 {"C: genuine control", &batch_c}};
  for (const auto& batch : batches) {
    const auto features = Featurize(extractor, *batch.profiles, rng);
    const auto z = defense::EvaluateDetector(zscore, genuine_features,
                                             features, 0.05);
    const auto k =
        defense::EvaluateDetector(knn, genuine_features, features, 0.05);
    std::printf("%-26s %10.3f %13.1f%% %10.3f %13.1f%%\n", batch.name,
                z.auc, 100.0 * z.recall_at_fpr, k.auc,
                100.0 * k.recall_at_fpr);
  }
  std::printf(
      "\nreading: batch A should be heavily flagged, batch B should look\n"
      "much closer to the genuine control — the paper's motivation for\n"
      "copying real cross-domain profiles instead of fabricating them.\n");
  return 0;
}
