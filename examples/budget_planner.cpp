// Budget planner: answers the operational question "how many profiles do I
// need to copy to reach a desired promotion level for this item?" —
// a practical reading of the paper's Figure 5 budget study.
//
// For one cold target item it runs CopyAttack with increasing budgets and
// reports the HR@20 reached over real users, plus the attack cost (copied
// profiles, injected interactions, query rounds).
//
// Run: ./build/examples/budget_planner

#include <cstdio>
#include <memory>

#include "core/copy_attack.h"
#include "core/runner.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "rec/pinsage_lite.h"
#include "rec/trainer.h"

int main() {
  using namespace copyattack;

  const data::SyntheticConfig config = data::SyntheticConfig::SmallCross();
  const data::SyntheticWorld world = data::GenerateSyntheticWorld(config);

  util::Rng split_rng(21);
  const data::TrainValidTestSplit split =
      data::SplitDataset(world.dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng train_rng(22);
  rec::TrainWithEarlyStopping(model, split, world.dataset.target,
                              rec::TrainOptions{}, train_rng);

  core::SourceArtifactOptions artifact_options;
  artifact_options.tree_depth = 3;
  const core::SourceArtifacts artifacts =
      core::PrepareSourceArtifacts(world.dataset, artifact_options);

  util::Rng target_rng(23);
  const auto targets =
      data::SampleColdTargetItems(world.dataset, 5, 10, target_rng);

  const double desired_hr20 = 0.05;
  std::printf("goal: HR@20 >= %.2f over real users\n\n", desired_hr20);
  std::printf("budget  HR@20   profiles  interactions  query_rounds\n");

  const core::ModelFactory model_factory = [&] {
    return std::make_unique<rec::PinSageLite>(model);
  };

  std::size_t recommended_budget = 0;
  for (const std::size_t budget : {5UL, 10UL, 15UL, 20UL, 30UL, 40UL}) {
    core::CampaignConfig campaign;
    campaign.env.budget = budget;
    campaign.env.num_pretend_users = 50;
    campaign.episodes = 12;
    campaign.eval_users = 250;
    campaign.seed = 101;

    // Aggregate over the sampled items to de-noise the estimate.
    const auto result = core::RunCampaign(
        world.dataset, split.train, model_factory,
        [&](std::uint64_t seed) {
          return std::make_unique<core::CopyAttack>(
              &world.dataset, &artifacts.tree,
              &artifacts.mf.user_embeddings(),
              &artifacts.mf.item_embeddings(), core::CopyAttackConfig{},
              seed);
        },
        targets, campaign);

    std::printf("%-6zu  %.4f  %-8.1f  %-12.1f  %.1f\n", budget,
                result.metrics.at(20).hr, result.avg_profiles_injected,
                result.avg_profiles_injected * result.avg_items_per_profile,
                result.avg_query_rounds);
    if (recommended_budget == 0 &&
        result.metrics.at(20).hr >= desired_hr20) {
      recommended_budget = budget;
    }
  }

  if (recommended_budget > 0) {
    std::printf("\n-> a budget of ~%zu copied profiles reaches the goal.\n",
                recommended_budget);
  } else {
    std::printf("\n-> the goal was not reached within 40 profiles; "
                "consider a larger budget or different target items.\n");
  }
  return 0;
}
