// Promotion campaign: the scenario from the paper's introduction. An
// attacker wants a slate of cold items promoted on platform A (the target
// recommender). They control accounts on platform B (a competing platform
// sharing many items) and compare strategies end to end:
//
//   * RandomAttack        — copy arbitrary B users,
//   * TargetAttack70      — copy B users who rated the item, clip to 70%,
//   * CopyAttack          — the full RL pipeline.
//
// The example prints a Table-2-style report for the whole campaign and
// writes per-item results to promotion_campaign.csv.
//
// Run: ./build/examples/promotion_campaign

#include <cstdio>
#include <memory>

#include "core/baselines.h"
#include "core/copy_attack.h"
#include "core/runner.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "rec/pinsage_lite.h"
#include "rec/trainer.h"
#include "util/csv.h"

int main() {
  using namespace copyattack;

  // Platform A and platform B share 600 of 800 items.
  const data::SyntheticConfig config = data::SyntheticConfig::SmallCross();
  const data::SyntheticWorld world = data::GenerateSyntheticWorld(config);

  util::Rng split_rng(11);
  const data::TrainValidTestSplit split =
      data::SplitDataset(world.dataset.target, split_rng);

  rec::PinSageLite model;
  util::Rng train_rng(12);
  const auto report = rec::TrainWithEarlyStopping(
      model, split, world.dataset.target, rec::TrainOptions{}, train_rng);
  std::printf("platform A recommender: test HR@10 = %.3f\n", report.test_hr);

  core::SourceArtifactOptions artifact_options;
  artifact_options.tree_depth = 3;
  const core::SourceArtifacts artifacts =
      core::PrepareSourceArtifacts(world.dataset, artifact_options);

  // The campaign slate: 12 cold items the attacker wants promoted.
  util::Rng target_rng(13);
  const auto slate =
      data::SampleColdTargetItems(world.dataset, 12, 10, target_rng);
  std::printf("campaign slate: %zu cold items\n\n", slate.size());

  core::CampaignConfig campaign;
  campaign.env.budget = 30;
  campaign.env.num_pretend_users = 50;
  campaign.episodes = 12;
  campaign.eval_users = 250;
  campaign.seed = 99;

  const core::ModelFactory model_factory = [&] {
    return std::make_unique<rec::PinSageLite>(model);
  };

  std::printf("%s\n", core::CampaignRowHeader().c_str());
  util::CsvWriter csv("promotion_campaign.csv",
                      {"method", "hr20", "ndcg20", "items_per_profile"});

  const auto without = core::EvaluateWithoutAttack(
      world.dataset, split.train, model_factory, slate, campaign);
  std::printf("%s\n", core::FormatCampaignRow(without).c_str());

  struct MethodSpec {
    const char* name;
    core::StrategyFactory factory;
    std::size_t episodes;
  };
  const MethodSpec methods[] = {
      {"RandomAttack",
       [&](std::uint64_t) {
         return std::make_unique<core::RandomAttack>(world.dataset);
       },
       1},
      {"TargetAttack70",
       [&](std::uint64_t) {
         return std::make_unique<core::TargetAttack>(world.dataset, 0.7);
       },
       1},
      {"CopyAttack",
       [&](std::uint64_t seed) {
         return std::make_unique<core::CopyAttack>(
             &world.dataset, &artifacts.tree,
             &artifacts.mf.user_embeddings(),
             &artifacts.mf.item_embeddings(), core::CopyAttackConfig{},
             seed);
       },
       12},
  };

  for (const MethodSpec& spec : methods) {
    core::CampaignConfig per_method = campaign;
    per_method.episodes = spec.episodes;
    const auto result =
        core::RunCampaign(world.dataset, split.train, model_factory,
                          spec.factory, slate, per_method);
    std::printf("%s\n", core::FormatCampaignRow(result).c_str());
    csv.WriteRow({result.method,
                  std::to_string(result.metrics.at(20).hr),
                  std::to_string(result.metrics.at(20).ndcg),
                  std::to_string(result.avg_items_per_profile)});
  }
  csv.Flush();
  std::printf("\nper-method summary written to promotion_campaign.csv\n");
  return 0;
}
